"""Extension bench: deployment metrics beyond the paper's tables.

Energy per inference, battery life, and AXI I/O balance for every Table I
configuration, plus a fault-tolerance sweep — the analyses a
resource-stringent deployment (the paper's BCI motivation) asks for next.
Recorded in EXPERIMENTS.md under "Beyond the paper".
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import TASKS, write_result
from repro.core import UniVSAConfig
from repro.hw import (
    PAPER_CONFIGS,
    HardwareSpec,
    energy_report,
    fault_sweep,
    io_analysis,
)
from repro.utils.tables import render_table


@pytest.fixture(scope="module")
def deployment_rows():
    rows = {}
    for name in TASKS:
        shape, classes, tup = PAPER_CONFIGS[name]
        spec = HardwareSpec(UniVSAConfig.from_paper_tuple(tup), shape, classes)
        rows[name] = (energy_report(spec), io_analysis(spec))
    return rows


def test_deployment_report(deployment_rows, results_dir, benchmark):
    rows = []
    for name in TASKS:
        energy, io = deployment_rows[name]
        rows.append(
            [
                name,
                f"{energy.energy_per_inference_uj:.2f}",
                f"{energy.battery_hours(200, 50):.0f}",
                io.input_bytes,
                f"{io.transfer_cycles}",
                f"{io.compute_interval}",
                "I/O" if io.io_bound else "compute",
            ]
        )
    table = render_table(
        ["task", "uJ/inf", "hours@50/s (200mWh)", "in bytes", "xfer cyc", "conv cyc", "bound"],
        rows,
        title="Deployment extension — energy, battery, and AXI I/O balance",
    )
    write_result(results_dir, "ext_deployment.txt", table)
    shape, classes, tup = PAPER_CONFIGS["isolet"]
    spec = HardwareSpec(UniVSAConfig.from_paper_tuple(tup), shape, classes)
    benchmark(energy_report, spec)


def test_all_tasks_microjoule_and_compute_bound(deployment_rows, benchmark):
    for name in TASKS:
        energy, io = deployment_rows[name]
        assert energy.energy_per_inference_uj < 100, name
        assert not io.io_bound, name
    benchmark(lambda: [deployment_rows[n][0].power_w for n in TASKS])


def test_fault_tolerance_report(univsa_runs, results_dir, benchmark):
    """Bit-flip robustness of the trained HAR model."""
    run = univsa_runs["har"]
    sweep = fault_sweep(
        run.artifacts,
        run.data.x_test,
        run.data.y_test,
        flip_fractions=(0.001, 0.01, 0.05, 0.1),
        seed=0,
    )
    rows = [
        [f"{f:.1%}", f"{acc:.4f}", f"{acc - sweep.baseline_accuracy:+.4f}"]
        for f, acc in zip(sweep.flip_fractions, sweep.accuracies)
    ]
    table = render_table(
        ["flip rate", "accuracy", "delta"],
        rows,
        title=f"Fault tolerance (har, fault-free {sweep.baseline_accuracy:.4f})",
    )
    write_result(results_dir, "ext_fault_tolerance.txt", table)
    # Graceful degradation: sub-percent corruption costs < 10 points.
    assert sweep.accuracies[0] > sweep.baseline_accuracy - 0.1
    benchmark(lambda: sweep.accuracies[-1])
