"""Table II reproduction: accuracy + memory for all six models x six tasks.

Regenerates the paper's software comparison — LDA, KNN (K=5), RBF-SVM,
LeHDC, LDC (D=128), UniVSA (Table I configs) — on the synthetic stand-in
benchmarks, printing measured-vs-paper rows and checking the ordering
claims the paper makes in Sec. V-B.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import (
    BENCH_EPOCHS,
    FAST,
    PAPER_TABLE2,
    TASKS,
    write_result,
)
from repro.baselines import (
    KNNClassifier,
    LDAClassifier,
    SVMClassifier,
    bits_to_kb,
)
from repro.core import BitPackedUniVSA
from repro.ldc import train_ldc
from repro.lehdc import LeHDCClassifier
from repro.utils.tables import render_table
from repro.utils.trainloop import TrainConfig

# LeHDC's deployed dimension is 10k in the paper; training a 10k-dim dense
# layer in numpy is feasible but slow, so the bench scales it down and the
# memory column reports the actual dimension used.
LEHDC_DIM = 1024 if FAST else 4096


@pytest.fixture(scope="module")
def table2(datasets, univsa_runs):
    """Accuracy and memory (KB) for every (model, task) pair."""
    epochs = 4 if FAST else BENCH_EPOCHS
    results: dict[str, dict[str, tuple[float, float | None]]] = {}
    for name in TASKS:
        data = datasets[name]
        balanced = data.benchmark.spec.class_balance is not None
        config = TrainConfig(epochs=epochs, lr=0.008, seed=0, balance_classes=balanced)
        flat_train = data.flat_train().astype(np.float64)
        flat_test = data.flat_test().astype(np.float64)
        row: dict[str, tuple[float, float | None]] = {}

        lda = LDAClassifier().fit(flat_train, data.y_train)
        row["LDA"] = (lda.score(flat_test, data.y_test), lda.memory_footprint_bits())

        knn = KNNClassifier(k=5).fit(flat_train, data.y_train)
        row["KNN"] = (knn.score(flat_test, data.y_test), None)

        svm = SVMClassifier(c=2.0).fit(flat_train, data.y_train)
        row["SVM"] = (svm.score(flat_test, data.y_test), svm.memory_footprint_bits())

        lehdc = LeHDCClassifier(
            dim=LEHDC_DIM,
            seed=0,
            train_config=TrainConfig(epochs=epochs, lr=0.01, seed=0, balance_classes=balanced),
        ).fit(data.x_train, data.y_train)
        row["LeHDC"] = (
            lehdc.score(data.x_test, data.y_test),
            lehdc.memory_footprint_bits(),
        )

        ldc = train_ldc(
            data.x_train,
            data.y_train,
            n_classes=data.benchmark.n_classes,
            dim=128,
            config=config,
        )
        row["LDC"] = (
            ldc.artifacts.score(data.flat_test(), data.y_test),
            ldc.artifacts.memory_footprint_bits(),
        )

        run = univsa_runs[name]
        row["UniVSA"] = (run.accuracy, run.artifacts.memory_footprint_bits())
        results[name] = row
    return results


MODELS = ("LDA", "KNN", "SVM", "LeHDC", "LDC", "UniVSA")


def test_table2_report(table2, results_dir, benchmark, univsa_runs):
    """Render the measured Table II next to the paper's numbers."""
    rows = []
    for name in TASKS:
        rows.append(
            [name]
            + [f"{table2[name][m][0]:.4f}" for m in MODELS]
            + [f"{PAPER_TABLE2[name]['UniVSA']:.4f}"]
        )
    averages = ["average"] + [
        f"{np.mean([table2[t][m][0] for t in TASKS]):.4f}" for m in MODELS
    ] + [f"{np.mean([PAPER_TABLE2[t]['UniVSA'] for t in TASKS]):.4f}"]
    rows.append(averages)
    accuracy_table = render_table(
        ["task", *MODELS, "UniVSA(paper)"],
        rows,
        title="Table II (accuracy) — measured on synthetic stand-ins",
    )
    memory_rows = []
    for name in TASKS:
        memory_rows.append(
            [name]
            + [
                "-" if table2[name][m][1] is None else f"{bits_to_kb(table2[name][m][1]):.2f}"
                for m in MODELS
            ]
        )
    memory_table = render_table(
        ["task", *MODELS],
        memory_rows,
        title="Table II (memory, KB; KNN stores the training set)",
    )
    # Per-task UniVSA accuracies ride along into the run ledger, so the
    # BENCH_table2_accuracy.json trajectory tracks the headline metric.
    metrics = {f"accuracy.{name}": table2[name]["UniVSA"][0] for name in TASKS}
    metrics["accuracy"] = float(np.mean([table2[t]["UniVSA"][0] for t in TASKS]))
    write_result(
        results_dir,
        "table2_accuracy.txt",
        accuracy_table + "\n\n" + memory_table,
        metrics=metrics,
    )

    # Benchmark the deployed inference kernel (packed XNOR/popcount).
    run = univsa_runs["isolet"]
    packed = BitPackedUniVSA(run.artifacts)
    batch = run.data.x_test[:64]
    benchmark(packed.predict, batch)


@pytest.mark.skipif(FAST, reason="ordering claims need full budgets")
def test_univsa_beats_ldc_everywhere(table2, benchmark):
    """Sec. V-B: 'UniVSA shows superior accuracy across all tasks' vs LDC."""
    for name in TASKS:
        assert table2[name]["UniVSA"][0] >= table2[name]["LDC"][0] - 1e-9, name
    benchmark(lambda: sum(table2[t]["UniVSA"][0] for t in TASKS))


@pytest.mark.skipif(FAST, reason="ordering claims need full budgets")
def test_paper_orderings_hold(table2, benchmark):
    """Task-level qualitative claims of Table II."""
    # KNN is at/near the top on BCI-III-V (clearly above LDA and the
    # binary VSA models; within noise of the single best model).
    bci = table2["bci-iii-v"]
    assert bci["KNN"][0] >= max(bci[m][0] for m in MODELS) - 0.05
    assert bci["KNN"][0] > bci["LDA"][0]
    assert bci["KNN"][0] > bci["LDC"][0]
    # KNN collapses on HAR (clearly below every learned VSA model).
    har = table2["har"]
    assert har["KNN"][0] < har["LDC"][0] - 0.1
    assert har["KNN"][0] < har["UniVSA"][0] - 0.1
    # LDA is the weakest model on EEGMMI.
    eeg = table2["eegmmi"]
    assert eeg["LDA"][0] == min(eeg[m][0] for m in MODELS)
    benchmark(lambda: max(bci[m][0] for m in MODELS))


@pytest.mark.skipif(FAST, reason="ordering claims need full budgets")
def test_univsa_smallest_average_memory(table2, benchmark):
    """UniVSA's average memory is the smallest of the stored models."""
    averages = {
        m: np.mean([table2[t][m][1] for t in TASKS])
        for m in MODELS
        if m != "KNN"
    }
    assert averages["UniVSA"] == min(averages.values())
    # SVM is orders of magnitude larger than the binary VSA models.
    assert averages["SVM"] > 50 * averages["UniVSA"]
    benchmark(lambda: min(averages.values()))
