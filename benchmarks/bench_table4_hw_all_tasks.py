"""Table IV reproduction: hardware performance of UniVSA on all six tasks.

Regenerates latency, power, LUTs, BRAMs, DSPs, and streaming throughput
from the calibrated hardware model and cross-checks the cycle simulator
against the analytic pipeline schedule.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import TASKS, write_result
from repro.core import UniVSAConfig
from repro.hw import (
    PAPER_CONFIGS,
    PAPER_TABLE4,
    HardwareSimulator,
    HardwareSpec,
    hardware_report,
    pipeline_schedule,
)
from repro.utils.tables import render_table


@pytest.fixture(scope="module")
def reports():
    out = {}
    for name in TASKS:
        shape, classes, tup = PAPER_CONFIGS[name]
        out[name] = hardware_report(
            UniVSAConfig.from_paper_tuple(tup), shape, classes, name=name
        )
    return out


def test_table4_report(reports, results_dir, benchmark):
    rows = []
    for name in TASKS:
        r = reports[name]
        paper = PAPER_TABLE4[name]
        rows.append(
            [
                name,
                f"{r.latency_ms:.3f}",
                f"{paper[0]:.3f}",
                f"{r.power_w:.2f}",
                f"{paper[1]:.2f}",
                f"{r.luts / 1000:.2f}",
                f"{paper[2] / 1000:.2f}",
                f"{r.brams}",
                f"{paper[3]}",
                r.dsps,
                f"{r.throughput_per_s / 1000:.2f}",
                f"{paper[5] / 1000:.2f}",
            ]
        )
    table = render_table(
        [
            "task",
            "lat_ms",
            "paper",
            "power_W",
            "paper",
            "kLUT",
            "paper",
            "BRAM",
            "paper",
            "DSP",
            "thr_k/s",
            "paper",
        ],
        rows,
        title="Table IV — calibrated hardware model vs paper (ZU3EG, 250 MHz)",
    )
    write_result(results_dir, "table4_hw_all_tasks.txt", table)
    shape, classes, tup = PAPER_CONFIGS["isolet"]
    spec = HardwareSpec(UniVSAConfig.from_paper_tuple(tup), shape, classes)
    benchmark(pipeline_schedule, spec)


def test_latency_and_throughput_track_paper(reports, benchmark):
    """Latency/throughput within 10%, BRAM exact, DSP zero (Table IV)."""
    for name in TASKS:
        r = reports[name]
        paper = PAPER_TABLE4[name]
        assert r.latency_ms == pytest.approx(paper[0], rel=0.10), name
        assert r.throughput_per_s == pytest.approx(paper[5], rel=0.10), name
        assert r.brams == paper[3], name
        assert r.dsps == 0
    benchmark(lambda: [reports[n].latency_ms for n in TASKS])


def test_power_below_bci_budget(reports, benchmark):
    """Sec. V-C: all tasks < 0.5 W, far under the 1.5 W SVM line."""
    for name in TASKS:
        assert reports[name].power_w < 0.5, name
    benchmark(lambda: max(reports[n].power_w for n in TASKS))


def test_simulator_matches_schedule(univsa_runs, benchmark):
    """Event simulator steady-state interval == analytic schedule (Fig. 5)."""
    run = univsa_runs["har"]
    shape, classes, tup = PAPER_CONFIGS["har"]
    spec = HardwareSpec(UniVSAConfig.from_paper_tuple(tup), shape, classes)
    # The trained artifacts use the data-driven mask fraction but share the
    # paper (D_H, D_L, D_K, O, Theta), so spec and artifacts agree.
    simulator = HardwareSimulator(run.artifacts, spec)
    levels = run.data.x_test[:8]
    result = simulator.run(levels)
    schedule = pipeline_schedule(spec)
    assert result.initiation_intervals()[-1] == schedule.initiation_interval
    benchmark(simulator.run, levels[:2])
