"""Shared fixtures for the reproduction benchmark harness.

Every bench writes its paper-style table to ``benchmarks/results/`` (the
artifacts EXPERIMENTS.md records) and also times a representative kernel
through pytest-benchmark.  Each ``write_result`` call additionally
appends one run record to ``benchmarks/results/ledger.jsonl`` (config
hash, git rev, budget env, metrics, per-bench stage breakdown), and the
session teardown folds the ledger into ``BENCH_<task>.json`` trajectory
files — the inputs of ``python -m repro obs compare``.

Budget knobs (environment variables):

* ``REPRO_BENCH_EPOCHS``  — training epochs per model (default 20)
* ``REPRO_BENCH_SEEDS``   — seeds for variance estimates (default 2)
* ``REPRO_BENCH_FAST=1``  — shrink datasets/budgets for a smoke run
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "20"))
BENCH_SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "2"))
FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"

TASKS = ("eegmmi", "bci-iii-v", "chb-b", "chb-ib", "isolet", "har")

# Paper Table II: accuracy (memory KB) per model and task.
PAPER_TABLE2 = {
    "eegmmi": {"LDA": 0.7004, "KNN": 0.8262, "SVM": 0.8766, "LeHDC": 0.7980, "LDC": 0.8279, "UniVSA": 0.8971},
    "bci-iii-v": {"LDA": 0.8599, "KNN": 0.9888, "SVM": 0.8971, "LeHDC": 0.8235, "LDC": 0.9370, "UniVSA": 0.9545},
    "chb-b": {"LDA": 0.9067, "KNN": 0.9744, "SVM": 0.9819, "LeHDC": 0.8992, "LDC": 0.9669, "UniVSA": 0.9774},
    "chb-ib": {"LDA": 0.9142, "KNN": 0.9488, "SVM": 0.9729, "LeHDC": 0.8675, "LDC": 0.9639, "UniVSA": 0.9684},
    "isolet": {"LDA": 0.9410, "KNN": 0.9140, "SVM": 0.9602, "LeHDC": 0.9489, "LDC": 0.9133, "UniVSA": 0.9282},
    "har": {"LDA": 0.7625, "KNN": 0.5582, "SVM": 0.7852, "LeHDC": 0.9523, "LDC": 0.9256, "UniVSA": 0.9338},
}

PAPER_TABLE2_MEMORY_KB = {
    "eegmmi": {"LDA": 8.19, "SVM": 11223.04, "LeHDC": 1602.50, "LDC": 16.54, "UniVSA": 13.59},
    "bci-iii-v": {"LDA": 1.15, "SVM": 510.22, "LeHDC": 443.75, "LDC": 1.71, "UniVSA": 3.57},
    "chb-b": {"LDA": 11.78, "SVM": 1990.14, "LeHDC": 2162.50, "LDC": 23.71, "UniVSA": 4.51},
    "chb-ib": {"LDA": 11.78, "SVM": 3612.29, "LeHDC": 2162.50, "LDC": 23.71, "UniVSA": 3.67},
    "isolet": {"LDA": 66.56, "SVM": 5048.32, "LeHDC": 1152.50, "LDC": 10.78, "UniVSA": 8.36},
    "har": {"LDA": 13.82, "SVM": 6743.81, "LeHDC": 1047.50, "LDC": 9.44, "UniVSA": 3.14},
}


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session", autouse=True)
def obs_registry():
    """Collect stage metrics for the bench session, one bench at a time.

    Every instrumented hot path (packed engine, integer reference,
    streaming runtime, trainer, hw simulator) records into this registry.
    ``write_result`` snapshots it next to each rendered table and then
    *resets* it, so consecutive sidecars hold disjoint per-bench stage
    totals instead of a session-cumulative smear (timings of the shared
    session fixtures land in whichever bench triggers their creation).
    At session end the run ledger is folded into ``BENCH_<task>.json``
    trajectory files.
    """
    from repro.obs import Ledger, disable, enable, write_trajectories

    registry = enable()
    yield registry
    disable()
    ledger = Ledger(RESULTS_DIR / "ledger.jsonl")
    if ledger.path.exists():
        write_trajectories(ledger, RESULTS_DIR)


def write_result(
    results_dir: Path, name: str, content: str, metrics: dict | None = None
) -> None:
    """Persist a rendered table and echo it for terminal runs with -s.

    When the observability registry is active (it is for bench sessions,
    via the ``obs_registry`` fixture) a machine-readable stage breakdown
    is written next to the text table as ``<name>.profile.json``, one run
    record (kind ``bench``, task = the result stem, plus any ``metrics``
    the bench hands over) is appended to the session ledger, and the
    registry is reset so the next bench starts from zero.
    """
    path = results_dir / name
    path.write_text(content + "\n")
    print(f"\n{content}\n[written to {path}]")
    from repro.obs import get_registry, record_run, write_json

    registry = get_registry()
    if registry.enabled:
        write_json(registry, path.with_name(path.stem + ".profile.json"))
        record_run(
            "bench",
            path.stem,
            metrics=metrics,
            registry=registry,
            ledger_path=results_dir / "ledger.jsonl",
        )
        registry.reset()


@pytest.fixture(scope="session")
def datasets():
    """Quantized data per task at bench budgets (cached for the session)."""
    from repro.data import load

    sizes = {name: (None, None) for name in TASKS}
    if FAST:
        sizes = {name: (160, 80) for name in TASKS}
    return {
        name: load(name, n_train=sizes[name][0], n_test=sizes[name][1], seed=0)
        for name in TASKS
    }


@pytest.fixture(scope="session")
def univsa_runs(datasets):
    """Trained UniVSA (paper config) per task, reused by several benches."""
    from repro import run_benchmark
    from repro.utils.trainloop import TrainConfig

    runs = {}
    for name in TASKS:
        data = datasets[name]
        config = TrainConfig(
            epochs=4 if FAST else BENCH_EPOCHS,
            lr=0.008,
            seed=0,
            balance_classes=data.benchmark.spec.class_balance is not None,
        )
        runs[name] = run_benchmark(
            name,
            train_config=config,
            n_train=len(data.x_train),
            n_test=len(data.x_test),
            seed=0,
        )
    return runs


def model_memory_kb(bits: int | None) -> str:
    from repro.baselines import format_kb

    return format_kb(bits)
