"""Fig. 6 reproduction: per-stage hardware overhead of UniVSA.

For every task, the resource (LUT share) and execution-time (cycle share)
of each computing stage, plus the memory distribution over the stored
vector groups — reproducing the figure's two claims: BiConv dominates
resources and time; F/C dominate the memory footprint.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import TASKS, write_result
from repro.core import UniVSAConfig
from repro.hw import (
    PAPER_CONFIGS,
    HardwareSpec,
    memory_breakdown,
    stage_cycles,
    stage_lut_shares,
)
from repro.utils.tables import render_table

STAGES = ("dvp", "biconv", "encode", "similarity", "control")


@pytest.fixture(scope="module")
def breakdowns():
    out = {}
    for name in TASKS:
        shape, classes, tup = PAPER_CONFIGS[name]
        config = UniVSAConfig.from_paper_tuple(tup)
        spec = HardwareSpec(config, shape, classes)
        cycles = stage_cycles(spec).as_dict()
        total_cycles = sum(cycles.values())
        out[name] = {
            "luts": stage_lut_shares(spec),
            "cycles": {k: v / total_cycles for k, v in cycles.items()},
            "memory": memory_breakdown(config, shape, classes),
        }
    return out


def test_fig6_report(breakdowns, results_dir, benchmark):
    lut_rows = [
        [name] + [f"{breakdowns[name]['luts'][s] * 100:.1f}%" for s in STAGES]
        for name in TASKS
    ]
    cycle_rows = [
        [name] + [f"{breakdowns[name]['cycles'][s] * 100:.1f}%" for s in STAGES]
        for name in TASKS
    ]
    memory_rows = []
    for name in TASKS:
        b = breakdowns[name]["memory"]
        total = b.total_bits
        memory_rows.append(
            [name]
            + [f"{bits / total * 100:.1f}%" for bits in b.as_dict().values()]
            + [f"{b.total_kb:.2f}"]
        )
    content = "\n\n".join(
        [
            render_table(["task", *STAGES], lut_rows, title="Fig. 6a — LUT share per stage"),
            render_table(["task", *STAGES], cycle_rows, title="Fig. 6b — cycle share per stage"),
            render_table(
                ["task", "V", "K", "F", "C", "total_KB"],
                memory_rows,
                title="Fig. 6c — memory share per stored vector group (Eq. 5)",
            ),
        ]
    )
    write_result(results_dir, "fig6_stage_breakdown.txt", content)
    shape, classes, tup = PAPER_CONFIGS["eegmmi"]
    spec = HardwareSpec(UniVSAConfig.from_paper_tuple(tup), shape, classes)
    benchmark(stage_lut_shares, spec)


def test_biconv_dominates_everywhere(breakdowns, benchmark):
    """The figure's headline: BiConv leads both resources and time."""
    for name in TASKS:
        luts = breakdowns[name]["luts"]
        cycles = breakdowns[name]["cycles"]
        assert max(luts, key=luts.get) == "biconv", name
        assert max(cycles, key=cycles.get) == "biconv", name
    benchmark(lambda: [breakdowns[n]["luts"]["biconv"] for n in TASKS])


def test_kernel_memory_is_tiny_f_c_dominate(breakdowns, benchmark):
    """Sec. V-C: F (or C for many classes) dominates memory; K stays small
    (largest share on BCI-III-V, whose input is tiny while O=151)."""
    for name in TASKS:
        b = breakdowns[name]["memory"]
        assert b.feature_bits + b.class_bits > 0.5 * b.total_bits, name
        assert b.kernel_bits < b.feature_bits + b.class_bits, name
    # For the large-input tasks the kernel is truly negligible.
    for name in ("eegmmi", "chb-b", "chb-ib", "isolet", "har"):
        b = breakdowns[name]["memory"]
        assert b.kernel_bits < 0.1 * b.total_bits, name
    benchmark(lambda: breakdowns["eegmmi"]["memory"].total_bits)
