"""Fig. 1 reproduction: qualitative comparison of UniVSA vs other methods.

Fig. 1 is a radar-style overview over four axes — accuracy, memory,
power, latency — comparing UniVSA with VSA-H (high-dimensional VSA), LDC,
and conventional lightweight ML (SVM/KNN/BNN/QNN).  This bench aggregates
the measured Table II software results with the Table III/IV hardware
data into the same per-axis ranking.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import FAST, write_result
from repro.core import UniVSAConfig
from repro.data import load
from repro.hw import PAPER_CONFIGS, PAPER_TABLE3, hardware_report
from repro.ldc import train_ldc
from repro.utils.tables import render_table
from repro.utils.trainloop import TrainConfig
from repro.vsa import ClassicVSAClassifier


@pytest.fixture(scope="module")
def overview(univsa_runs):
    """Per-family (accuracy, memory, power, latency) summary on ISOLET."""
    data = univsa_runs["isolet"].data
    epochs = 3 if FAST else 12

    run = univsa_runs["isolet"]
    shape, classes, tup = PAPER_CONFIGS["isolet"]
    univsa_hw = hardware_report(UniVSAConfig.from_paper_tuple(tup), shape, classes)

    ldc = train_ldc(
        data.x_train,
        data.y_train,
        n_classes=26,
        dim=128,
        config=TrainConfig(epochs=epochs, lr=0.008, seed=0),
    )
    vsa_h = ClassicVSAClassifier(
        dim=512 if FAST else 4096, levels=256, retrain_epochs=3, seed=0
    ).fit(data.flat_train(), data.y_train)

    return {
        "UniVSA": {
            "accuracy": run.accuracy,
            "memory_kb": run.memory_kb,
            "power_w": univsa_hw.power_w,
            "latency_ms": univsa_hw.latency_ms,
        },
        "LDC": {
            "accuracy": ldc.artifacts.score(data.flat_test(), data.y_test),
            "memory_kb": ldc.artifacts.memory_footprint_bits() / 8000.0,
            "power_w": PAPER_TABLE3["LDC [11]"]["power_w"],
            "latency_ms": PAPER_TABLE3["LDC [11]"]["latency_ms"],
        },
        "VSA-H": {
            "accuracy": vsa_h.score(data.flat_test(), data.y_test),
            "memory_kb": vsa_h.memory_footprint_bits() / 8000.0,
            "power_w": PAPER_TABLE3["LookHD [9]"]["power_w"],
            "latency_ms": None,
        },
        "SVM": {
            "accuracy": None,  # hardware row; SW accuracy in Table II bench
            "memory_kb": PAPER_TABLE3["SVM [31]"]["memory_kb"],
            "power_w": PAPER_TABLE3["SVM [31]"]["power_w"],
            "latency_ms": PAPER_TABLE3["SVM [31]"]["latency_ms"],
        },
        "BNN": {
            "accuracy": None,
            "memory_kb": None,
            "power_w": PAPER_TABLE3["BNN [14]"]["power_w"],
            "latency_ms": PAPER_TABLE3["BNN [14]"]["latency_ms"],
        },
    }


def test_fig1_report(overview, results_dir, benchmark):
    rows = []
    for family, axes in overview.items():
        rows.append(
            [
                family,
                "-" if axes["accuracy"] is None else f"{axes['accuracy']:.4f}",
                "-" if axes["memory_kb"] is None else f"{axes['memory_kb']:.2f}",
                "-" if axes["power_w"] is None else f"{axes['power_w']:.3f}",
                "-" if axes["latency_ms"] is None else f"{axes['latency_ms']:.3f}",
            ]
        )
    table = render_table(
        ["family", "accuracy (ISOLET)", "memory_KB", "power_W", "latency_ms"],
        rows,
        title="Fig. 1 — per-axis comparison (measured + literature hardware rows)",
    )
    write_result(results_dir, "fig1_overview.txt", table)
    benchmark(lambda: len(overview))


@pytest.mark.skipif(FAST, reason="ordering claims need full budgets")
def test_univsa_pareto_position(overview, benchmark):
    """Fig. 1's message: UniVSA pairs near-best accuracy with the
    memory/power/latency profile of the tiny binary-VSA family."""
    univsa = overview["UniVSA"]
    # Beats the high-dimensional VSA on both accuracy and memory.
    assert univsa["accuracy"] > overview["VSA-H"]["accuracy"]
    assert univsa["memory_kb"] < overview["VSA-H"]["memory_kb"] / 10
    # Beats LDC on accuracy at comparable (KB-scale) memory.
    assert univsa["accuracy"] >= overview["LDC"]["accuracy"] - 1e-9
    assert univsa["memory_kb"] < 3 * overview["LDC"]["memory_kb"]
    # Orders of magnitude below conventional ML hardware power.
    assert univsa["power_w"] < overview["SVM"]["power_w"] / 10
    assert univsa["power_w"] < overview["BNN"]["power_w"] / 10
    benchmark(lambda: univsa["accuracy"])
