"""Table I reproduction: evolutionary co-design configuration search.

Runs the evolutionary search (elitist GA over (D_H, D_L, D_K, O, Theta),
objective Acc - L_HW with lambda1 = lambda2 = 0.005) on two benchmarks at
bench-scale budgets, and reports the found configurations next to the
paper's searched Table I entries.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import FAST, RESULTS_DIR, write_result
from repro.data import get_benchmark, load
from repro.hw import hardware_penalty
from repro.search import (
    AccuracyProxy,
    CodesignObjective,
    EvolutionConfig,
    SearchEngine,
    SearchSpace,
    evolutionary_search,
)
from repro.utils.tables import render_table

SEARCH_TASKS = ("bci-iii-v", "har")
GA = EvolutionConfig(
    population=4 if FAST else 10,
    generations=2 if FAST else 5,
    elite=1 if FAST else 2,
    seed=0,
)
# Candidate evaluations fan out over a process pool and persist to the
# shared evaluation cache: a re-run (or an overlapping Pareto sweep over
# the same task/proxy) skips retraining entirely.
SEARCH_WORKERS = int(os.environ.get("REPRO_SEARCH_WORKERS", "1"))
CACHE_PATH = RESULTS_DIR / "search_cache.jsonl"


@pytest.fixture(scope="module")
def search_results():
    out = {}
    for name in SEARCH_TASKS:
        benchmark_def = get_benchmark(name)
        data = load(
            name,
            n_train=120 if FAST else 360,
            n_test=60 if FAST else 180,
            seed=0,
        )
        proxy = AccuracyProxy(
            data.x_train,
            data.y_train,
            data.x_test,
            data.y_test,
            n_classes=benchmark_def.n_classes,
            epochs=2 if FAST else 4,
            max_train_samples=96 if FAST else 240,
        )
        objective = CodesignObjective(
            proxy, benchmark_def.input_shape, benchmark_def.n_classes
        )
        space = SearchSpace(out_channel_choices=tuple(range(8, 161, 24)))
        with SearchEngine(
            objective,
            space,
            workers=SEARCH_WORKERS,
            executor="serial" if SEARCH_WORKERS == 1 else "process",
            cache_path=CACHE_PATH,
        ) as engine:
            result = evolutionary_search(objective, space, GA, engine=engine)
        out[name] = (result, objective, benchmark_def)
    return out


def test_table1_report(search_results, results_dir, benchmark):
    rows = []
    for name, (result, objective, benchmark_def) in search_results.items():
        found = result.best_config.as_paper_tuple()
        parts = objective.breakdown(result.best_config)
        rows.append(
            [
                name,
                str(found),
                str(benchmark_def.paper_config),
                f"{parts['accuracy']:.4f}",
                f"{parts['penalty']:.4f}",
                f"{parts['objective']:.4f}",
                len(result.evaluated),
                f"{result.stats.get('cache_hits', 0)}/{result.stats.get('evaluations', 0)}",
                f"{result.stats.get('speedup', 0.0):.1f}x@{result.stats.get('workers', 1)}",
            ]
        )
    table = render_table(
        [
            "task",
            "searched (D_H,D_L,D_K,O,Th)",
            "paper config",
            "acc",
            "L_HW",
            "obj",
            "evals",
            "hits/trains",
            "speedup",
        ],
        rows,
        title="Table I — evolutionary co-design search (bench-scale budget)",
    )
    write_result(results_dir, "table1_search.txt", table)
    _, objective, benchmark_def = search_results["har"]
    benchmark(
        hardware_penalty,
        search_results["har"][0].best_config,
        benchmark_def.input_shape,
        benchmark_def.n_classes,
    )


def test_search_monotone_and_penalized(search_results, benchmark):
    """Elitism keeps best-so-far monotone; penalty stays small vs accuracy."""
    for name, (result, objective, _) in search_results.items():
        assert all(
            b >= a - 1e-12 for a, b in zip(result.history, result.history[1:])
        ), name
        parts = objective.breakdown(result.best_config)
        assert parts["penalty"] < 0.2, name
    benchmark(lambda: [r.best_fitness for r, _, _ in search_results.values()])


def test_found_configs_are_lightweight(search_results, benchmark):
    """The search avoids maximal configurations (hardware-aware objective)."""
    for name, (result, _, benchmark_def) in search_results.items():
        config = result.best_config
        penalty = hardware_penalty(
            config, benchmark_def.input_shape, benchmark_def.n_classes
        )
        # Compare against the heaviest config in the space.
        from repro.core import UniVSAConfig

        heavy = UniVSAConfig(d_high=16, d_low=4, kernel_size=5, out_channels=160, voters=5)
        heavy_penalty = hardware_penalty(
            heavy, benchmark_def.input_shape, benchmark_def.n_classes
        )
        assert penalty < heavy_penalty, name
    benchmark(lambda: len(search_results))
