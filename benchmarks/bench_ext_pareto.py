"""Extension bench: the full accuracy/hardware Pareto frontier.

The paper's Eq. 7 scalarization picks one trade-off point; the NSGA-II
search exposes the whole frontier.  This bench runs it with the fast
accuracy proxy on one benchmark and renders the frontier as an ASCII
scatter (accuracy vs Eq. 5 memory).

The sweep shares the Table I engine's persistent evaluation cache (the
fingerprint covers dataset content + proxy budget, not the search loop),
so any genome the evolutionary search already trained is served from
disk instead of retrained.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import FAST, RESULTS_DIR, write_result
from repro.analysis import scatter
from repro.data import get_benchmark, load
from repro.hw import memory_kb
from repro.search import (
    AccuracyProxy,
    CodesignObjective,
    SearchEngine,
    SearchSpace,
    nsga2_search,
)
from repro.utils.tables import render_table

TASK = "bci-iii-v"
SEARCH_WORKERS = int(os.environ.get("REPRO_SEARCH_WORKERS", "1"))
CACHE_PATH = RESULTS_DIR / "search_cache.jsonl"


@pytest.fixture(scope="module")
def frontier_result():
    benchmark = get_benchmark(TASK)
    data = load(
        TASK,
        n_train=120 if FAST else 360,
        n_test=60 if FAST else 180,
        seed=0,
    )
    proxy = AccuracyProxy(
        data.x_train,
        data.y_train,
        data.x_test,
        data.y_test,
        n_classes=benchmark.n_classes,
        epochs=2 if FAST else 4,
        max_train_samples=96 if FAST else 240,
    )
    objective = CodesignObjective(proxy, benchmark.input_shape, benchmark.n_classes)
    space = SearchSpace(out_channel_choices=tuple(range(8, 129, 24)))
    with SearchEngine(
        objective,
        space,
        workers=SEARCH_WORKERS,
        executor="serial" if SEARCH_WORKERS == 1 else "process",
        cache_path=CACHE_PATH,
    ) as engine:
        result = nsga2_search(
            None,
            None,
            space,
            population=4 if FAST else 10,
            generations=2 if FAST else 5,
            seed=0,
            engine=engine,
        )
        stats = dict(engine.stats)
    return result, benchmark, stats


def test_pareto_report(frontier_result, results_dir, benchmark):
    result, benchmark_def, stats = frontier_result
    rows = []
    memories = []
    accuracies = []
    for point in result.frontier:
        memory = memory_kb(point.config, benchmark_def.input_shape, benchmark_def.n_classes)
        rows.append(
            [
                str(point.config.as_paper_tuple()),
                f"{point.accuracy:.4f}",
                f"{point.penalty:.4f}",
                f"{memory:.2f}",
            ]
        )
        memories.append(memory)
        accuracies.append(point.accuracy)
    table = render_table(
        ["config (D_H,D_L,D_K,O,Th)", "accuracy", "L_HW", "memory_KB"],
        rows,
        title=(
            f"Pareto frontier — {TASK} "
            f"({stats.get('evaluations', 0)} trained, "
            f"{stats.get('cache_hits', 0)} cache hits)"
        ),
    )
    chart = (
        scatter(
            memories,
            accuracies,
            width=56,
            height=12,
            title="accuracy (y) vs memory KB (x)",
        )
        if len(memories) >= 2
        else "(frontier collapsed to one point)"
    )
    write_result(results_dir, "ext_pareto.txt", table + "\n\n" + chart)
    benchmark(lambda: len(result.frontier))


def test_frontier_is_non_dominated(frontier_result, benchmark):
    result, _, _ = frontier_result
    for a in result.frontier:
        for b in result.frontier:
            assert not a.dominates(b) or a == b
    benchmark(lambda: result.best_accuracy().accuracy)


def test_frontier_spans_tradeoff(frontier_result, benchmark):
    result, _, _ = frontier_result
    best = result.best_accuracy()
    cheapest = result.cheapest()
    assert best.accuracy >= cheapest.accuracy
    assert cheapest.penalty <= best.penalty
    benchmark(lambda: cheapest.penalty)
