"""Extension bench: hardware scheduling ablations (Sec. IV design choices).

The paper argues two scheduling decisions:

1. **DVP stays sequential** — parallelizing it would add hardware without
   reducing end-to-end latency, because BiConv dominates the pipeline.
2. **Streaming pipelining pays** — under streaming inputs the execution
   time per sample approaches the BiConv latency alone.

This bench quantifies both with the cycle model: a hypothetical P-way
parallel DVP, and pipelined vs unpipelined streaming.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import TASKS, write_result
from repro.core import UniVSAConfig
from repro.hw import (
    PAPER_CONFIGS,
    HardwareSpec,
    pipeline_schedule,
    stage_cycles,
)
from repro.utils.tables import render_table


def _spec(name):
    shape, classes, tup = PAPER_CONFIGS[name]
    return HardwareSpec(UniVSAConfig.from_paper_tuple(tup), shape, classes)


@pytest.fixture(scope="module")
def ablation_rows():
    rows = {}
    for name in TASKS:
        spec = _spec(name)
        cycles = stage_cycles(spec)
        schedule = pipeline_schedule(spec)
        # Hypothetical 8-way parallel DVP: its stage time shrinks 8x...
        parallel_dvp = cycles.dvp // 8 + 1
        # ...but the streaming interval is still the conv stage, and even
        # the single-shot latency barely moves:
        latency_seq = cycles.total
        latency_par = latency_seq - cycles.dvp + parallel_dvp
        # Unpipelined streaming: every sample pays the full latency.
        unpipelined_interval = cycles.total
        rows[name] = {
            "latency_seq": latency_seq,
            "latency_par": latency_par,
            "latency_gain": 1.0 - latency_par / latency_seq,
            "interval_pipe": schedule.initiation_interval,
            "interval_flat": unpipelined_interval,
            "throughput_gain": unpipelined_interval / schedule.initiation_interval,
        }
    return rows


def test_hw_ablation_report(ablation_rows, results_dir, benchmark):
    rows = []
    for name in TASKS:
        r = ablation_rows[name]
        rows.append(
            [
                name,
                r["latency_seq"],
                r["latency_par"],
                f"{r['latency_gain'] * 100:.1f}%",
                r["interval_pipe"],
                r["interval_flat"],
                f"{r['throughput_gain']:.2f}x",
            ]
        )
    table = render_table(
        [
            "task",
            "lat (seq DVP)",
            "lat (8x DVP)",
            "gain",
            "interval (pipe)",
            "interval (flat)",
            "pipeline speedup",
        ],
        rows,
        title="Sec. IV scheduling ablations (cycles)",
    )
    write_result(results_dir, "ext_hw_ablation.txt", table)
    benchmark(stage_cycles, _spec("isolet"))


def test_parallel_dvp_buys_little(ablation_rows, benchmark):
    """8x DVP parallelism saves <6% latency on every task — the paper's
    justification for keeping DVP sequential."""
    for name in TASKS:
        assert ablation_rows[name]["latency_gain"] < 0.06, name
    benchmark(lambda: max(r["latency_gain"] for r in ablation_rows.values()))


def test_pipelining_multiplies_throughput(ablation_rows, benchmark):
    """Streaming overlap buys measurable throughput on every task (the
    gap between full latency and the BiConv-only interval).  The gain is
    ~1.22x where alpha=3 and smaller (~1.09x) on CHB-IB, whose D_K=5 conv
    dwarfs the other stages even harder."""
    for name in TASKS:
        assert ablation_rows[name]["throughput_gain"] > 1.05, name
    benchmark(lambda: min(r["throughput_gain"] for r in ablation_rows.values()))
