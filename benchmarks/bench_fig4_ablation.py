"""Fig. 4 reproduction: ablation of DVP / BiConv / SV over vector dimension.

Five variants are trained per value-vector dimension D on the EEGMMI
stand-in (the paper's Fig. 4 dataset): plain binary VSA, +DVP, +BiConv,
+SV, and full UniVSA.  Reported per point: mean accuracy +/- std over
seeds (the bars of Fig. 4) and the Eq. 5 memory footprint (the line),
plus the Sec. III-B memory-overhead percentages of each enhancement.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEEDS, FAST, write_result
from repro.core import UniVSAConfig, train_univsa
from repro.data import load
from repro.hw import memory_bits
from repro.utils.tables import render_table
from repro.utils.trainloop import TrainConfig

DIMS = (2, 4) if FAST else (2, 4, 8, 16)
SEEDS = tuple(range(1 if FAST else BENCH_SEEDS))
EPOCHS = 3 if FAST else 10
N_TRAIN, N_TEST = (120, 60) if FAST else (500, 250)

VARIANTS = {
    "VSA": dict(use_dvp=False, use_biconv=False, voters=1),
    "+DVP": dict(use_dvp=True, use_biconv=False, voters=1),
    "+BiConv": dict(use_dvp=False, use_biconv=True, voters=1),
    "+SV": dict(use_dvp=False, use_biconv=False, voters=3),
    "UniVSA": dict(use_dvp=True, use_biconv=True, voters=3),
}


def _config(dim: int, variant: dict) -> UniVSAConfig:
    return UniVSAConfig(
        d_high=dim,
        d_low=max(1, dim // 4),
        kernel_size=3,
        out_channels=dim,
        voters=variant["voters"],
        use_dvp=variant["use_dvp"],
        use_biconv=variant["use_biconv"],
        high_fraction=0.6,
    )


@pytest.fixture(scope="module")
def ablation():
    data = load("eegmmi", n_train=N_TRAIN, n_test=N_TEST, seed=0)
    results: dict[tuple[str, int], tuple[float, float, float]] = {}
    for dim in DIMS:
        for variant_name, variant in VARIANTS.items():
            config = _config(dim, variant)
            accuracies = []
            for seed in SEEDS:
                run = train_univsa(
                    data.x_train,
                    data.y_train,
                    n_classes=2,
                    config=config,
                    train_config=TrainConfig(epochs=EPOCHS, lr=0.008, seed=seed),
                )
                accuracies.append(run.artifacts.score(data.x_test, data.y_test))
            memory = memory_bits(config, (16, 64), 2) / 8000.0
            results[(variant_name, dim)] = (
                float(np.mean(accuracies)),
                float(np.std(accuracies)),
                memory,
            )
    return results


def test_fig4_report(ablation, results_dir, benchmark):
    rows = []
    for dim in DIMS:
        for variant in VARIANTS:
            mean, std, memory = ablation[(variant, dim)]
            rows.append([dim, variant, f"{mean:.4f}", f"{std:.4f}", f"{memory:.2f}"])
    table = render_table(
        ["D", "variant", "acc_mean", "acc_std", "memory_KB"],
        rows,
        title="Fig. 4 — ablation over vector dimension (EEGMMI stand-in)",
    )

    # Sec. III-B: per-enhancement memory overhead at the paper's Fig. 4
    # scale (relative to the plain-VSA footprint at the same D).
    dim = DIMS[-1]
    base = memory_bits(_config(dim, VARIANTS["VSA"]), (16, 64), 2)
    overhead_rows = []
    for variant in ("+DVP", "+BiConv", "+SV"):
        extra = memory_bits(_config(dim, VARIANTS[variant]), (16, 64), 2) - base
        overhead_rows.append([variant, f"{extra / base * 100:+.2f}%"])
    overhead = render_table(
        ["enhancement", "memory overhead"],
        overhead_rows,
        title=f"Sec. III-B — enhancement memory overhead at D={dim}",
    )

    # Same accounting at the paper's EEGMMI configuration (the reference
    # the paper's +0.59% / +5.64% / +0.39% numbers live at): each
    # enhancement's stored bits as a share of the full model.
    paper_config = UniVSAConfig.from_paper_tuple((8, 2, 3, 95, 1))
    total = memory_bits(paper_config, (16, 64), 2)
    vl_bits = paper_config.levels * paper_config.d_low
    kernel_bits = (
        paper_config.out_channels * paper_config.d_high * paper_config.kernel_size**2
    )
    extra_voter_bits = 16 * 64 * 2  # one extra similarity layer (C x W x L)
    paper_overhead = render_table(
        ["enhancement", "stored bits", "share of model", "paper"],
        [
            ["DVP (V_L)", vl_bits, f"{vl_bits / total * 100:+.2f}%", "+0.59%"],
            ["BiConv (K)", kernel_bits, f"{kernel_bits / total * 100:+.2f}%", "+5.64%"],
            ["SV (+1 voter)", extra_voter_bits, f"{extra_voter_bits / total * 100:+.2f}%", "+0.39%"],
        ],
        title="Sec. III-B — overhead at the paper's EEGMMI config (8,2,3,95,1)",
    )
    write_result(
        results_dir,
        "fig4_ablation.txt",
        table + "\n\n" + overhead + "\n\n" + paper_overhead,
    )
    benchmark(memory_bits, _config(8, VARIANTS["UniVSA"]), (16, 64), 2)


@pytest.mark.skipif(FAST, reason="ordering claims need full budgets")
def test_biconv_improves_plain_vsa(ablation, benchmark):
    """Fig. 4: BiConv consistently improves accuracy across dimensions."""
    wins = sum(
        ablation[("+BiConv", d)][0] > ablation[("VSA", d)][0] for d in DIMS
    )
    assert wins >= len(DIMS) - 1  # allow one noisy tie
    benchmark(lambda: wins)


@pytest.mark.skipif(FAST, reason="ordering claims need full budgets")
def test_univsa_tops_the_ablation(ablation, benchmark):
    """The combined model is at least as good as every single enhancement
    at the largest dimension."""
    dim = DIMS[-1]
    univsa = ablation[("UniVSA", dim)][0]
    for variant in ("VSA", "+DVP", "+SV"):
        assert univsa >= ablation[(variant, dim)][0] - 0.02, variant
    benchmark(lambda: univsa)


def test_enhancement_memory_is_tiny(ablation, benchmark):
    """Sec. III-B: enhancement memory is small vs the overall footprint.

    The paper's percentages (+0.59% DVP, +5.64% BiConv, +0.39% SV) are
    relative to its full EEGMMI model (O=95); at the small ablation dims
    the relative numbers are larger, so the assertions bound each
    enhancement at that scale: DVP < 10%, BiConv < 15%, SV < 25%.
    """
    dim = 16  # pure arithmetic: evaluated at the full-sweep scale always
    base = memory_bits(_config(dim, VARIANTS["VSA"]), (16, 64), 2)
    bounds = {"+DVP": 0.10, "+BiConv": 0.15, "+SV": 0.25}
    for variant, bound in bounds.items():
        extra = memory_bits(_config(dim, VARIANTS[variant]), (16, 64), 2) - base
        assert extra / base < bound, variant
    benchmark(lambda: base)
