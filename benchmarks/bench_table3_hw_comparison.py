"""Table III reproduction: UniVSA hardware vs published accelerators.

The SVM/KNN/BNN/QNN/LookHD rows are the literature constants the paper
itself cites; the LDC row is the published LDC implementation; the UniVSA
row (ISOLET config) comes from our calibrated hardware model.  The tests
check the paper's comparison claims (Sec. V-C ① and ②).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.core import UniVSAConfig
from repro.hw import PAPER_CONFIGS, PAPER_TABLE3, hardware_report
from repro.utils.tables import render_table


@pytest.fixture(scope="module")
def univsa_row():
    shape, classes, tup = PAPER_CONFIGS["isolet"]
    report = hardware_report(
        UniVSAConfig.from_paper_tuple(tup), shape, classes, name="UniVSA (ours)"
    )
    return {
        "fpga": "Zynq-ZU3EG",
        "input": "(16,40) / 26",
        "freq_mhz": 250,
        "memory_kb": report.memory_kb,
        "latency_ms": report.latency_ms,
        "power_w": report.power_w,
        "luts": report.luts,
        "brams": report.brams,
        "dsps": report.dsps,
    }


def _fmt(value, pattern="{:.2f}"):
    if value is None:
        return "-"
    return pattern.format(value)


def test_table3_report(univsa_row, results_dir, benchmark):
    rows = []
    for name, row in {**PAPER_TABLE3, "UniVSA (ours)": univsa_row}.items():
        rows.append(
            [
                name,
                row["fpga"],
                row["input"],
                _fmt(row["freq_mhz"], "{:.0f}"),
                _fmt(row["memory_kb"]),
                _fmt(row["latency_ms"], "{:.3f}"),
                _fmt(row["power_w"]),
                f"{row['luts'] / 1000:.2f}",
                _fmt(row["brams"], "{:.0f}"),
                _fmt(row["dsps"], "{:.0f}"),
            ]
        )
    table = render_table(
        ["model", "FPGA", "input/classes", "MHz", "mem_KB", "lat_ms", "W", "kLUT", "BRAM", "DSP"],
        rows,
        title="Table III — UniVSA (calibrated model) vs published implementations",
    )
    write_result(results_dir, "table3_hw_comparison.txt", table)
    shape, classes, tup = PAPER_CONFIGS["isolet"]
    benchmark(
        hardware_report, UniVSAConfig.from_paper_tuple(tup), shape, classes
    )


def test_univsa_vs_conventional_ml(univsa_row, benchmark):
    """Claim ①: far lower resources/power/latency than SVM/KNN/BNN/QNN."""
    for other in ("SVM [31]", "KNN [16]", "BNN [14]", "QNN [13]"):
        row = PAPER_TABLE3[other]
        assert univsa_row["luts"] < 0.5 * row["luts"], other
        assert univsa_row["power_w"] < row["power_w"] / 10, other
    # Under the 1.5 W BCI feasibility line; every non-binary-VSA row above.
    assert univsa_row["power_w"] < 1.5
    for other in ("SVM [31]", "KNN [16]", "BNN [14]", "QNN [13]", "LookHD [9]"):
        assert PAPER_TABLE3[other]["power_w"] > 1.5, other
    benchmark(lambda: univsa_row["luts"])


def test_univsa_vs_binary_vsa(univsa_row, benchmark):
    """Claim ②: dominates LookHD; costs more than LDC (accepted trade-off)."""
    lookhd = PAPER_TABLE3["LookHD [9]"]
    assert univsa_row["luts"] < lookhd["luts"] / 10
    assert univsa_row["memory_kb"] < lookhd["memory_kb"] / 10
    ldc = PAPER_TABLE3["LDC [11]"]
    assert univsa_row["luts"] > ldc["luts"]
    assert univsa_row["power_w"] > ldc["power_w"]
    # ... but still below the published SVM resource bar (the paper's
    # feasibility argument for the trade-off).
    assert univsa_row["luts"] < PAPER_TABLE3["SVM [31]"]["luts"]
    benchmark(lambda: univsa_row["memory_kb"])
