"""LeHDC: learning-based high-dimensional computing classifier [12].

LeHDC keeps the classic HDC encoding (fixed random feature vectors F and a
level codebook V at D ~= 10,000) but replaces bundled class prototypes with
a binary dense layer trained by gradient descent over the encodings.  Only
the similarity layer is learned; encoding stays fixed — which is exactly
why it needs high dimension, and why the paper reports MB-scale memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import BinaryLinear, Module, Tensor
from repro.utils.trainloop import TrainConfig, TrainHistory, fit_classifier
from repro.vsa import classify, encode_record, level_item_memory, random_item_memory

__all__ = ["LeHDCClassifier", "LeHDCHead"]


class LeHDCHead(Module):
    """The trainable similarity layer over fixed encodings."""

    def __init__(self, dim: int, n_classes: int, seed: int = 0) -> None:
        super().__init__()
        self.similarity = BinaryLinear(dim, n_classes, rng=np.random.default_rng(seed))
        self.logit_scale = 8.0 / dim

    def forward(self, s: Tensor) -> Tensor:
        """Run the module's forward computation."""
        return self.similarity(s) * self.logit_scale


@dataclass
class LeHDCClassifier:
    """End-to-end LeHDC: fixed encoding + trained binary class vectors."""

    dim: int = 10_000
    levels: int = 256
    seed: int = 0
    train_config: TrainConfig = None

    def __post_init__(self) -> None:
        if self.train_config is None:
            self.train_config = TrainConfig(epochs=15, lr=0.02, seed=self.seed)
        self.feature_memory: np.ndarray | None = None
        self.value_memory: np.ndarray | None = None
        self.class_vectors: np.ndarray | None = None
        self.history: TrainHistory | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LeHDCClassifier":
        """Train on discretized samples (B, N) or (B, W, L)."""
        x = np.asarray(x).reshape(len(x), -1)
        y = np.asarray(y)
        rng = np.random.default_rng(self.seed)
        n_classes = int(y.max()) + 1
        self.feature_memory = random_item_memory(x.shape[1], self.dim, rng=rng)
        self.value_memory = level_item_memory(self.levels, self.dim, rng=rng)
        encodings = self.encode(x).astype(np.float32)
        head = LeHDCHead(self.dim, n_classes, seed=self.seed)
        self.history = fit_classifier(head, encodings, y, self.train_config)
        self.class_vectors = head.similarity.binary_weight()
        return self

    def encode(self, x: np.ndarray, chunk: int = 32) -> np.ndarray:
        """Classic record encoding (Eq. 1) with the fixed memories.

        Encoding materializes (chunk, N, D) intermediates; at D ~= 10^4 the
        chunked loop keeps that a few hundred MB instead of terabytes.
        """
        if self.feature_memory is None:
            raise RuntimeError("classifier is not fitted")
        x = np.asarray(x).reshape(len(x), -1)
        pieces = [
            encode_record(x[start : start + chunk], self.feature_memory, self.value_memory)
            for start in range(0, len(x), chunk)
        ]
        return np.concatenate(pieces)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Argmax similarity against the trained class vectors."""
        if self.class_vectors is None:
            raise RuntimeError("classifier is not fitted")
        return classify(self.encode(x), self.class_vectors)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(x) == np.asarray(y)).mean())

    def memory_footprint_bits(self) -> int:
        """Deployed size: (M + N + C) x D bits."""
        if self.class_vectors is None:
            raise RuntimeError("classifier is not fitted")
        n_features = self.feature_memory.shape[0]
        n_classes = self.class_vectors.shape[0]
        return (self.levels + n_features + n_classes) * self.dim
