"""LeHDC baseline: learning-based high-dimensional computing [12]."""

from .model import LeHDCClassifier, LeHDCHead

__all__ = ["LeHDCClassifier", "LeHDCHead"]
