"""Classic binary VSA substrate: bit ops, hypervectors, item memories."""

from .bitops import (
    dot_from_matches,
    hamming_distance_packed,
    pack_bipolar,
    popcount,
    unpack_bipolar,
    xnor_popcount,
)
from .capacity import CapacityReport, expected_member_similarity, measure_capacity
from .classic import ClassicVSAClassifier, encode_record
from .hypervector import (
    bind,
    bundle,
    flip_fraction,
    is_bipolar,
    permute,
    random_bipolar,
    sign_bipolar,
)
from .itemmemory import ItemMemory, level_item_memory, random_item_memory
from .resonator import ResonatorResult, resonator_factorize
from .sequence import encode_ngram, encode_sequence, ngram_statistics_vector
from .similarity import classify, cosine_similarity, dot_similarity, hamming_distance

__all__ = [
    "pack_bipolar",
    "unpack_bipolar",
    "popcount",
    "xnor_popcount",
    "hamming_distance_packed",
    "dot_from_matches",
    "bind",
    "bundle",
    "sign_bipolar",
    "random_bipolar",
    "permute",
    "flip_fraction",
    "is_bipolar",
    "ItemMemory",
    "random_item_memory",
    "level_item_memory",
    "dot_similarity",
    "hamming_distance",
    "cosine_similarity",
    "classify",
    "ClassicVSAClassifier",
    "encode_record",
    "CapacityReport",
    "expected_member_similarity",
    "measure_capacity",
    "ResonatorResult",
    "resonator_factorize",
    "encode_ngram",
    "encode_sequence",
    "ngram_statistics_vector",
]
