"""Similarity measures between bipolar hypervectors (Eq. 2)."""

from __future__ import annotations

import numpy as np

from .bitops import dot_from_matches, pack_bipolar, xnor_popcount

__all__ = ["dot_similarity", "hamming_distance", "cosine_similarity", "classify"]


def dot_similarity(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bipolar dot product; supports (..., D) x (..., D) broadcasting."""
    return (np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)).sum(axis=-1)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Number of disagreeing positions."""
    return (np.asarray(a) != np.asarray(b)).sum(axis=-1)


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cosine similarity; for bipolar vectors this is dot / D."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    num = (a * b).sum(axis=-1)
    den = np.linalg.norm(a, axis=-1) * np.linalg.norm(b, axis=-1)
    return num / np.where(den == 0.0, 1.0, den)


def classify(
    samples: np.ndarray, class_vectors: np.ndarray, metric: str = "dot"
) -> np.ndarray:
    """Predict labels: argmax similarity of samples (B, D) vs classes (C, D).

    ``metric`` is "dot" or "hamming"; by the equivalence dot = D - 2*hamming
    both must yield identical predictions (tested property).
    The "dot" path uses the packed XNOR/popcount kernel — the same
    computation the hardware similarity module performs.
    """
    samples = np.atleast_2d(np.asarray(samples))
    class_vectors = np.atleast_2d(np.asarray(class_vectors))
    if metric == "dot":
        packed_s, dim = pack_bipolar(samples)
        packed_c, _ = pack_bipolar(class_vectors)
        matches = xnor_popcount(packed_s[:, None, :], packed_c[None, :, :], dim)
        scores = dot_from_matches(matches, dim)
        return scores.argmax(axis=-1)
    if metric == "hamming":
        distances = hamming_distance(samples[:, None, :], class_vectors[None, :, :])
        return distances.argmin(axis=-1)
    raise ValueError(f"unknown metric {metric!r}")
