"""Bit-kernel dispatch: one selected implementation set for pack/popcount.

The packed datapath spends its time in three primitives — packing
bipolar vectors into uint64 words, popcounting XNOR'd words, and
XOR-match counting a batch of packed operands against a fixed key
matrix (the conv kernel taps).  Each has a portable reference
implementation (a 64-lane multiply-accumulate pack, a 16-bit LUT
popcount, a word-loop match) and a fast path built on NumPy ufuncs
(``np.packbits`` with little bit order viewed as little-endian words,
``np.bitwise_count`` on NumPy >= 2, and a per-tap 256-entry byte-LUT
gather for the match).  This module owns the choice:

* the selection happens **once at import**
  (``REPRO_KERNELS=legacy|fast|jit`` overrides it) and every call in
  :mod:`repro.vsa.bitops` dispatches through the active
  :class:`KernelSet`;
* :func:`using_kernels` temporarily swaps the set — the property tests
  prove all sets produce identical words and counts, and the
  throughput bench uses it to time the seed-equivalent configuration;
* :func:`kernel_info` / :func:`publish_kernel_metrics` expose what is
  active, so every profile and ledger record is attributable to a
  specific kernel configuration.

The ``jit`` set (:mod:`repro.vsa.kernels_jit`) is optional: it needs
Numba, and when the import fails — the common case on minimal installs —
selection **falls back to the fast set instead of erroring**, with the
downgrade recorded in :func:`kernel_info` (``fallback_from``) so ledger
records never misattribute a fast run to the jit backend.

All pack implementations use the same bit order (element ``d`` of a
vector lands at bit ``d % 64`` of word ``d // 64``), so packed artifacts
are interchangeable between sets.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "KernelSet",
    "FAST_KERNELS",
    "LEGACY_KERNELS",
    "JIT_KERNELS",
    "available_kernel_sets",
    "get_kernels",
    "set_kernels",
    "using_kernels",
    "wrap_kernels",
    "kernel_info",
    "publish_kernel_metrics",
    "HAVE_BITWISE_COUNT",
    "HAVE_JIT",
]

WORD_BITS = 64

#: Little-endian uint64 — a *view* through this dtype reads 8 packed
#: bytes as one word with byte 0 least significant on every platform.
_U64_LE = np.dtype("<u8")

HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")

# ---------------------------------------------------------------------------
# legacy implementations (the seed engine's arithmetic, kept verbatim)
# ---------------------------------------------------------------------------
_POP16: np.ndarray | None = None


def _pop16_table() -> np.ndarray:
    """The 65536-entry 16-bit popcount LUT, built lazily and vectorized.

    The table is dead weight when ``np.bitwise_count`` serves popcounts,
    so it is not built at import; construction is a SWAR reduction over
    ``arange`` rather than the seed's 65536-iteration Python loop.
    """
    global _POP16
    if _POP16 is None:
        table = np.arange(1 << 16, dtype=np.uint16)
        table = (table & 0x5555) + ((table >> 1) & 0x5555)
        table = (table & 0x3333) + ((table >> 2) & 0x3333)
        table = (table + (table >> 4)) & 0x0F0F
        table = (table + (table >> 8)) & 0x001F
        _POP16 = table.astype(np.uint8)
    return _POP16


def _pack_legacy(vectors: np.ndarray) -> tuple[np.ndarray, int]:
    """Multiply-accumulate pack: 64 weighted lanes summed per word."""
    vectors = np.asarray(vectors)
    dim = vectors.shape[-1]
    n_words = (dim + WORD_BITS - 1) // WORD_BITS
    bits = (vectors > 0).astype(np.uint8)
    padded = np.zeros(vectors.shape[:-1] + (n_words * WORD_BITS,), dtype=np.uint8)
    padded[..., :dim] = bits
    shaped = padded.reshape(vectors.shape[:-1] + (n_words, WORD_BITS))
    weights = (np.uint64(1) << np.arange(WORD_BITS, dtype=np.uint64)).astype(np.uint64)
    packed = (shaped.astype(np.uint64) * weights).sum(axis=-1, dtype=np.uint64)
    return packed, dim


def _unpack_legacy(packed: np.ndarray, dim: int) -> np.ndarray:
    """Shift-and-mask unpack (inverse of either pack implementation)."""
    packed = np.asarray(packed, dtype=np.uint64)
    n_words = packed.shape[-1]
    shifts = np.arange(WORD_BITS, dtype=np.uint64)
    bits = (packed[..., :, None] >> shifts) & np.uint64(1)
    flat = bits.reshape(packed.shape[:-1] + (n_words * WORD_BITS,))[..., :dim]
    return np.where(flat == 1, 1, -1).astype(np.int8)


def _popcount8_lut(words: np.ndarray) -> np.ndarray:
    """Per-word popcount via four 16-bit LUT lookups; uint8 result."""
    words = np.asarray(words, dtype=np.uint64)
    table = _pop16_table()
    mask = np.uint64(0xFFFF)
    total = table[(words & mask).astype(np.intp)]
    for shift in (16, 32, 48):
        total = total + table[((words >> np.uint64(shift)) & mask).astype(np.intp)]
    return total


# ---------------------------------------------------------------------------
# fast implementations
# ---------------------------------------------------------------------------
def _pack_fast(vectors: np.ndarray) -> tuple[np.ndarray, int]:
    """``np.packbits`` pack: little bit order, bytes viewed as LE words."""
    vectors = np.asarray(vectors)
    dim = vectors.shape[-1]
    n_words = (dim + WORD_BITS - 1) // WORD_BITS
    n_bytes = n_words * 8
    data = np.packbits(vectors > 0, axis=-1, bitorder="little")
    if data.shape[-1] != n_bytes:
        padded = np.zeros(vectors.shape[:-1] + (n_bytes,), dtype=np.uint8)
        padded[..., : data.shape[-1]] = data
        data = padded
    words = np.ascontiguousarray(data).view(_U64_LE)
    return words.astype(np.uint64, copy=False), dim


def _unpack_fast(packed: np.ndarray, dim: int) -> np.ndarray:
    """``np.unpackbits`` unpack of little-endian words."""
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    data = packed.astype(_U64_LE, copy=False).view(np.uint8)
    bits = np.unpackbits(data, axis=-1, bitorder="little")[..., :dim]
    return np.where(bits == 1, 1, -1).astype(np.int8)


def _popcount8_native(words: np.ndarray) -> np.ndarray:
    """Per-word popcount via the ``np.bitwise_count`` ufunc; uint8 result."""
    return np.bitwise_count(np.asarray(words, dtype=np.uint64))


# ---------------------------------------------------------------------------
# fused-match builders
#
# ``match_builder(key_bytes)`` precomputes against a fixed (O, n_bytes)
# uint8 key matrix and returns ``matcher(op_bytes)`` mapping packed
# operands (..., n_bytes) to XOR bit counts (..., O) — the inner loop of
# the fused conv stage.  Padding bits are zero on both sides by the
# shared pack layout, so they contribute no counts and every builder is
# bit-exact against every other (enforced by the property suite).
# ---------------------------------------------------------------------------
def _words_from_bytes(data: np.ndarray) -> np.ndarray:
    """Bytes (..., n) -> uint64 little-endian words (..., ceil(n/8))."""
    n_bytes = data.shape[-1]
    n_words = -(-n_bytes // 8)
    if n_bytes != n_words * 8:
        padded = np.zeros(data.shape[:-1] + (n_words * 8,), dtype=np.uint8)
        padded[..., :n_bytes] = data
        data = padded
    return np.ascontiguousarray(data).view(_U64_LE).astype(np.uint64, copy=False)


def _check_key(key_bytes: np.ndarray) -> np.ndarray:
    key = np.ascontiguousarray(np.asarray(key_bytes, dtype=np.uint8))
    if key.ndim != 2:
        raise ValueError(f"key_bytes must be (O, n_bytes) uint8, got shape {key.shape}")
    return key


def _match_builder_words(key_bytes: np.ndarray):
    """Reference match: bytes regrouped to words, XOR + LUT16 popcount."""
    key_words = _words_from_bytes(_check_key(key_bytes))  # (O, Wc)

    def matcher(op_bytes: np.ndarray) -> np.ndarray:
        op_words = _words_from_bytes(np.asarray(op_bytes, dtype=np.uint8))
        counts = _popcount8_lut(op_words[..., None, :] ^ key_words)
        return counts.sum(axis=-1, dtype=np.int64)

    return matcher


def _match_builder_lut8(key_bytes: np.ndarray):
    """Byte-LUT match: one 256-entry XOR-popcount table per key byte.

    The tables hold ``popcount(v ^ key[:, t])`` for every byte value
    ``v`` — the match loop is then a pure gather-accumulate over the
    operand bytes, never materializing an XOR intermediate (the DVP
    lookup idea applied to the conv kernel itself).  uint16 accumulation
    is exact while ``n_bytes * 8 <= 65535``, far beyond any conv block.
    """
    key = _check_key(key_bytes)
    o, n_bytes = key.shape
    pop8 = _pop16_table()[:256]
    byte_values = np.arange(256, dtype=np.uint8)
    # (n_bytes, 256, O): tables[t][v] = per-channel XOR popcount of byte v.
    tables = np.ascontiguousarray(
        pop8[(byte_values[None, :, None] ^ key.T[:, None, :]).astype(np.intp)]
    )

    def matcher(op_bytes: np.ndarray) -> np.ndarray:
        op = np.asarray(op_bytes, dtype=np.uint8)
        acc = np.zeros(op.shape[:-1] + (o,), dtype=np.uint16)
        for t in range(n_bytes):
            acc += tables[t][op[..., t]]
        return acc

    return matcher


# ---------------------------------------------------------------------------
# the dispatch table
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class KernelSet:
    """One coherent set of bit-kernel implementations."""

    name: str
    pack: Callable[[np.ndarray], tuple[np.ndarray, int]]
    unpack: Callable[[np.ndarray, int], np.ndarray]
    popcount8: Callable[[np.ndarray], np.ndarray]  # per-word counts, uint8
    pack_impl: str
    popcount_impl: str
    # key bytes (O, n_bytes) -> matcher(op bytes (..., n_bytes)) -> (..., O)
    match_builder: Callable[[np.ndarray], Callable[[np.ndarray], np.ndarray]]
    match_impl: str


LEGACY_KERNELS = KernelSet(
    name="legacy",
    pack=_pack_legacy,
    unpack=_unpack_legacy,
    popcount8=_popcount8_lut,
    pack_impl="mac64",
    popcount_impl="lut16",
    match_builder=_match_builder_words,
    match_impl="xor-words",
)

FAST_KERNELS = KernelSet(
    name="fast",
    pack=_pack_fast,
    unpack=_unpack_fast,
    popcount8=_popcount8_native if HAVE_BITWISE_COUNT else _popcount8_lut,
    pack_impl="packbits",
    popcount_impl="bitwise_count" if HAVE_BITWISE_COUNT else "lut16",
    match_builder=_match_builder_lut8,
    match_impl="lut8-gather",
)

_SETS = {"legacy": LEGACY_KERNELS, "fast": FAST_KERNELS}

# The optional Numba backend registers itself only when its import
# chain succeeds; a missing/broken numba leaves JIT_KERNELS = None and
# the reason in JIT_UNAVAILABLE_REASON.  Nothing below may hard-fail on
# its absence — "jit requested but unavailable" downgrades to fast.
JIT_KERNELS: KernelSet | None = None
JIT_UNAVAILABLE_REASON: str | None = None
try:
    from .kernels_jit import build_jit_kernels, numba_unavailable_reason

    JIT_KERNELS = build_jit_kernels()
    if JIT_KERNELS is None:
        JIT_UNAVAILABLE_REASON = numba_unavailable_reason()
except Exception as exc:  # pragma: no cover — a broken numba install
    JIT_KERNELS = None
    JIT_UNAVAILABLE_REASON = f"{type(exc).__name__}: {exc}"

HAVE_JIT = JIT_KERNELS is not None
if HAVE_JIT:
    _SETS["jit"] = JIT_KERNELS

#: Name of the set a selection was downgraded from (``"jit"`` when the
#: jit backend was requested but unavailable), ``None`` otherwise.
_fallback_from: str | None = None


def available_kernel_sets() -> dict[str, KernelSet]:
    """Name -> :class:`KernelSet` for every selectable set."""
    return dict(_SETS)


def _resolve_set(name: str) -> KernelSet:
    """Resolve a set name, downgrading an unavailable ``jit`` to fast."""
    global _fallback_from
    if name == "jit" and not HAVE_JIT:
        _fallback_from = "jit"
        return FAST_KERNELS
    try:
        return _SETS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel set {name!r}; expected one of {sorted(_SETS)}"
        ) from None


def _default_kernels() -> KernelSet:
    requested = os.environ.get("REPRO_KERNELS", "fast").strip().lower()
    if requested == "jit":
        return _resolve_set("jit")
    return _SETS.get(requested, FAST_KERNELS)


_active: KernelSet = _default_kernels()


def get_kernels() -> KernelSet:
    """The active kernel set."""
    return _active


def set_kernels(kernels: KernelSet | str) -> KernelSet:
    """Install a kernel set (by name or instance); returns the active set.

    Unknown names raise; ``"jit"`` on a host without Numba installs the
    fast set instead (recorded as ``fallback_from`` in
    :func:`kernel_info`) — the optional backend must never turn into a
    hard failure.
    """
    global _active
    if isinstance(kernels, str):
        kernels = _resolve_set(kernels)
    _active = kernels
    return _active


def wrap_kernels(
    base: KernelSet,
    pack: Callable[[np.ndarray], tuple[np.ndarray, int]] | None = None,
    unpack: Callable[[np.ndarray, int], np.ndarray] | None = None,
    popcount8: Callable[[np.ndarray], np.ndarray] | None = None,
    match_builder: Callable | None = None,
    suffix: str = "+wrapped",
) -> KernelSet:
    """A derived :class:`KernelSet` with some primitives interposed.

    The seam fault-injection harnesses hook into: a wrapper observes or
    perturbs the packed words flowing through ``pack``/``popcount8``
    without the engines knowing (see :func:`repro.runtime.chaos.chaos_kernels`).
    ``kernel_info`` keeps the base implementation names, tagged with
    ``suffix``, so ledger records stay attributable.
    """
    return KernelSet(
        name=base.name + suffix,
        pack=pack if pack is not None else base.pack,
        unpack=unpack if unpack is not None else base.unpack,
        popcount8=popcount8 if popcount8 is not None else base.popcount8,
        pack_impl=base.pack_impl,
        popcount_impl=base.popcount_impl,
        match_builder=(
            match_builder if match_builder is not None else base.match_builder
        ),
        match_impl=base.match_impl,
    )


@contextmanager
def using_kernels(kernels: KernelSet | str):
    """Temporarily make ``kernels`` the active set."""
    previous = get_kernels()
    active = set_kernels(kernels)
    try:
        yield active
    finally:
        set_kernels(previous)


def kernel_info(kernels: KernelSet | None = None) -> dict:
    """JSON-friendly description of the (active) kernel configuration."""
    active = kernels if kernels is not None else get_kernels()
    from repro.vsa.kernels_cc import cc_info

    info = {
        "set": active.name,
        "pack": active.pack_impl,
        "popcount": active.popcount_impl,
        "match": active.match_impl,
        "numpy": np.__version__,
        "bitwise_count_available": HAVE_BITWISE_COUNT,
        "jit_available": HAVE_JIT,
        "fallback_from": _fallback_from,
    }
    info.update(cc_info())
    return info


def publish_kernel_metrics(registry=None) -> None:
    """Record the active kernel configuration as gauges.

    ``kernels.pack_packbits`` / ``kernels.popcount_native`` are 1.0 when
    the respective fast path is active, 0.0 on the legacy path — so a
    metrics snapshot (and therefore every ledger record built from one)
    pins down which kernels produced its latencies.
    """
    if registry is None:
        from repro.obs import get_registry

        registry = get_registry()
    active = get_kernels()
    registry.gauge("kernels.pack_packbits").set(
        1.0 if active.pack_impl == "packbits" else 0.0
    )
    registry.gauge("kernels.popcount_native").set(
        1.0 if active.popcount_impl == "bitwise_count" else 0.0
    )
    from repro.vsa.kernels_cc import cc_enabled

    registry.gauge("kernels.cc_conv").set(1.0 if cc_enabled() else 0.0)
