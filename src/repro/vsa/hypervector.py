"""Dense bipolar hypervector operations (the VSA algebra of Eq. 1).

Vectors are int8 arrays over {-1, +1}.  ``bind`` is elementwise product
(XNOR in bit domain), ``bundle`` is majority with the paper's sgn(0)=+1
tiebreak.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "random_bipolar",
    "bind",
    "bundle",
    "sign_bipolar",
    "permute",
    "flip_fraction",
    "is_bipolar",
]


def is_bipolar(v: np.ndarray) -> bool:
    """True if every entry of ``v`` is -1 or +1."""
    return bool(np.isin(np.asarray(v), (-1, 1)).all())


def random_bipolar(
    shape: tuple[int, ...] | int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """I.i.d. uniform bipolar array of the given shape."""
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    return gen.choice(np.array([-1, 1], dtype=np.int8), size=shape)


def bind(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Binding: elementwise product. Self-inverse: bind(bind(a,b),b) == a."""
    return (np.asarray(a, dtype=np.int8) * np.asarray(b, dtype=np.int8)).astype(np.int8)


def sign_bipolar(x: np.ndarray) -> np.ndarray:
    """sgn with the paper's tiebreak sgn(0) = +1, output int8 bipolar."""
    return np.where(np.asarray(x) >= 0, 1, -1).astype(np.int8)


def bundle(vectors: np.ndarray, axis: int = 0) -> np.ndarray:
    """Bundling: majority vote along ``axis`` (Eq. 1's sgn of sum)."""
    total = np.asarray(vectors, dtype=np.int64).sum(axis=axis)
    return sign_bipolar(total)


def permute(v: np.ndarray, shift: int = 1) -> np.ndarray:
    """Cyclic-shift permutation along the last axis (a VSA role operator)."""
    return np.roll(np.asarray(v), shift, axis=-1)


def flip_fraction(
    v: np.ndarray, fraction: float, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Flip a random ``fraction`` of positions — noise-injection utility."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    v = np.asarray(v, dtype=np.int8).copy()
    flat = v.reshape(-1)
    n_flip = int(round(fraction * flat.size))
    idx = gen.choice(flat.size, size=n_flip, replace=False)
    flat[idx] = -flat[idx]
    return v
