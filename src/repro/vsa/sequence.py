"""Sequence and n-gram encodings over the bipolar VSA algebra.

Completes the classic VSA substrate with the permutation-based sequence
operators used throughout the HDC literature (Kanerva [7]): a sequence is
encoded by cyclically permuting each element's vector by its position and
binding/bundling the results.  Not used by UniVSA's record encoding, but
part of any credible VSA library surface and exercised by the VSA-H
baseline tooling.
"""

from __future__ import annotations

import numpy as np

from .hypervector import bind, permute, sign_bipolar

__all__ = ["encode_ngram", "encode_sequence", "ngram_statistics_vector"]


def encode_ngram(vectors: np.ndarray) -> np.ndarray:
    """Bind a window of vectors with position-permutation.

    ``vectors`` is (n, D); element i is permuted by (n-1-i) and all are
    bound together:  rho^{n-1}(v_0) * rho^{n-2}(v_1) * ... * v_{n-1}.
    """
    vectors = np.asarray(vectors, dtype=np.int8)
    if vectors.ndim != 2:
        raise ValueError("encode_ngram expects (n, D)")
    n = vectors.shape[0]
    out = np.ones(vectors.shape[1], dtype=np.int8)
    for i in range(n):
        out = bind(out, permute(vectors[i], n - 1 - i))
    return out


def encode_sequence(vectors: np.ndarray, n: int = 3) -> np.ndarray:
    """Encode a sequence as the bundle of its n-gram encodings.

    ``vectors`` is (T, D) with T >= n; returns the bipolar bundle over the
    T - n + 1 sliding n-grams.
    """
    vectors = np.asarray(vectors, dtype=np.int8)
    if vectors.ndim != 2:
        raise ValueError("encode_sequence expects (T, D)")
    if n < 1 or n > vectors.shape[0]:
        raise ValueError("n must be in [1, T]")
    grams = np.stack(
        [encode_ngram(vectors[t : t + n]) for t in range(vectors.shape[0] - n + 1)]
    )
    return sign_bipolar(grams.astype(np.int64).sum(axis=0))


def ngram_statistics_vector(
    symbols: np.ndarray, item_memory: np.ndarray, n: int = 3
) -> np.ndarray:
    """Sequence vector for a discrete symbol stream via an item memory.

    ``symbols`` is (T,) integer ids into ``item_memory`` (V, D).
    """
    symbols = np.asarray(symbols)
    if symbols.ndim != 1:
        raise ValueError("symbols must be 1-D")
    return encode_sequence(item_memory[symbols], n=n)
