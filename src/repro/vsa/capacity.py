"""Bundling-capacity analysis for bipolar hypervectors.

How many vectors can a single bundle hold before its members become
unrecoverable?  The classic VSA question (Kanerva; Frady et al.) —
relevant here because UniVSA's low dimensions sit exactly where capacity
limits bite (the paper's Fig. 4 saturation argument).

For a bundle of k random bipolar vectors in D dimensions, the expected
normalized similarity of a member to the bundle is ~ sqrt(2/(pi k)) and
member/non-member separation shrinks as k grows; this module provides
both the analytic estimate and an empirical measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .hypervector import bundle, random_bipolar

__all__ = ["CapacityReport", "expected_member_similarity", "measure_capacity"]


def expected_member_similarity(k: int) -> float:
    """Analytic E[cos(member, bundle)] for k bundled random vectors.

    For odd k the majority of k i.i.d. signs agrees with any single member
    with probability p = 1/2 + binom(k-1, (k-1)/2) / 2^k, giving expected
    normalized similarity 2p - 1 ~ sqrt(2 / (pi k)).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    return math.sqrt(2.0 / (math.pi * k))


@dataclass
class CapacityReport:
    """Empirical capacity curve of a dimension."""

    dim: int
    set_sizes: list[int]
    member_similarities: list[float]  # mean cos(member, bundle)
    retrieval_accuracies: list[float]  # member recovered from candidates

    def capacity_at(self, threshold: float = 0.99) -> int:
        """Largest tested set size whose retrieval accuracy >= threshold."""
        best = 0
        for size, accuracy in zip(self.set_sizes, self.retrieval_accuracies):
            if accuracy >= threshold:
                best = size
        return best


def measure_capacity(
    dim: int,
    set_sizes: tuple[int, ...] = (1, 3, 7, 15, 31),
    n_candidates: int = 64,
    trials: int = 20,
    seed: int = 0,
) -> CapacityReport:
    """Empirically measure bundling capacity at dimension ``dim``.

    For each set size k: bundle k random vectors, then check that each
    member is closer to the bundle than ``n_candidates`` random
    distractors (the item-memory retrieval task).
    """
    if dim < 2:
        raise ValueError("dim must be >= 2")
    rng = np.random.default_rng(seed)
    similarities: list[float] = []
    accuracies: list[float] = []
    for k in set_sizes:
        sim_total = 0.0
        correct = 0
        total = 0
        for _ in range(trials):
            members = random_bipolar((k, dim), rng=rng)
            s = bundle(members).astype(np.int64)
            distractors = random_bipolar((n_candidates, dim), rng=rng).astype(np.int64)
            member_sims = members.astype(np.int64) @ s / dim
            sim_total += float(member_sims.mean())
            distractor_best = int((distractors @ s).max())
            for m in range(k):
                total += 1
                if int(members[m].astype(np.int64) @ s) > distractor_best:
                    correct += 1
        similarities.append(sim_total / trials)
        accuracies.append(correct / total)
    return CapacityReport(
        dim=dim,
        set_sizes=list(set_sizes),
        member_similarities=similarities,
        retrieval_accuracies=accuracies,
    )
