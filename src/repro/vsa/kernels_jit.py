"""Optional Numba JIT kernel set (``REPRO_KERNELS=jit``).

The third backend behind the :mod:`repro.vsa.kernels` dispatch seam:
``@njit(cache=True)`` loops over the packed words/bytes, compiled once
per machine and persisted to Numba's on-disk cache.  The set exists for
hosts where the NumPy ufunc chain is not the fastest option (no
``np.bitwise_count``, very small batches where ufunc overhead dominates)
and as a second independently-derived implementation the property suite
cross-checks bit-for-bit.

Numba is strictly optional — it is not a project dependency.  The
algorithms are therefore written as **plain Python functions first**
(``_*_py``) and only wrapped in ``njit`` when the numba import succeeds:

* with numba absent, :func:`build_jit_kernels` returns ``None`` and the
  dispatch layer silently serves the fast set instead (recorded as
  ``fallback_from="jit"`` in ``kernel_info`` — a downgrade, never an
  error);
* the ``_py`` reference functions still run everywhere, so the test
  suite proves the *algorithms* bit-exact against the fast/legacy sets
  even on hosts that cannot compile them.

Each wrapper normalizes shapes/dtypes in NumPy (cheap, and it keeps the
jitted cores monomorphic: 2-D contiguous arrays, scalar loops only).
"""

from __future__ import annotations

import numpy as np

from .kernels import WORD_BITS, KernelSet, _check_key, _pop16_table

__all__ = ["NUMBA_AVAILABLE", "build_jit_kernels", "numba_unavailable_reason"]

_NUMBA_ERROR: str | None = None
try:  # pragma: no cover — exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except Exception as exc:  # ImportError, or a numba/llvmlite version clash
    NUMBA_AVAILABLE = False
    _NUMBA_ERROR = f"{type(exc).__name__}: {exc}"


def numba_unavailable_reason() -> str | None:
    """Why the jit set cannot be built (``None`` when it can)."""
    return _NUMBA_ERROR


# ---------------------------------------------------------------------------
# kernel cores — plain Python, njit-compatible subset
# ---------------------------------------------------------------------------
def _pack_core_py(bits: np.ndarray, out: np.ndarray) -> None:
    """bits (N, D) uint8 -> out (N, W) uint64, bit d at word d//64 bit d%64."""
    n, d = bits.shape
    one = np.uint64(1)
    for i in range(n):
        for j in range(d):
            if bits[i, j]:
                out[i, j >> 6] |= one << np.uint64(j & 63)


def _unpack_core_py(packed: np.ndarray, out: np.ndarray) -> None:
    """packed (N, W) uint64 -> out (N, D) int8 bipolar."""
    n, d = out.shape
    one = np.uint64(1)
    for i in range(n):
        for j in range(d):
            bit = (packed[i, j >> 6] >> np.uint64(j & 63)) & one
            out[i, j] = 1 if bit else -1


def _popcount_core_py(words: np.ndarray, pop16: np.ndarray, out: np.ndarray) -> None:
    """words (N,) uint64 -> out (N,) uint8 via four 16-bit table lookups."""
    mask = np.uint64(0xFFFF)
    for i in range(words.shape[0]):
        w = words[i]
        out[i] = (
            pop16[np.intp(w & mask)]
            + pop16[np.intp((w >> np.uint64(16)) & mask)]
            + pop16[np.intp((w >> np.uint64(32)) & mask)]
            + pop16[np.intp((w >> np.uint64(48)) & mask)]
        )


def _match_core_py(
    op: np.ndarray, key: np.ndarray, pop8: np.ndarray, out: np.ndarray
) -> None:
    """op (N, nb) x key (O, nb) uint8 -> out (N, O) uint16 XOR bit counts."""
    n, nb = op.shape
    o = key.shape[0]
    for i in range(n):
        for j in range(o):
            c = 0
            for t in range(nb):
                c += pop8[np.intp(op[i, t] ^ key[j, t])]
            out[i, j] = c


def build_jit_kernels() -> KernelSet | None:
    """Compile and wrap the jit set, or ``None`` when numba is absent.

    ``cache=True`` persists the compiled machine code next to this file
    (or ``NUMBA_CACHE_DIR``), so the compile cost is paid once per host,
    not once per process — essential for process-pool workers.
    """
    if not NUMBA_AVAILABLE:
        return None

    pack_core = njit(cache=True)(_pack_core_py)
    unpack_core = njit(cache=True)(_unpack_core_py)
    popcount_core = njit(cache=True)(_popcount_core_py)
    match_core = njit(cache=True)(_match_core_py)

    pop16 = _pop16_table()
    pop8 = np.ascontiguousarray(pop16[:256])

    def pack_jit(vectors: np.ndarray) -> tuple[np.ndarray, int]:
        vectors = np.asarray(vectors)
        dim = vectors.shape[-1]
        n_words = (dim + WORD_BITS - 1) // WORD_BITS
        bits = np.ascontiguousarray((vectors > 0).reshape(-1, dim), dtype=np.uint8)
        out = np.zeros((bits.shape[0], n_words), dtype=np.uint64)
        pack_core(bits, out)
        return out.reshape(vectors.shape[:-1] + (n_words,)), dim

    def unpack_jit(packed: np.ndarray, dim: int) -> np.ndarray:
        packed = np.ascontiguousarray(packed, dtype=np.uint64)
        n_words = packed.shape[-1]
        flat = packed.reshape(-1, n_words)
        out = np.empty((flat.shape[0], dim), dtype=np.int8)
        unpack_core(flat, out)
        return out.reshape(packed.shape[:-1] + (dim,))

    def popcount8_jit(words: np.ndarray) -> np.ndarray:
        words = np.ascontiguousarray(words, dtype=np.uint64)
        flat = words.reshape(-1)
        out = np.empty(flat.shape[0], dtype=np.uint8)
        popcount_core(flat, out)
        return out.reshape(words.shape)

    def match_builder_jit(key_bytes: np.ndarray):
        key = _check_key(key_bytes)
        o, n_bytes = key.shape

        def matcher(op_bytes: np.ndarray) -> np.ndarray:
            op = np.asarray(op_bytes, dtype=np.uint8)
            flat = np.ascontiguousarray(op.reshape(-1, n_bytes))
            out = np.empty((flat.shape[0], o), dtype=np.uint16)
            match_core(flat, key, pop8, out)
            return out.reshape(op.shape[:-1] + (o,))

        return matcher

    return KernelSet(
        name="jit",
        pack=pack_jit,
        unpack=unpack_jit,
        popcount8=popcount8_jit,
        pack_impl="njit-shift",
        popcount_impl="njit-lut16",
        match_builder=match_builder_jit,
        match_impl="njit-lut8",
    )
