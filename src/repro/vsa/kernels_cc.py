"""Compiled conv-fires kernel: a tiny C hot loop built with gcc at first use.

The fused engine's dominant cost is the BiConv byte-LUT match: for every
(sample, position, out-channel) it sums per-tap XOR popcounts gathered
from 256-entry tables and compares the total against an integer bound.
NumPy executes that as ``taps`` separate fancy-gather + add passes over a
``(T, P, O)`` uint16 plane — memory-bound and allocation-heavy.  The C
kernel below walks the *padded DVP volume bytes* directly: per position
it resolves one table row pointer per tap, then runs a single
vectorizable sum+compare loop over the out channels, writing the fires
plane in place.  No window materialization, no uint16 intermediates.

Design constraints:

* **Compile at first use, never at import.**  The source is generated
  with the tap count baked in as a compile-time constant (the inner
  loops must unroll; a runtime tap count defeats vectorization) and
  compiled with ``gcc -O3 -march=native`` into a per-user cache dir
  under the system temp dir.  The artifact is keyed by a hash of the
  source and reused across processes; compilation is atomic
  (temp + rename) so concurrent workers race benignly.
* **Bit-exactness by construction.**  The threshold compare
  ``fires = (counts <= bound) ^ flip`` is re-encoded as an inclusive
  window ``blo <= acc <= bhi`` in unsigned space: flip channels get
  ``[bound+1, inf)``, plain channels ``[0, bound]``, and a negative
  plain bound (never fires) becomes the empty window ``[1, 0]``.
  Bounds are uint16 so tap counts up to 8k bits stay exact.
* **Graceful degradation.**  ``REPRO_CC=0`` (or ``off``/``false``/
  ``no``), a missing compiler, or a failed build all surface as
  ``build_conv_fires(...) -> None`` with the reason recorded — callers
  keep the NumPy matcher and :func:`cc_info` reports why.
* ctypes releases the GIL for the call, so thread executors overlap
  compute; the kernel itself is pure and re-entrant.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading

import numpy as np

__all__ = [
    "build_conv_fires",
    "cc_enabled",
    "cc_info",
    "reset_cc",
]

_ENV_FLAG = "REPRO_CC"
_OFF_VALUES = {"0", "false", "off", "no"}

_C_TEMPLATE = r"""
#include <stdint.h>
#include <stddef.h>

#define TAPS {taps}

void conv_fires(const uint8_t *restrict vol,
                const int64_t *restrict offs,
                const uint8_t *restrict tables,
                const uint16_t *restrict blo,
                const uint16_t *restrict bhi,
                uint8_t *restrict fires,
                int64_t batch, int64_t height, int64_t width,
                int64_t img_stride, int64_t row_stride, int64_t col_stride,
                int64_t o)
{{
    const uint8_t *rows[TAPS];
    for (int64_t bi = 0; bi < batch; ++bi) {{
        for (int64_t i = 0; i < height; ++i) {{
            const uint8_t *base = vol + bi * img_stride + i * row_stride;
            for (int64_t j = 0; j < width; ++j) {{
                const uint8_t *pos = base + j * col_stride;
                for (int t = 0; t < TAPS; ++t)
                    rows[t] = tables + ((size_t)t * 256 + pos[offs[t]]) * (size_t)o;
                for (int64_t c = 0; c < o; ++c) {{
                    unsigned acc = 0;
                    for (int t = 0; t < TAPS; ++t)
                        acc += rows[t][c];
                    *fires++ = (uint8_t)((blo[c] <= acc) & (acc <= bhi[c]));
                }}
            }}
        }}
    }}
}}
"""

_lock = threading.Lock()
_libs: dict[int, ctypes.CDLL | None] = {}
_reasons: dict[int, str] = {}
_global_reason: str | None = None


def cc_enabled() -> bool:
    """Whether the compiled conv backend is allowed by the environment."""
    return os.environ.get(_ENV_FLAG, "1").strip().lower() not in _OFF_VALUES


def reset_cc() -> None:
    """Drop cached libraries/reasons (tests toggling availability)."""
    global _global_reason
    with _lock:
        _libs.clear()
        _reasons.clear()
        _global_reason = None


def cc_info() -> dict:
    """Availability snapshot for :func:`repro.vsa.kernels.kernel_info`."""
    compiled = sorted(taps for taps, lib in _libs.items() if lib is not None)
    reason = _global_reason
    if reason is None and _reasons:
        reason = next(iter(_reasons.values()))
    return {
        "cc_conv_enabled": cc_enabled(),
        "cc_conv_compiled_taps": compiled,
        "cc_conv_unavailable_reason": reason,
    }


def _cache_dir() -> str:
    path = os.path.join(
        tempfile.gettempdir(), f"repro-cc-{os.getuid()}"
    )
    os.makedirs(path, mode=0o700, exist_ok=True)
    return path


def _compile(taps: int) -> ctypes.CDLL:
    source = _C_TEMPLATE.format(taps=taps)
    digest = hashlib.sha256(source.encode()).hexdigest()[:12]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"conv{taps}-{digest}.so")
    if not os.path.exists(so_path):
        gcc = shutil.which("gcc") or shutil.which("cc")
        if gcc is None:
            raise RuntimeError("no C compiler (gcc/cc) on PATH")
        fd, c_path = tempfile.mkstemp(suffix=".c", dir=cache)
        with os.fdopen(fd, "w") as fh:
            fh.write(source)
        tmp_so = c_path[:-2] + ".so"
        base = [gcc, "-O3", "-shared", "-fPIC", "-o", tmp_so, c_path]
        try:
            attempts = (
                base[:1] + ["-march=native", "-funroll-loops"] + base[1:],
                base,
            )
            last = None
            for cmd in attempts:
                last = subprocess.run(cmd, capture_output=True, text=True)
                if last.returncode == 0:
                    break
            if last is None or last.returncode != 0:
                stderr = (last.stderr or "").strip() if last else ""
                raise RuntimeError(f"cc build failed: {stderr[:400]}")
            os.replace(tmp_so, so_path)
        finally:
            for leftover in (c_path, tmp_so):
                try:
                    os.unlink(leftover)
                except OSError:
                    pass
    lib = ctypes.CDLL(so_path)
    fn = lib.conv_fires
    fn.restype = None
    fn.argtypes = [ctypes.c_void_p] * 6 + [ctypes.c_int64] * 7
    return lib


def _load(taps: int) -> ctypes.CDLL | None:
    global _global_reason
    with _lock:
        if taps in _libs:
            return _libs[taps]
        try:
            lib = _compile(taps)
        except Exception as exc:  # pragma: no cover - host-dependent
            _libs[taps] = None
            _reasons[taps] = str(exc)
            _global_reason = str(exc)
            return None
        _libs[taps] = lib
        return lib


_POP8 = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint8)


def build_conv_fires(tap_bytes, bound, flip, k, nb):
    """Build a compiled fires function for one engine's conv operands.

    ``tap_bytes`` is the ``(O, k*k*nb)`` uint8 kernel-tap plane in operand
    order, ``bound``/``flip`` the XOR-space threshold encoding from
    ``BitPackedUniVSA._init_fused``.  Returns
    ``fires_fn(padded_volume_bytes) -> (B, H*W, O) uint8`` operating on
    the zero-padded ``(B, H+k-1, W+k-1, nb)`` DVP byte volume, or
    ``None`` when the compiled backend is unavailable (reason recorded in
    :func:`cc_info`).
    """
    global _global_reason
    if not cc_enabled():
        _global_reason = f"disabled via {_ENV_FLAG}"
        return None
    tap_bytes = np.ascontiguousarray(np.asarray(tap_bytes, dtype=np.uint8))
    o, taps = tap_bytes.shape
    if taps != k * k * nb:
        _global_reason = f"tap layout mismatch: {taps} != {k}*{k}*{nb}"
        return None
    lib = _load(taps)
    if lib is None:
        return None
    fn = lib.conv_fires

    # (taps, 256, O): per-tap XOR popcount rows, uint8 (each <= 8).
    byte_values = np.arange(256, dtype=np.uint8)
    tables = np.ascontiguousarray(
        _POP8[byte_values[None, :, None] ^ tap_bytes.T[:, None, :]]
    )
    bound = np.asarray(bound, dtype=np.int64)
    flip = np.asarray(flip, dtype=bool)
    blo = np.where(
        flip, np.clip(bound + 1, 0, 0xFFFF), np.where(bound < 0, 1, 0)
    ).astype(np.uint16)
    bhi = np.where(flip, 0xFFFF, np.clip(bound, 0, 0xFFFF)).astype(np.uint16)
    blo = np.ascontiguousarray(blo)
    bhi = np.ascontiguousarray(bhi)

    offs_cache: dict[tuple[int, int], np.ndarray] = {}

    def _offsets(wp: int) -> np.ndarray:
        key = (wp, nb)
        offs = offs_cache.get(key)
        if offs is None:
            row_stride = wp * nb
            kh, kw, cb = np.meshgrid(
                np.arange(k), np.arange(k), np.arange(nb), indexing="ij"
            )
            offs = (kh * row_stride + kw * nb + cb).reshape(-1).astype(np.int64)
            offs = np.ascontiguousarray(offs)
            offs_cache[key] = offs
        return offs

    def fires_fn(padded: np.ndarray) -> np.ndarray:
        padded = np.ascontiguousarray(padded)
        b, hp, wp, nb_local = padded.shape
        h = hp - (k - 1)
        w = wp - (k - 1)
        offs = _offsets(wp)
        out = np.empty((b, h * w, o), dtype=np.uint8)
        fn(
            padded.ctypes.data_as(ctypes.c_void_p),
            offs.ctypes.data_as(ctypes.c_void_p),
            tables.ctypes.data_as(ctypes.c_void_p),
            blo.ctypes.data_as(ctypes.c_void_p),
            bhi.ctypes.data_as(ctypes.c_void_p),
            out.ctypes.data_as(ctypes.c_void_p),
            b,
            h,
            w,
            hp * wp * nb_local,
            wp * nb_local,
            nb_local,
            o,
        )
        return out

    fires_fn.taps = taps  # type: ignore[attr-defined]
    fires_fn.backend = "cc"  # type: ignore[attr-defined]
    return fires_fn
