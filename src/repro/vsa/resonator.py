"""Resonator networks: factorizing bound hypervectors.

A core VSA capability (Frady et al.): given a composite vector
``s = x_1 * x_2 * ... * x_F`` where each factor comes from a known
codebook, recover the factors.  Exhaustive search costs the product of
codebook sizes; the resonator iterates per-factor cleanup in parallel and
converges in a handful of steps for moderate sizes.

Used here as library infrastructure (decoding bound records, analysis of
encoding contents) — and as a stress test of the bipolar algebra.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hypervector import bind, sign_bipolar

__all__ = ["ResonatorResult", "resonator_factorize"]


@dataclass
class ResonatorResult:
    """Outcome of a factorization attempt."""

    indices: list[int]  # recovered codebook index per factor
    converged: bool
    iterations: int

    def factors(self, codebooks: list[np.ndarray]) -> list[np.ndarray]:
        """The recovered factor vectors themselves."""
        return [cb[i] for cb, i in zip(codebooks, self.indices)]


def resonator_factorize(
    composite: np.ndarray,
    codebooks: list[np.ndarray],
    max_iterations: int = 50,
    seed: int = 0,
) -> ResonatorResult:
    """Factorize ``composite`` (D,) over the given codebooks.

    Each codebook is (V_f, D) bipolar.  The resonator update for factor f
    unbinds all current other-factor estimates from the composite and
    cleans the residual against codebook f:

        x_f <- sgn(C_f^T C_f (s * prod_{g != f} x_g))

    Convergence is declared when all factor estimates are fixed points.
    """
    composite = np.asarray(composite, dtype=np.int8)
    if composite.ndim != 1:
        raise ValueError("composite must be a single vector")
    if len(codebooks) < 2:
        raise ValueError("need at least two factors")
    dim = composite.shape[0]
    for codebook in codebooks:
        if codebook.ndim != 2 or codebook.shape[1] != dim:
            raise ValueError("codebook shape mismatch")
    rng = np.random.default_rng(seed)
    # Initialize each estimate to the bundle of its codebook (the
    # superposition init of the resonator literature).
    estimates = [
        sign_bipolar(cb.astype(np.int64).sum(axis=0) + rng.integers(0, 2, dim))
        for cb in codebooks
    ]
    n_factors = len(codebooks)
    for iteration in range(1, max_iterations + 1):
        changed = False
        for f in range(n_factors):
            residual = composite
            for g in range(n_factors):
                if g != f:
                    residual = bind(residual, estimates[g])
            # Cleanup through the codebook (project + re-expand + sign).
            similarities = codebooks[f].astype(np.int64) @ residual.astype(np.int64)
            projected = similarities @ codebooks[f].astype(np.int64)
            new_estimate = sign_bipolar(projected)
            if not np.array_equal(new_estimate, estimates[f]):
                changed = True
            estimates[f] = new_estimate
        if not changed:
            break
    indices = [
        int((cb.astype(np.int64) @ est.astype(np.int64)).argmax())
        for cb, est in zip(codebooks, estimates)
    ]
    # Converged iff the recovered factors actually rebuild the composite.
    rebuilt = np.ones(dim, dtype=np.int8)
    for cb, i in zip(codebooks, indices):
        rebuilt = bind(rebuilt, cb[i])
    converged = bool(np.array_equal(rebuilt, composite))
    return ResonatorResult(indices=indices, converged=converged, iterations=iteration)
