"""Bit-level primitives: packing bipolar vectors into uint64 words.

These functions are the software model of the hardware datapath: XNOR +
popcount on packed words is exactly what the FPGA similarity/encoding units
compute.  Convention: bipolar +1 maps to bit 1, bipolar -1 maps to bit 0.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_bipolar",
    "unpack_bipolar",
    "popcount",
    "xnor_popcount",
    "hamming_distance_packed",
    "dot_from_matches",
]

_WORD_BITS = 64
# 16-bit popcount lookup table; uint64 popcount = 4 table lookups.
_POP16 = np.array([bin(i).count("1") for i in range(1 << 16)], dtype=np.uint8)


def pack_bipolar(vectors: np.ndarray, validate: bool = True) -> tuple[np.ndarray, int]:
    """Pack bipolar {-1,+1} vectors (..., D) into uint64 words (..., W).

    Returns (packed, D).  Bit order: element ``d`` of a vector lives in word
    ``d // 64`` at bit position ``d % 64``.  Padding bits are 0 and are
    excluded from distances via the returned dimension.

    ``validate`` guards the O(N) {-1,+1} domain scan.  It defaults on for
    the public API, but callers that produce provably bipolar inputs (the
    packed inference stages) pass ``validate=False`` — the scan would
    otherwise run on every conv/encode/similarity call in the hot path.
    """
    vectors = np.asarray(vectors)
    if validate and vectors.size and not np.isin(vectors, (-1, 1)).all():
        raise ValueError("pack_bipolar expects entries in {-1, +1}")
    dim = vectors.shape[-1]
    n_words = (dim + _WORD_BITS - 1) // _WORD_BITS
    bits = (vectors > 0).astype(np.uint8)
    padded = np.zeros(vectors.shape[:-1] + (n_words * _WORD_BITS,), dtype=np.uint8)
    padded[..., :dim] = bits
    shaped = padded.reshape(vectors.shape[:-1] + (n_words, _WORD_BITS))
    weights = (np.uint64(1) << np.arange(_WORD_BITS, dtype=np.uint64)).astype(np.uint64)
    packed = (shaped.astype(np.uint64) * weights).sum(axis=-1, dtype=np.uint64)
    return packed, dim


def unpack_bipolar(packed: np.ndarray, dim: int) -> np.ndarray:
    """Inverse of :func:`pack_bipolar`: words (..., W) -> bipolar (..., D)."""
    packed = np.asarray(packed, dtype=np.uint64)
    n_words = packed.shape[-1]
    shifts = np.arange(_WORD_BITS, dtype=np.uint64)
    bits = (packed[..., :, None] >> shifts) & np.uint64(1)
    flat = bits.reshape(packed.shape[:-1] + (n_words * _WORD_BITS,))[..., :dim]
    return np.where(flat == 1, 1, -1).astype(np.int8)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of uint64 words (vectorized table lookup)."""
    words = np.asarray(words, dtype=np.uint64)
    mask = np.uint64(0xFFFF)
    total = _POP16[(words & mask).astype(np.intp)].astype(np.int64)
    for shift in (16, 32, 48):
        total += _POP16[((words >> np.uint64(shift)) & mask).astype(np.intp)]
    return total


def xnor_popcount(a: np.ndarray, b: np.ndarray, dim: int) -> np.ndarray:
    """Number of matching positions between packed vectors a and b.

    Padding bits match under XNOR, so the padding contribution is
    subtracted.  Broadcasting over leading axes is supported.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    n_words = a.shape[-1]
    pad_bits = n_words * _WORD_BITS - dim
    matches = popcount(~(a ^ b)).sum(axis=-1)
    return matches - pad_bits


def hamming_distance_packed(a: np.ndarray, b: np.ndarray, dim: int) -> np.ndarray:
    """Hamming distance between packed bipolar vectors."""
    return dim - xnor_popcount(a, b, dim)


def dot_from_matches(matches: np.ndarray, dim: int) -> np.ndarray:
    """Bipolar dot product from a match count: dot = 2*matches - D.

    This identity is the Hamming/dot equivalence the LDC paper relies on
    (Sec. II-C): maximizing dot product == minimizing Hamming distance.
    """
    return 2 * np.asarray(matches, dtype=np.int64) - dim
