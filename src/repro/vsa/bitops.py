"""Bit-level primitives: packing bipolar vectors into uint64 words.

These functions are the software model of the hardware datapath: XNOR +
popcount on packed words is exactly what the FPGA similarity/encoding units
compute.  Convention: bipolar +1 maps to bit 1, bipolar -1 maps to bit 0.

The arithmetic itself lives in :mod:`repro.vsa.kernels`, which selects
between a legacy portable implementation (multiply-accumulate pack,
16-bit-LUT popcount) and NumPy fast paths (``np.packbits`` pack,
``np.bitwise_count`` popcount) once at import.  Both sets share the bit
order, so everything here is bit-exact regardless of the selection.
"""

from __future__ import annotations

import numpy as np

from .kernels import WORD_BITS as _WORD_BITS
from .kernels import get_kernels

__all__ = [
    "pack_bipolar",
    "unpack_bipolar",
    "popcount",
    "xnor_popcount",
    "hamming_distance_packed",
    "dot_from_matches",
]


def pack_bipolar(vectors: np.ndarray, validate: bool = True) -> tuple[np.ndarray, int]:
    """Pack bipolar {-1,+1} vectors (..., D) into uint64 words (..., W).

    Returns (packed, D).  Bit order: element ``d`` of a vector lives in word
    ``d // 64`` at bit position ``d % 64``.  Padding bits are 0 and are
    excluded from distances via the returned dimension.

    ``validate`` guards the O(N) {-1,+1} domain scan.  It defaults on for
    the public API, but callers that produce provably bipolar inputs (the
    packed inference stages) pass ``validate=False`` — the scan would
    otherwise run on every conv/encode/similarity call in the hot path.
    """
    vectors = np.asarray(vectors)
    if validate and vectors.size and not np.isin(vectors, (-1, 1)).all():
        raise ValueError("pack_bipolar expects entries in {-1, +1}")
    return get_kernels().pack(vectors)


def unpack_bipolar(packed: np.ndarray, dim: int) -> np.ndarray:
    """Inverse of :func:`pack_bipolar`: words (..., W) -> bipolar (..., D)."""
    return get_kernels().unpack(packed, dim)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of uint64 words (int64 result)."""
    return get_kernels().popcount8(words).astype(np.int64)


def xnor_popcount(a: np.ndarray, b: np.ndarray, dim: int) -> np.ndarray:
    """Number of matching positions between packed vectors a and b.

    Padding bits match under XNOR, so the padding contribution is
    subtracted.  Broadcasting over leading axes is supported.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    n_words = a.shape[-1]
    pad_bits = n_words * _WORD_BITS - dim
    counts = get_kernels().popcount8(~(a ^ b))
    matches = counts.sum(axis=-1, dtype=np.int64)
    return matches - pad_bits


def hamming_distance_packed(a: np.ndarray, b: np.ndarray, dim: int) -> np.ndarray:
    """Hamming distance between packed bipolar vectors."""
    return dim - xnor_popcount(a, b, dim)


def dot_from_matches(matches: np.ndarray, dim: int) -> np.ndarray:
    """Bipolar dot product from a match count: dot = 2*matches - D.

    This identity is the Hamming/dot equivalence the LDC paper relies on
    (Sec. II-C): maximizing dot product == minimizing Hamming distance.
    """
    return 2 * np.asarray(matches, dtype=np.int64) - dim
