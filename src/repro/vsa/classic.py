"""Classic (non-learned) binary VSA classifier — the VSA-H baseline.

Implements Eq. 1 (record-based encoding with bind + bundle) and Eq. 2
(argmax similarity), with class vectors formed by bundling the training
encodings of each class plus optional retraining passes (the perceptron-
style update used by high-dimensional HDC baselines such as [9]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .hypervector import bind, sign_bipolar
from .itemmemory import level_item_memory, random_item_memory
from .similarity import classify, dot_similarity

__all__ = ["ClassicVSAClassifier", "encode_record"]


def encode_record(
    values: np.ndarray, feature_memory: np.ndarray, value_memory: np.ndarray
) -> np.ndarray:
    """Encode discretized samples via Eq. 1: s = sgn(sum_i f_i * v_{x_i}).

    ``values`` is (B, N) integer levels; feature_memory is (N, D);
    value_memory is (M, D).  Returns bipolar (B, D).
    """
    values = np.atleast_2d(np.asarray(values))
    value_vectors = value_memory[values]  # (B, N, D)
    bound = bind(value_vectors, feature_memory[None, :, :])
    return sign_bipolar(bound.astype(np.int64).sum(axis=1))


@dataclass
class ClassicVSAClassifier:
    """Record-encoding binary VSA classifier with retraining.

    Parameters mirror Sec. II: ``dim`` is D, ``levels`` is M.  ``retrain``
    epochs apply the standard HDC mistake-driven update: add the sample
    encoding to the true class accumulator and subtract it from the wrongly
    predicted one, then re-binarize.
    """

    dim: int = 10_000
    levels: int = 256
    retrain_epochs: int = 0
    seed: int = 0
    feature_memory: np.ndarray = field(default=None, repr=False)
    value_memory: np.ndarray = field(default=None, repr=False)
    class_vectors: np.ndarray = field(default=None, repr=False)
    _accumulators: np.ndarray = field(default=None, repr=False)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "ClassicVSAClassifier":
        """Train on discretized samples x (B, N) with integer labels y."""
        x = np.atleast_2d(np.asarray(x))
        y = np.asarray(y)
        rng = np.random.default_rng(self.seed)
        n_features = x.shape[1]
        n_classes = int(y.max()) + 1
        self.feature_memory = random_item_memory(n_features, self.dim, rng=rng)
        self.value_memory = level_item_memory(self.levels, self.dim, rng=rng)
        encodings = self.encode(x)
        accumulators = np.zeros((n_classes, self.dim), dtype=np.int64)
        for label in range(n_classes):
            accumulators[label] = encodings[y == label].astype(np.int64).sum(axis=0)
        for _ in range(self.retrain_epochs):
            class_vectors = sign_bipolar(accumulators)
            predictions = classify(encodings, class_vectors)
            wrong = predictions != y
            if not wrong.any():
                break
            for i in np.flatnonzero(wrong):
                accumulators[y[i]] += encodings[i]
                accumulators[predictions[i]] -= encodings[i]
        self._accumulators = accumulators
        self.class_vectors = sign_bipolar(accumulators)
        return self

    def encode(self, x: np.ndarray, chunk: int = 64) -> np.ndarray:
        """Encode samples to bipolar hypervectors (Eq. 1), chunked over B."""
        if self.feature_memory is None:
            raise RuntimeError("classifier is not fitted")
        x = np.atleast_2d(np.asarray(x))
        pieces = [
            encode_record(x[start : start + chunk], self.feature_memory, self.value_memory)
            for start in range(0, len(x), chunk)
        ]
        return np.concatenate(pieces)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict labels for discretized samples (Eq. 2)."""
        return classify(self.encode(x), self.class_vectors)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on (x, y)."""
        return float((self.predict(x) == np.asarray(y)).mean())

    def similarity_scores(self, x: np.ndarray) -> np.ndarray:
        """Raw dot-product similarities (B, C) for inspection."""
        encodings = self.encode(x)
        return dot_similarity(
            encodings[:, None, :].astype(np.int64),
            self.class_vectors[None, :, :].astype(np.int64),
        )

    def memory_footprint_bits(self) -> int:
        """Deployed model size: V + F + C bit counts."""
        if self.class_vectors is None:
            raise RuntimeError("classifier is not fitted")
        n_features = self.feature_memory.shape[0]
        n_classes = self.class_vectors.shape[0]
        return (self.levels + n_features + n_classes) * self.dim
