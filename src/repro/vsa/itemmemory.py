"""Item memories (codebooks) for features and values.

Classic binary VSA draws the feature set F i.i.d. and builds the value set V
as a *level* codebook so that nearby discretized values get similar vectors
(continuous values are discretized into M intervals, Sec. II-A).
"""

from __future__ import annotations

import numpy as np

from .hypervector import random_bipolar, sign_bipolar

__all__ = ["random_item_memory", "level_item_memory", "ItemMemory"]


def random_item_memory(
    count: int, dim: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """(count, dim) i.i.d. bipolar codebook — for feature-position vectors."""
    return random_bipolar((count, dim), rng=rng)


def level_item_memory(
    levels: int, dim: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """(levels, dim) level codebook: linear bit-flip interpolation.

    Level 0 and level M-1 are (near-)orthogonal; adjacent levels differ in
    ~dim/(levels-1) positions, so similarity decays linearly with value
    distance — the standard encoding for discretized continuous features.
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    base = random_bipolar(dim, rng=gen)
    if levels == 1:
        return base.reshape(1, dim)
    memory = np.empty((levels, dim), dtype=np.int8)
    memory[0] = base
    flip_order = gen.permutation(dim)
    boundaries = np.linspace(0, dim, levels).round().astype(int)
    current = base.copy()
    for level in range(1, levels):
        to_flip = flip_order[boundaries[level - 1] : boundaries[level]]
        current[to_flip] = -current[to_flip]
        memory[level] = current
    return memory


class ItemMemory:
    """Lookup table from discrete symbols to bipolar vectors."""

    def __init__(self, vectors: np.ndarray) -> None:
        vectors = np.asarray(vectors, dtype=np.int8)
        if vectors.ndim != 2:
            raise ValueError("ItemMemory expects a (count, dim) array")
        self.vectors = vectors

    @property
    def count(self) -> int:
        """Number of stored vectors."""
        return self.vectors.shape[0]

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self.vectors.shape[1]

    def __getitem__(self, keys: int | np.ndarray) -> np.ndarray:
        return self.vectors[keys]

    def cleanup(self, query: np.ndarray) -> int:
        """Return the index of the stored vector nearest to ``query``."""
        scores = (self.vectors.astype(np.int64) * sign_bipolar(query)).sum(axis=-1)
        return int(scores.argmax())
