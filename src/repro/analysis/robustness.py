"""Robustness analyses: input noise and quantization-resolution effects.

Complements :mod:`repro.hw.faults` (memory corruption) with the two other
degradation axes a deployed VSA classifier faces: sensor noise on the
input levels and reduced quantizer resolution M.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.export import UniVSAArtifacts

__all__ = ["NoiseReport", "input_noise_sweep", "level_subsample_accuracy"]


@dataclass
class NoiseReport:
    """Accuracy vs input-noise magnitude."""

    noise_levels: list[float]  # std of level-domain jitter
    accuracies: list[float]
    baseline_accuracy: float


def input_noise_sweep(
    artifacts: UniVSAArtifacts,
    levels: np.ndarray,
    labels: np.ndarray,
    noise_stds: tuple[float, ...] = (1.0, 4.0, 16.0, 32.0),
    seed: int = 0,
) -> NoiseReport:
    """Add Gaussian jitter (in level units) to inputs and re-classify.

    Models ADC/sensor noise after discretization; jittered levels are
    clipped back into [0, M).
    """
    labels = np.asarray(labels)
    levels = np.asarray(levels)
    m = artifacts.config.levels
    rng = np.random.default_rng(seed)
    baseline = float((artifacts.predict(levels) == labels).mean())
    accuracies = []
    for std in noise_stds:
        jitter = rng.normal(0.0, std, size=levels.shape)
        noisy = np.clip(np.round(levels + jitter), 0, m - 1).astype(np.int64)
        accuracies.append(float((artifacts.predict(noisy) == labels).mean()))
    return NoiseReport(
        noise_levels=list(noise_stds),
        accuracies=accuracies,
        baseline_accuracy=baseline,
    )


def level_subsample_accuracy(
    artifacts: UniVSAArtifacts,
    levels: np.ndarray,
    labels: np.ndarray,
    factor: int,
) -> float:
    """Accuracy when inputs are quantized ``factor``x coarser.

    Each level is snapped to the centre of its coarse bin, emulating a
    deployment that ships a smaller V table (M/factor entries replicated).
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    levels = np.asarray(levels)
    coarse = (levels // factor) * factor + factor // 2
    coarse = np.clip(coarse, 0, artifacts.config.levels - 1)
    return float((artifacts.predict(coarse) == np.asarray(labels)).mean())
