"""Assemble a markdown reproduction report from benchmark results.

``pytest benchmarks/ --benchmark-only`` writes each table/figure artifact
to ``benchmarks/results/*.txt``; this module stitches them into one
markdown document — the machine-generated companion to the hand-written
EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["SECTION_ORDER", "generate_report"]

# results file stem -> (section title, blurb)
SECTION_ORDER = [
    ("table1_search", "Table I — configuration search"),
    ("table2_accuracy", "Table II — accuracy and memory"),
    ("table3_hw_comparison", "Table III — hardware comparison"),
    ("table4_hw_all_tasks", "Table IV — hardware on all tasks"),
    ("fig1_overview", "Fig. 1 — overview comparison"),
    ("fig4_ablation", "Fig. 4 — enhancement ablation"),
    ("fig6_stage_breakdown", "Fig. 6 — per-stage overhead"),
    ("ext_deployment", "Extension — energy & I/O"),
    ("ext_fault_tolerance", "Extension — fault tolerance"),
    ("ext_pareto", "Extension — Pareto frontier"),
    ("ext_hw_ablation", "Extension — scheduling ablations"),
]


def generate_report(
    results_dir: str | Path,
    output_path: str | Path | None = None,
    title: str = "UniVSA reproduction — benchmark report",
) -> str:
    """Render all available results as one markdown document.

    Missing sections are skipped with a note; returns the markdown and
    optionally writes it to ``output_path``.
    """
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(f"no results directory at {results_dir}")
    lines = [f"# {title}", ""]
    found = 0
    for stem, section in SECTION_ORDER:
        path = results_dir / f"{stem}.txt"
        lines.append(f"## {section}")
        lines.append("")
        if path.exists():
            lines.append("```")
            lines.append(path.read_text().rstrip())
            lines.append("```")
            found += 1
        else:
            lines.append(f"_not generated (run `pytest benchmarks/{stem and 'bench_' + stem}*`)_")
        lines.append("")
    if found == 0:
        raise FileNotFoundError(f"no result files in {results_dir}")
    report = "\n".join(lines)
    if output_path is not None:
        Path(output_path).write_text(report)
    return report
