"""Design-space sweeps: accuracy vs hardware cost along any config axis.

The co-design story of the paper is a trade-off curve; this module
produces such curves programmatically — train a model per design point,
collect accuracy + Eq. 5 memory + calibrated hardware metrics — and finds
the Pareto frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.config import UniVSAConfig
from repro.core.train import train_univsa
from repro.hw.report import HardwareReport, hardware_report
from repro.utils.trainloop import TrainConfig

__all__ = ["SweepPoint", "SweepResult", "sweep_axis", "pareto_front"]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated design point."""

    value: object  # the swept axis value
    config: UniVSAConfig
    accuracy: float
    hardware: HardwareReport

    @property
    def memory_kb(self) -> float:
        """Deployed model size in (decimal) kilobytes."""
        return self.hardware.memory_kb


@dataclass
class SweepResult:
    """All points of one sweep, in axis order."""

    axis: str
    points: list[SweepPoint] = field(default_factory=list)

    def accuracies(self) -> list[float]:
        """Accuracy per sweep point, in axis order."""
        return [p.accuracy for p in self.points]

    def memories_kb(self) -> list[float]:
        """Eq. 5 memory per sweep point, in axis order."""
        return [p.memory_kb for p in self.points]

    def best(self) -> SweepPoint:
        """Highest-accuracy point (ties -> cheapest memory)."""
        return max(self.points, key=lambda p: (p.accuracy, -p.memory_kb))


def sweep_axis(
    axis: str,
    values: tuple,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    n_classes: int,
    base_config: UniVSAConfig = UniVSAConfig(),
    train_config: TrainConfig = TrainConfig(epochs=6, lr=0.01),
) -> SweepResult:
    """Train/evaluate one model per value of ``axis``.

    ``axis`` must be a field of :class:`UniVSAConfig` (e.g. "out_channels",
    "d_high", "voters", "kernel_size").
    """
    if not hasattr(base_config, axis):
        raise ValueError(f"unknown config axis {axis!r}")
    x_train = np.asarray(x_train)
    input_shape = x_train.shape[1:]
    result = SweepResult(axis=axis)
    for value in values:
        config = replace(base_config, **{axis: value})
        run = train_univsa(
            x_train, y_train, n_classes=n_classes, config=config, train_config=train_config
        )
        accuracy = run.artifacts.score(x_test, y_test)
        report = hardware_report(config, tuple(input_shape), n_classes, name=f"{axis}={value}")
        result.points.append(
            SweepPoint(value=value, config=config, accuracy=accuracy, hardware=report)
        )
    return result


def pareto_front(points: list[SweepPoint]) -> list[SweepPoint]:
    """Points not dominated in (accuracy up, memory down), sorted by memory."""
    ordered = sorted(points, key=lambda p: (p.memory_kb, -p.accuracy))
    front: list[SweepPoint] = []
    best_accuracy = -np.inf
    for point in ordered:
        if point.accuracy > best_accuracy:
            front.append(point)
            best_accuracy = point.accuracy
    return front
