"""Analysis tooling: design-space sweeps and robustness studies."""

from .asciiplot import bar_chart, line_chart, scatter
from .reportgen import generate_report
from .robustness import NoiseReport, input_noise_sweep, level_subsample_accuracy
from .sweeps import SweepPoint, SweepResult, pareto_front, sweep_axis

__all__ = [
    "scatter",
    "line_chart",
    "bar_chart",
    "SweepPoint",
    "SweepResult",
    "sweep_axis",
    "pareto_front",
    "generate_report",
    "NoiseReport",
    "input_noise_sweep",
    "level_subsample_accuracy",
]
