"""ASCII charts for terminal reports (no plotting backend offline).

Covers what the analysis workflows need: scatter plots for
accuracy-vs-memory trade-off curves (Pareto views), line charts for
sweeps (Fig. 4-style), and horizontal bar charts for stage breakdowns
(Fig. 6-style).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["scatter", "line_chart", "bar_chart"]


def _scale(values: Sequence[float], size: int) -> list[int]:
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    return [int(round((v - lo) / span * (size - 1))) for v in values]


def scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 16,
    labels: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Scatter plot; points marked 'o' (or first char of their label)."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be equal-length and non-empty")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    grid = [[" "] * width for _ in range(height)]
    cols = _scale(xs, width)
    rows = _scale(ys, height)
    for i, (c, r) in enumerate(zip(cols, rows)):
        mark = labels[i][0] if labels else "o"
        grid[height - 1 - r][c] = mark
    lines = [title] if title else []
    lines.append(f"{max(ys):12.4g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 13 + "|" + "".join(row) + "|")
    lines.append(f"{min(ys):12.4g} +" + "-" * width + "+")
    lines.append(" " * 14 + f"{min(xs):<12.4g}" + " " * max(width - 24, 0) + f"{max(xs):>12.4g}")
    return "\n".join(lines)


def line_chart(
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    title: str | None = None,
) -> str:
    """Multi-series line chart; each series drawn with its own glyph."""
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1 or 0 in lengths:
        raise ValueError("all series must share a non-zero length")
    n = lengths.pop()
    all_values = [v for vs in series.values() for v in vs]
    lo, hi = min(all_values), max(all_values)
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    glyphs = "ox+*#@%&"
    for g, (name, values) in enumerate(series.items()):
        glyph = glyphs[g % len(glyphs)]
        for i, value in enumerate(values):
            col = int(round(i / max(n - 1, 1) * (width - 1)))
            row = int(round((value - lo) / span * (height - 1)))
            grid[height - 1 - row][col] = glyph
    lines = [title] if title else []
    lines.append(f"{hi:12.4g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 13 + "|" + "".join(row) + "|")
    lines.append(f"{lo:12.4g} +" + "-" * width + "+")
    legend = "   ".join(
        f"{glyphs[g % len(glyphs)]} {name}" for g, name in enumerate(series)
    )
    lines.append(" " * 14 + legend)
    return "\n".join(lines)


def bar_chart(
    values: dict[str, float], width: int = 50, title: str | None = None
) -> str:
    """Horizontal bars scaled to the maximum value."""
    if not values:
        raise ValueError("need at least one bar")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("values must contain a positive maximum")
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(int(round(value / peak * width)), 0)
        lines.append(f"{name.ljust(label_width)} |{bar} {value:.4g}")
    return "\n".join(lines)
