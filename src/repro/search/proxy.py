"""Cheap accuracy proxy for configuration search.

Full LDC-style training per candidate would dominate search time, so the
proxy trains each candidate for a handful of epochs on a stratified
subsample and evaluates on a held-out split — the standard proxy-task
trick of NAS-style co-exploration [27].  Results are memoized per config.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import UniVSAConfig
from repro.core.train import train_univsa
from repro.data.splits import stratified_subsample
from repro.utils.trainloop import TrainConfig

__all__ = ["AccuracyProxy"]


@dataclass
class AccuracyProxy:
    """Memoized quick-train evaluator: config -> validation accuracy."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray
    n_classes: int
    epochs: int = 4
    max_train_samples: int = 256
    seed: int = 0
    mask: np.ndarray | None = None
    _cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if len(self.x_train) > self.max_train_samples:
            idx = stratified_subsample(
                self.y_train, self.max_train_samples, rng=self.seed
            )
            self.x_train = self.x_train[idx]
            self.y_train = self.y_train[idx]

    def __call__(self, config: UniVSAConfig) -> float:
        key = (config.as_paper_tuple(), config.use_dvp, config.use_biconv)
        if key not in self._cache:
            result = train_univsa(
                self.x_train,
                self.y_train,
                n_classes=self.n_classes,
                config=config,
                mask=self.mask,
                train_config=TrainConfig(epochs=self.epochs, lr=0.02, seed=self.seed),
            )
            self._cache[key] = result.artifacts.score(self.x_val, self.y_val)
        return self._cache[key]

    @property
    def evaluations(self) -> int:
        """Number of distinct configs actually trained."""
        return len(self._cache)

    def fingerprint(self) -> dict:
        """Training-identity payload: dataset content + train budget.

        Hashing the (post-subsample) arrays makes the dataset id robust
        — a different task, split, size, or seed changes the digest, so
        persistent cache entries can never leak across datasets.  The
        proxy's fixed internal learning rate is covered by the cache
        format version, not repeated here.
        """
        digest = hashlib.sha256()
        for array in (self.x_train, self.y_train, self.x_val, self.y_val):
            array = np.ascontiguousarray(array)
            digest.update(str(array.dtype).encode())
            digest.update(str(array.shape).encode())
            digest.update(array.tobytes())
        if self.mask is not None:
            mask = np.ascontiguousarray(self.mask)
            digest.update(mask.tobytes())
        return {
            "kind": "AccuracyProxy",
            "data": digest.hexdigest()[:16],
            "n_classes": int(self.n_classes),
            "epochs": int(self.epochs),
            "max_train_samples": int(self.max_train_samples),
            "seed": int(self.seed),
        }
