"""Co-design objective: obj = Acc - L_HW (Sec. V-A, Model Design)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.config import UniVSAConfig
from repro.hw.cost import hardware_penalty

__all__ = ["CodesignObjective"]


@dataclass
class CodesignObjective:
    """Couples an accuracy evaluator with the Eq. 7 hardware penalty."""

    accuracy_fn: Callable[[UniVSAConfig], float]
    input_shape: tuple[int, int]
    n_classes: int
    lambda1: float = 0.005
    lambda2: float = 0.005

    def __call__(self, config: UniVSAConfig) -> float:
        accuracy = self.accuracy_fn(config)
        penalty = hardware_penalty(
            config, self.input_shape, self.n_classes, self.lambda1, self.lambda2
        )
        return accuracy - penalty

    def breakdown(self, config: UniVSAConfig) -> dict[str, float]:
        """Objective decomposition for reporting."""
        accuracy = self.accuracy_fn(config)
        penalty = hardware_penalty(
            config, self.input_shape, self.n_classes, self.lambda1, self.lambda2
        )
        return {"accuracy": accuracy, "penalty": penalty, "objective": accuracy - penalty}
