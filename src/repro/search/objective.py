"""Co-design objective: obj = Acc - L_HW (Sec. V-A, Model Design)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.config import UniVSAConfig
from repro.hw.cost import hardware_penalty

__all__ = ["CodesignObjective"]


@dataclass
class CodesignObjective:
    """Couples an accuracy evaluator with the Eq. 7 hardware penalty."""

    accuracy_fn: Callable[[UniVSAConfig], float]
    input_shape: tuple[int, int]
    n_classes: int
    lambda1: float = 0.005
    lambda2: float = 0.005

    def __call__(self, config: UniVSAConfig) -> float:
        accuracy = self.accuracy_fn(config)
        penalty = hardware_penalty(
            config, self.input_shape, self.n_classes, self.lambda1, self.lambda2
        )
        return accuracy - penalty

    def breakdown(self, config: UniVSAConfig) -> dict[str, float]:
        """Objective decomposition for reporting."""
        accuracy = self.accuracy_fn(config)
        return self.rescore(config, accuracy)

    def rescore(self, config: UniVSAConfig, accuracy: float) -> dict[str, float]:
        """Breakdown from an already-known accuracy — no training.

        This is the cache-hit path of :class:`repro.search.engine
        .SearchEngine`: the fingerprint excludes lambda1/lambda2, so a
        cached accuracy is re-weighted through the *live* penalty here.
        """
        penalty = hardware_penalty(
            config, self.input_shape, self.n_classes, self.lambda1, self.lambda2
        )
        return {"accuracy": accuracy, "penalty": penalty, "objective": accuracy - penalty}

    def fingerprint(self) -> dict:
        """Training-identity payload for the persistent evaluation cache.

        Deliberately excludes ``lambda1``/``lambda2``: the expensive part
        of an evaluation is the accuracy (a proxy train), and that is
        invariant under re-weighting — :meth:`rescore` re-derives the
        penalty and fitness on every hit.  Requires the accuracy
        evaluator to identify its own data/budget; plain callables make
        the objective unfingerprintable (no persistent cache).
        """
        inner = getattr(self.accuracy_fn, "fingerprint", None)
        if inner is None:
            raise TypeError(
                "accuracy_fn exposes no fingerprint(); persistent caching "
                "needs a training-identity (e.g. AccuracyProxy)"
            )
        return {
            "kind": "CodesignObjective",
            "input_shape": list(self.input_shape),
            "n_classes": int(self.n_classes),
            "accuracy_fn": inner(),
        }
