"""Multi-objective co-design search (NSGA-II-style, two objectives).

The scalarized objective of Eq. 7 picks one point on the
accuracy/hardware trade-off; this extension exposes the whole frontier:
non-dominated sorting + crowding-distance selection over
(maximize accuracy, minimize hardware penalty).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.config import UniVSAConfig

from .space import SearchSpace

__all__ = ["ParetoPoint", "ParetoResult", "non_dominated_sort", "crowding_distance", "nsga2_search"]


@dataclass(frozen=True)
class ParetoPoint:
    """One evaluated design point with both objectives."""

    config: UniVSAConfig
    accuracy: float
    penalty: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """Pareto dominance: no worse in both, better in at least one."""
        no_worse = self.accuracy >= other.accuracy and self.penalty <= other.penalty
        better = self.accuracy > other.accuracy or self.penalty < other.penalty
        return no_worse and better


@dataclass
class ParetoResult:
    """Final population and the non-dominated frontier."""

    frontier: list[ParetoPoint]
    evaluated: dict = field(default_factory=dict)

    def best_accuracy(self) -> ParetoPoint:
        """Frontier point with the highest accuracy."""
        return max(self.frontier, key=lambda p: p.accuracy)

    def cheapest(self) -> ParetoPoint:
        """Frontier point with the lowest hardware penalty."""
        return min(self.frontier, key=lambda p: p.penalty)


def non_dominated_sort(points: list[ParetoPoint]) -> list[list[int]]:
    """NSGA-II fast non-dominated sorting; returns index fronts."""
    n = len(points)
    dominated_by: list[list[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: list[list[int]] = [[]]
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if points[i].dominates(points[j]):
                dominated_by[i].append(j)
            elif points[j].dominates(points[i]):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        next_front: list[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    return [f for f in fronts if f]


def crowding_distance(points: list[ParetoPoint], front: list[int]) -> dict[int, float]:
    """Crowding distance of each index within a front."""
    distance = {i: 0.0 for i in front}
    if len(front) <= 2:
        return {i: float("inf") for i in front}
    for objective in ("accuracy", "penalty"):
        ordered = sorted(front, key=lambda i: getattr(points[i], objective))
        lo = getattr(points[ordered[0]], objective)
        hi = getattr(points[ordered[-1]], objective)
        span = hi - lo or 1.0
        distance[ordered[0]] = float("inf")
        distance[ordered[-1]] = float("inf")
        for k in range(1, len(ordered) - 1):
            prev_v = getattr(points[ordered[k - 1]], objective)
            next_v = getattr(points[ordered[k + 1]], objective)
            distance[ordered[k]] += (next_v - prev_v) / span
    return distance


def nsga2_search(
    accuracy_fn: Callable[[UniVSAConfig], float],
    penalty_fn: Callable[[UniVSAConfig], float],
    space: SearchSpace = SearchSpace(),
    population: int = 12,
    generations: int = 6,
    seed: int = 0,
) -> ParetoResult:
    """Two-objective evolutionary search; returns the final frontier."""
    if population < 4:
        raise ValueError("population must be >= 4")
    rng = np.random.default_rng(seed)
    evaluated: dict[tuple, ParetoPoint] = {}

    def evaluate(config: UniVSAConfig) -> ParetoPoint:
        key = space.encode(config)
        if key not in evaluated:
            evaluated[key] = ParetoPoint(
                config=config,
                accuracy=float(accuracy_fn(config)),
                penalty=float(penalty_fn(config)),
            )
        return evaluated[key]

    pool = [evaluate(space.random(rng)) for _ in range(population)]
    for _ in range(generations):
        # Variation: binary-tournament parents by (front rank, crowding).
        fronts = non_dominated_sort(pool)
        rank = {}
        for level, front in enumerate(fronts):
            for i in front:
                rank[i] = level
        crowd: dict[int, float] = {}
        for front in fronts:
            crowd.update(crowding_distance(pool, front))

        def tournament() -> ParetoPoint:
            a, b = rng.integers(0, len(pool), size=2)
            if (rank[a], -crowd[a]) <= (rank[b], -crowd[b]):
                return pool[a]
            return pool[b]

        offspring = []
        while len(offspring) < population:
            parent_a, parent_b = tournament(), tournament()
            child = space.crossover(parent_a.config, parent_b.config, rng)
            child = space.mutate(child, rng)
            offspring.append(evaluate(child))
        # Environmental selection over parents + offspring.
        merged = pool + offspring
        fronts = non_dominated_sort(merged)
        survivors: list[ParetoPoint] = []
        for front in fronts:
            if len(survivors) + len(front) <= population:
                survivors.extend(merged[i] for i in front)
            else:
                crowd = crowding_distance(merged, front)
                ordered = sorted(front, key=lambda i: -crowd[i])
                survivors.extend(
                    merged[i] for i in ordered[: population - len(survivors)]
                )
                break
        pool = survivors
    frontier_idx = non_dominated_sort(pool)[0]
    frontier = sorted(
        {pool[i] for i in frontier_idx}, key=lambda p: p.penalty
    )
    return ParetoResult(frontier=list(frontier), evaluated=evaluated)
