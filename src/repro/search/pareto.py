"""Multi-objective co-design search (NSGA-II-style, two objectives).

The scalarized objective of Eq. 7 picks one point on the
accuracy/hardware trade-off; this extension exposes the whole frontier:
non-dominated sorting + crowding-distance selection over
(maximize accuracy, minimize hardware penalty).

Evaluation runs through the shared :class:`~.engine.SearchEngine`: the
initial population and each generation's offspring are scored as one
batch (parallel workers, persistent cache), so a sweep re-visiting
genomes an earlier evolutionary run already trained — the common case,
since both loops share the accuracy proxy — reuses them instead of
retraining.  Offspring are *generated* (all rng draws) before any of
them is evaluated; evaluation consumes no random state, so the frontier
is identical to the seed serial implementation for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.config import UniVSAConfig

from .engine import SearchEngine
from .space import SearchSpace

__all__ = [
    "ParetoPoint",
    "ParetoResult",
    "SplitObjective",
    "non_dominated_sort",
    "crowding_distance",
    "nsga2_search",
]


@dataclass
class SplitObjective:
    """Engine-protocol adapter over separate accuracy/penalty callables.

    Scalarizes as ``accuracy - penalty`` (the Eq. 7 form with the
    weights folded into ``penalty_fn``) so the two-objective search can
    share one :class:`SearchEngine` — and one evaluation cache — with
    the scalarized evolutionary search.
    """

    accuracy_fn: Callable[[UniVSAConfig], float]
    penalty_fn: Callable[[UniVSAConfig], float]

    def __call__(self, config: UniVSAConfig) -> float:
        parts = self.breakdown(config)
        return parts["objective"]

    def breakdown(self, config: UniVSAConfig) -> dict[str, float]:
        accuracy = float(self.accuracy_fn(config))
        penalty = float(self.penalty_fn(config))
        return {"accuracy": accuracy, "penalty": penalty, "objective": accuracy - penalty}

    def rescore(self, config: UniVSAConfig, accuracy: float) -> dict[str, float]:
        """Cache-hit path: reuse the accuracy, recompute the cheap penalty."""
        penalty = float(self.penalty_fn(config))
        return {"accuracy": accuracy, "penalty": penalty, "objective": accuracy - penalty}

    def fingerprint(self) -> dict:
        """Training identity, delegated to the accuracy evaluator."""
        inner = getattr(self.accuracy_fn, "fingerprint", None)
        if inner is None:
            raise TypeError(
                "accuracy_fn exposes no fingerprint(); persistent caching "
                "needs a training-identity (e.g. AccuracyProxy)"
            )
        return {"kind": "SplitObjective", "accuracy_fn": inner()}


@dataclass(frozen=True)
class ParetoPoint:
    """One evaluated design point with both objectives."""

    config: UniVSAConfig
    accuracy: float
    penalty: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """Pareto dominance: no worse in both, better in at least one."""
        no_worse = self.accuracy >= other.accuracy and self.penalty <= other.penalty
        better = self.accuracy > other.accuracy or self.penalty < other.penalty
        return no_worse and better


@dataclass
class ParetoResult:
    """Final population and the non-dominated frontier."""

    frontier: list[ParetoPoint]
    evaluated: dict = field(default_factory=dict)

    def best_accuracy(self) -> ParetoPoint:
        """Frontier point with the highest accuracy."""
        return max(self.frontier, key=lambda p: p.accuracy)

    def cheapest(self) -> ParetoPoint:
        """Frontier point with the lowest hardware penalty."""
        return min(self.frontier, key=lambda p: p.penalty)


def non_dominated_sort(points: list[ParetoPoint]) -> list[list[int]]:
    """NSGA-II fast non-dominated sorting; returns index fronts."""
    n = len(points)
    dominated_by: list[list[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: list[list[int]] = [[]]
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if points[i].dominates(points[j]):
                dominated_by[i].append(j)
            elif points[j].dominates(points[i]):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        next_front: list[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    return [f for f in fronts if f]


def crowding_distance(points: list[ParetoPoint], front: list[int]) -> dict[int, float]:
    """Crowding distance of each index within a front."""
    distance = {i: 0.0 for i in front}
    if len(front) <= 2:
        return {i: float("inf") for i in front}
    for objective in ("accuracy", "penalty"):
        ordered = sorted(front, key=lambda i: getattr(points[i], objective))
        lo = getattr(points[ordered[0]], objective)
        hi = getattr(points[ordered[-1]], objective)
        span = hi - lo or 1.0
        distance[ordered[0]] = float("inf")
        distance[ordered[-1]] = float("inf")
        for k in range(1, len(ordered) - 1):
            prev_v = getattr(points[ordered[k - 1]], objective)
            next_v = getattr(points[ordered[k + 1]], objective)
            distance[ordered[k]] += (next_v - prev_v) / span
    return distance


def nsga2_search(
    accuracy_fn: Callable[[UniVSAConfig], float] | None,
    penalty_fn: Callable[[UniVSAConfig], float] | None = None,
    space: SearchSpace = SearchSpace(),
    population: int = 12,
    generations: int = 6,
    seed: int = 0,
    engine: SearchEngine | None = None,
) -> ParetoResult:
    """Two-objective evolutionary search; returns the final frontier.

    Either pass ``accuracy_fn``/``penalty_fn`` (wrapped in a serial
    :class:`SplitObjective` engine), or an ``engine`` whose objective
    exposes a ``breakdown`` — e.g. the same ``CodesignObjective`` engine
    an evolutionary run used, in which case every genome that run
    already trained comes out of the shared memo/cache for free.
    """
    if population < 4:
        raise ValueError("population must be >= 4")
    rng = np.random.default_rng(seed)
    owns_engine = engine is None
    if engine is None:
        if accuracy_fn is None or penalty_fn is None:
            raise ValueError("pass accuracy_fn and penalty_fn, or an engine")
        engine = SearchEngine(
            SplitObjective(accuracy_fn, penalty_fn), space, executor="serial"
        )
    if getattr(engine.objective, "breakdown", None) is None:
        raise ValueError(
            "Pareto search needs an engine objective with a breakdown() "
            "(accuracy/penalty decomposition)"
        )
    evaluated: dict[tuple, ParetoPoint] = {}

    def evaluate_batch(configs: list[UniVSAConfig]) -> None:
        outcomes = engine.evaluate([space.encode(c) for c in configs])
        for genome, outcome in outcomes.items():
            evaluated.setdefault(
                genome,
                ParetoPoint(
                    config=space.decode(genome),
                    accuracy=float(outcome.accuracy),
                    penalty=float(outcome.penalty),
                ),
            )

    def point(config: UniVSAConfig) -> ParetoPoint:
        return evaluated[space.encode(config)]

    try:
        seeds = [space.random(rng) for _ in range(population)]
        evaluate_batch(seeds)
        pool = [point(c) for c in seeds]
        for _ in range(generations):
            # Variation: binary-tournament parents by (front rank, crowding).
            fronts = non_dominated_sort(pool)
            rank = {}
            for level, front in enumerate(fronts):
                for i in front:
                    rank[i] = level
            crowd: dict[int, float] = {}
            for front in fronts:
                crowd.update(crowding_distance(pool, front))

            def tournament() -> ParetoPoint:
                a, b = rng.integers(0, len(pool), size=2)
                if (rank[a], -crowd[a]) <= (rank[b], -crowd[b]):
                    return pool[a]
                return pool[b]

            # Generate every child first (all the rng draws), then score
            # them as one engine batch.
            children: list[UniVSAConfig] = []
            while len(children) < population:
                parent_a, parent_b = tournament(), tournament()
                child = space.crossover(parent_a.config, parent_b.config, rng)
                child = space.mutate(child, rng)
                children.append(child)
            evaluate_batch(children)
            offspring = [point(c) for c in children]
            # Environmental selection over parents + offspring.
            merged = pool + offspring
            fronts = non_dominated_sort(merged)
            survivors: list[ParetoPoint] = []
            for front in fronts:
                if len(survivors) + len(front) <= population:
                    survivors.extend(merged[i] for i in front)
                else:
                    crowd = crowding_distance(merged, front)
                    ordered = sorted(front, key=lambda i: -crowd[i])
                    survivors.extend(
                        merged[i] for i in ordered[: population - len(survivors)]
                    )
                    break
            pool = survivors
    finally:
        if owns_engine:
            engine.close()
    frontier_idx = non_dominated_sort(pool)[0]
    frontier = sorted(
        {pool[i] for i in frontier_idx}, key=lambda p: p.penalty
    )
    return ParetoResult(frontier=list(frontier), evaluated=evaluated)
