"""Generation-batched parallel candidate evaluation with a persistent cache.

The co-design loops (Sec. V-A) spend essentially all their time in the
fitness call — a full proxy train plus accuracy/L_HW evaluation per
candidate — yet the seed search scored candidates lazily, one at a time,
inside ``sorted(population, key=fitness)``.  :class:`SearchEngine` turns
that into an explicit batch step: each generation the caller hands over
the genomes that are not yet scored, the engine fans the *fresh* ones out
over a process pool (the :class:`repro.runtime.batch.WorkerPool`
lifecycle, with per-candidate retry, broken-pool recovery, and an inline
serial fallback — the same degradation pattern as the resilient serving
runtime), and every later fitness lookup is a dict hit.

**Determinism contract.**  The engine never consumes random state and
returns outcomes keyed by genome, collected in request order, so a search
driven through it produces an identical :class:`~.evolution.SearchResult`
— best config, history, and evaluated map — for *any* worker count,
executor kind, or cache temperature.  Candidate evaluation itself is
seeded (the proxy trains with a fixed :class:`TrainConfig` seed), so a
worker process computes bit-identical floats to an inline evaluation.

**Persistent cache.**  With ``cache_path`` set, every fresh evaluation is
appended as one JSONL line ``(fingerprint, genome) -> (fitness,
accuracy, L_HW, train wall)``.  The fingerprint hashes the *training
identity* — task/dataset content, proxy train budget, and the active
kernel set (see :meth:`SearchEngine.fingerprint`) — but **not** the
objective's trade-off weights: on a hit the cached accuracy is re-scored
through the live objective (``objective.rescore``), so overlapping
Pareto sweeps and re-weighted searches reuse the expensive training and
recompute only the closed-form hardware penalty.  Objectives that carry
no :meth:`fingerprint` cannot be persisted and silently run cache-less.

Everything lands in the observability stack: per-candidate wall times in
the ``search.candidate`` histogram (a real span tree when a tracer is
active on the inline path), ``search.cache.{hit,miss}`` counters, and
``search.{workers,retries,fallbacks,broken_pools}`` — all harvested into
the run ledger by :func:`repro.obs.ledger.record_run`.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pathlib import Path
from time import perf_counter
from typing import Iterable

from repro.obs import annotate_span, get_registry, stage_timer, trace_span
from repro.obs.telemetry import (
    drain_pool,
    drain_worker_delta,
    install_worker_telemetry,
    merge_delta,
)
from repro.runtime.batch import WorkerPool, resolve_workers
from repro.vsa.kernels import kernel_info

from .space import SearchSpace

__all__ = [
    "DEFAULT_CACHE_PATH",
    "CandidateOutcome",
    "EvaluationCache",
    "SearchEngine",
]

DEFAULT_CACHE_PATH = Path("benchmarks") / "results" / "search_cache.jsonl"

#: Bumping this invalidates every existing cache line (schema changes).
CACHE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class CandidateOutcome:
    """One scored genome: the fitness plus its objective decomposition.

    ``accuracy``/``penalty`` are ``None`` for plain callables that expose
    no ``breakdown``; ``wall_s`` is the candidate's own train/evaluate
    wall time (as measured where it ran); ``cached`` marks outcomes
    served from the persistent cache instead of a fresh train.
    """

    genome: tuple[int, ...]
    fitness: float
    accuracy: float | None
    penalty: float | None
    wall_s: float
    cached: bool = False

    def as_cache_line(self, fingerprint: str) -> dict:
        """JSON payload for one cache line."""
        return {
            "v": CACHE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "genome": list(self.genome),
            "fitness": self.fitness,
            "accuracy": self.accuracy,
            "penalty": self.penalty,
            "wall_s": self.wall_s,
        }

    @classmethod
    def from_cache_line(cls, payload: dict) -> "CandidateOutcome":
        """Inverse of :meth:`as_cache_line` (the stored entry is a hit)."""
        return cls(
            genome=tuple(int(g) for g in payload["genome"]),
            fitness=float(payload["fitness"]),
            accuracy=None if payload.get("accuracy") is None else float(payload["accuracy"]),
            penalty=None if payload.get("penalty") is None else float(payload["penalty"]),
            wall_s=float(payload.get("wall_s", 0.0)),
            cached=True,
        )


class EvaluationCache:
    """Append-only JSONL store of evaluated candidates, one fingerprint.

    Lines whose fingerprint (or format version) differs from the
    engine's are skipped on load — a changed dataset, train budget, or
    kernel set therefore *invalidates* rather than corrupts.  The file
    is shared: concurrent searches over different fingerprints append to
    the same path without interfering.
    """

    def __init__(self, path: str | os.PathLike, fingerprint: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._entries: dict[tuple[int, ...], CandidateOutcome] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn line (crashed writer); skip, don't abort
                if (
                    payload.get("v") != CACHE_FORMAT_VERSION
                    or payload.get("fingerprint") != self.fingerprint
                ):
                    continue
                outcome = CandidateOutcome.from_cache_line(payload)
                self._entries[outcome.genome] = outcome

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, genome: tuple[int, ...]) -> CandidateOutcome | None:
        """The stored outcome for ``genome``, or ``None``."""
        return self._entries.get(genome)

    def put_many(self, outcomes: Iterable[CandidateOutcome]) -> int:
        """Append fresh outcomes (one flush per batch); returns the count."""
        lines = [
            json.dumps(o.as_cache_line(self.fingerprint), sort_keys=True)
            for o in outcomes
            if o.genome not in self._entries
        ]
        if not lines:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        for outcome in outcomes:
            self._entries.setdefault(outcome.genome, replace(outcome, cached=True))
        return len(lines)


# ---------------------------------------------------------------------------
# process-pool plumbing (module level so spawn contexts can pickle it)
# ---------------------------------------------------------------------------
_WORKER_STATE: tuple | None = None


def _engine_worker_init(
    objective, space: SearchSpace, telemetry: bool = False
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (objective, space)
    install_worker_telemetry(telemetry)


def _evaluate_parts(
    objective, space: SearchSpace, genome: tuple[int, ...]
) -> tuple[float, float | None, float | None]:
    """(fitness, accuracy, penalty) for one genome, breakdown-aware."""
    config = space.decode(genome)
    breakdown = getattr(objective, "breakdown", None)
    if breakdown is not None:
        parts = breakdown(config)
        return (
            float(parts["objective"]),
            float(parts["accuracy"]),
            float(parts["penalty"]),
        )
    return float(objective(config)), None, None


def _engine_worker_eval(genome: tuple[int, ...]) -> tuple:
    objective, space = _WORKER_STATE
    start = perf_counter()
    fitness, accuracy, penalty = _evaluate_parts(objective, space, genome)
    return genome, fitness, accuracy, penalty, perf_counter() - start, drain_worker_delta()


class SearchEngine:
    """Batched, memoized, optionally parallel candidate evaluator.

    Parameters
    ----------
    objective:
        ``config -> fitness`` callable.  Optional protocol extensions:
        ``breakdown(config)`` (accuracy/penalty decomposition, required
        for Pareto search and for accuracy-level cache reuse),
        ``fingerprint()`` (training-identity payload, required for the
        persistent cache), and ``rescore(config, accuracy)`` (re-derive
        the breakdown from a cached accuracy without retraining).
    space:
        Genome codec; must match the space the search loop uses.
    workers:
        Pool size.  ``None`` resolves via
        :func:`repro.runtime.batch.resolve_workers`; ``1`` evaluates
        inline (no pool).
    executor:
        ``"process"`` (default — candidate training is Python-heavy, so
        threads would serialize on the GIL), ``"thread"``, or
        ``"serial"`` to force inline evaluation regardless of
        ``workers``.
    cache_path:
        JSONL path for the persistent cache; ``None`` disables.  Ignored
        (with a stat, not an error) when the objective carries no
        ``fingerprint``.
    max_retries:
        Extra pool attempts per candidate before the inline fallback.
    """

    def __init__(
        self,
        objective,
        space: SearchSpace = SearchSpace(),
        *,
        workers: int | None = None,
        executor: str = "process",
        cache_path: str | os.PathLike | None = None,
        max_retries: int = 1,
        mp_context=None,
    ) -> None:
        if executor not in ("process", "thread", "serial"):
            raise ValueError(
                f"unknown executor {executor!r}; expected 'process', 'thread', or 'serial'"
            )
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.objective = objective
        self.space = space
        self.workers = 1 if executor == "serial" else resolve_workers(workers)
        self.executor_kind = executor
        self.max_retries = max_retries
        self._mp_context = mp_context
        self._workerpool = WorkerPool(self._make_pool)
        self.memo: dict[tuple[int, ...], CandidateOutcome] = {}
        self.stats = {
            "cache_hits": 0,
            "cache_misses": 0,
            "evaluations": 0,
            "retries": 0,
            "fallbacks": 0,
            "broken_pools": 0,
            "train_wall_s": 0.0,
            "saved_wall_s": 0.0,
            "batch_wall_s": 0.0,
            "batches": 0,
        }
        self.cache: EvaluationCache | None = None
        self.cache_fingerprint: str | None = None
        if cache_path is not None:
            fingerprint = self.fingerprint()
            if fingerprint is not None:
                self.cache = EvaluationCache(cache_path, fingerprint)
                self.cache_fingerprint = fingerprint

    # ------------------------------------------------------------------
    def fingerprint(self) -> str | None:
        """Training-identity hash keying the persistent cache.

        Combines the objective's own fingerprint payload (dataset
        content, proxy train budget, model shape context) with the
        active kernel set and the cache format version.  ``None`` when
        the objective exposes no ``fingerprint`` — such objectives can
        be memoized in-process but never persisted.
        """
        payload_fn = getattr(self.objective, "fingerprint", None)
        if payload_fn is None:
            return None
        try:
            objective_payload = payload_fn()
        except TypeError:
            # Fingerprintable objective over an unfingerprintable inner
            # evaluator (e.g. a bare lambda): memoize in-process only.
            return None
        payload = {
            "objective": objective_payload,
            "kernels": kernel_info()["set"],
            "space": {
                "levels": self.space.levels,
                "extra": {k: str(v) for k, v in sorted(self.space.extra.items())},
            },
            "v": CACHE_FORMAT_VERSION,
        }
        canonical = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------
    def _make_pool(self) -> Executor:
        if self.executor_kind == "thread":
            return ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-search"
            )
        import multiprocessing as mp

        context = self._mp_context
        if context is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else None
            context = mp.get_context(method)
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=_engine_worker_init,
            initargs=(self.objective, self.space, get_registry().enabled),
        )

    def close(self) -> None:
        """Shut the worker pool down (idempotent), draining any metric
        residue still sitting in process workers first."""
        executor = self._workerpool.executor
        if executor is not None and self.executor_kind == "process":
            drain_pool(executor, get_registry(), self.workers)
        self._workerpool.close()

    def __enter__(self) -> "SearchEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _rescored_hit(self, cached: CandidateOutcome) -> CandidateOutcome:
        """Materialize a cache hit under the *live* objective.

        The fingerprint deliberately excludes trade-off weights
        (lambda1/lambda2), so the stored fitness/penalty may have been
        computed under different weights.  When the objective can
        re-derive them from the cached accuracy we do that (closed-form,
        no training); otherwise the stored values are reused verbatim.
        """
        rescore = getattr(self.objective, "rescore", None)
        if cached.accuracy is not None and rescore is not None:
            parts = rescore(self.space.decode(cached.genome), cached.accuracy)
            return replace(
                cached,
                fitness=float(parts["objective"]),
                penalty=float(parts["penalty"]),
                cached=True,
            )
        return replace(cached, cached=True)

    def _evaluate_inline(self, genome: tuple[int, ...]) -> CandidateOutcome:
        with stage_timer("search.candidate"):
            annotate_span(genome=str(genome))
            start = perf_counter()
            fitness, accuracy, penalty = _evaluate_parts(
                self.objective, self.space, genome
            )
            return CandidateOutcome(
                genome, fitness, accuracy, penalty, perf_counter() - start
            )

    def _evaluate_pool(
        self, pending: list[tuple[int, ...]]
    ) -> dict[tuple[int, ...], CandidateOutcome]:
        """Fan pending genomes out; collect in request order.

        Ladder per candidate: pool attempt -> up to ``max_retries``
        resubmissions (a ``BrokenProcessPool`` additionally replaces the
        pool and resubmits every uncollected candidate) -> inline serial
        fallback in the calling process.
        """
        registry = get_registry()
        candidate_hist = registry.histogram("search.candidate")
        pool = self._workerpool.ensure()
        futures = {g: pool.submit(_engine_worker_eval, g) for g in pending}
        attempts = {g: 1 for g in pending}
        results: dict[tuple[int, ...], CandidateOutcome] = {}
        for genome in pending:
            while True:
                try:
                    _, fitness, accuracy, penalty, wall, delta = futures[
                        genome
                    ].result()
                    results[genome] = CandidateOutcome(
                        genome, fitness, accuracy, penalty, wall
                    )
                    candidate_hist.observe(wall)
                    merge_delta(registry, delta)
                    break
                except BrokenProcessPool:
                    self.stats["broken_pools"] += 1
                    registry.counter("search.broken_pools").add(1)
                    pool = self._workerpool.replace()
                    # Every sibling future is poisoned too: resubmit all
                    # uncollected candidates on the fresh pool, charging
                    # an attempt only to the one that surfaced the break.
                    attempts[genome] += 1
                    for other in pending:
                        if other not in results:
                            futures[other] = pool.submit(_engine_worker_eval, other)
                    if attempts[genome] > self.max_retries + 1:
                        results[genome] = self._fallback(genome)
                        break
                    self.stats["retries"] += 1
                    registry.counter("search.retries").add(1)
                except Exception:
                    attempts[genome] += 1
                    if attempts[genome] > self.max_retries + 1:
                        results[genome] = self._fallback(genome)
                        break
                    self.stats["retries"] += 1
                    registry.counter("search.retries").add(1)
                    futures[genome] = pool.submit(_engine_worker_eval, genome)
        return results

    def _fallback(self, genome: tuple[int, ...]) -> CandidateOutcome:
        """Inline serial evaluation after the pool ladder is exhausted.

        A deterministic objective error (one that also fails inline)
        propagates — the search cannot proceed without a fitness, and
        surfacing the real exception beats inventing a sentinel score.
        """
        self.stats["fallbacks"] += 1
        get_registry().counter("search.fallbacks").add(1)
        return self._evaluate_inline(genome)

    # ------------------------------------------------------------------
    def evaluate(
        self, genomes: Iterable[tuple[int, ...]]
    ) -> dict[tuple[int, ...], CandidateOutcome]:
        """Score a batch of genomes; returns ``{genome: outcome}``.

        Request order is preserved in the returned dict (duplicates
        collapse onto their first occurrence), already-scored genomes
        come from the in-process memo, cache hits skip training, and
        only the remainder is evaluated — in parallel when a pool is
        configured.
        """
        ordered: list[tuple[int, ...]] = []
        seen: set[tuple[int, ...]] = set()
        for genome in genomes:
            genome = tuple(int(g) for g in genome)
            if genome not in seen:
                seen.add(genome)
                ordered.append(genome)
        registry = get_registry()
        pending: list[tuple[int, ...]] = []
        start = perf_counter()
        with trace_span("search.batch"):
            for genome in ordered:
                if genome in self.memo:
                    continue
                cached = self.cache.get(genome) if self.cache is not None else None
                if cached is not None:
                    self.memo[genome] = self._rescored_hit(cached)
                    self.stats["cache_hits"] += 1
                    self.stats["saved_wall_s"] += cached.wall_s
                    registry.counter("search.cache.hit").add(1)
                else:
                    pending.append(genome)
                    self.stats["cache_misses"] += 1
                    registry.counter("search.cache.miss").add(1)
            annotate_span(
                batch=len(ordered),
                pending=len(pending),
                workers=self.workers,
                executor=self.executor_kind,
            )
            registry.gauge("search.workers").set(self.workers)
            if pending:
                if self.workers == 1 or self.executor_kind == "serial":
                    fresh = {g: self._evaluate_inline(g) for g in pending}
                else:
                    fresh = self._evaluate_pool(pending)
                # Insert in request order no matter which worker finished
                # first — the memo/evaluated-map ordering is part of the
                # determinism contract.
                for genome in pending:
                    outcome = fresh[genome]
                    self.memo[genome] = outcome
                    self.stats["evaluations"] += 1
                    self.stats["train_wall_s"] += outcome.wall_s
                if self.cache is not None:
                    self.cache.put_many(fresh[g] for g in pending)
        self.stats["batch_wall_s"] += perf_counter() - start
        self.stats["batches"] += 1
        return {genome: self.memo[genome] for genome in ordered}

    # ------------------------------------------------------------------
    def speedup(self) -> float:
        """(candidate wall + avoided wall) / engine wall.

        ~1.0 for serial cold runs, ~``workers`` for a perfectly parallel
        pool, and far above that on warm caches — cache hits count the
        train time their stored entry *avoided*.  0.0 before any batch.
        """
        if self.stats["batch_wall_s"] <= 0.0:
            return 0.0
        return (
            self.stats["train_wall_s"] + self.stats["saved_wall_s"]
        ) / self.stats["batch_wall_s"]

    def ledger_stats(self) -> dict[str, float]:
        """Engine counters in run-ledger metric form."""
        out = {f"search_{k}": float(v) for k, v in self.stats.items()}
        out["search_speedup"] = self.speedup()
        out["search_workers"] = float(self.workers)
        return out
