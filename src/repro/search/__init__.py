"""Evolutionary algorithm/hardware co-design search (Sec. V-A)."""

from .engine import CandidateOutcome, EvaluationCache, SearchEngine
from .evolution import EvolutionConfig, SearchResult, evolutionary_search
from .objective import CodesignObjective
from .pareto import (
    ParetoPoint,
    ParetoResult,
    SplitObjective,
    crowding_distance,
    non_dominated_sort,
    nsga2_search,
)
from .proxy import AccuracyProxy
from .space import SearchSpace

__all__ = [
    "SearchSpace",
    "AccuracyProxy",
    "CodesignObjective",
    "CandidateOutcome",
    "EvaluationCache",
    "SearchEngine",
    "ParetoPoint",
    "ParetoResult",
    "SplitObjective",
    "non_dominated_sort",
    "crowding_distance",
    "nsga2_search",
    "EvolutionConfig",
    "SearchResult",
    "evolutionary_search",
]
