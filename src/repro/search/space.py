"""Search space over UniVSA configurations (the Table I knobs).

A genome is the tuple (D_H, D_L, D_K, O, Theta); gene domains follow the
ranges the paper's searched configurations span.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import UniVSAConfig

__all__ = ["SearchSpace"]


@dataclass(frozen=True)
class SearchSpace:
    """Discrete domains for each gene, with validity repair."""

    d_high_choices: tuple[int, ...] = (2, 4, 8, 16)
    d_low_choices: tuple[int, ...] = (1, 2, 4)
    kernel_choices: tuple[int, ...] = (3, 5)
    out_channel_choices: tuple[int, ...] = tuple(range(8, 161, 8))
    voter_choices: tuple[int, ...] = (1, 3, 5)
    levels: int = 256
    extra: dict = field(default_factory=dict)  # fixed UniVSAConfig overrides

    def random(self, rng: np.random.Generator) -> UniVSAConfig:
        """Sample a uniformly random valid configuration."""
        genome = (
            rng.choice(self.d_high_choices),
            rng.choice(self.d_low_choices),
            rng.choice(self.kernel_choices),
            rng.choice(self.out_channel_choices),
            rng.choice(self.voter_choices),
        )
        return self.decode(genome)

    def decode(self, genome: tuple[int, int, int, int, int]) -> UniVSAConfig:
        """Genome -> config, repairing D_L > D_H."""
        d_high, d_low, kernel, channels, voters = (int(g) for g in genome)
        d_low = min(d_low, d_high)
        return UniVSAConfig(
            d_high=d_high,
            d_low=d_low,
            kernel_size=kernel,
            out_channels=channels,
            voters=voters,
            levels=self.levels,
            **self.extra,
        )

    def encode(self, config: UniVSAConfig) -> tuple[int, int, int, int, int]:
        """Config -> genome."""
        return config.as_paper_tuple()

    def mutate(
        self, config: UniVSAConfig, rng: np.random.Generator
    ) -> UniVSAConfig:
        """Flip one gene to a neighbouring domain value."""
        genome = list(self.encode(config))
        gene = int(rng.integers(0, len(genome)))
        domains = (
            self.d_high_choices,
            self.d_low_choices,
            self.kernel_choices,
            self.out_channel_choices,
            self.voter_choices,
        )
        domain = domains[gene]
        current = genome[gene]
        if current in domain and len(domain) > 1:
            idx = domain.index(current)
            step = int(rng.choice([-1, 1]))
            idx = int(np.clip(idx + step, 0, len(domain) - 1))
            genome[gene] = domain[idx]
        else:
            genome[gene] = int(rng.choice(domain))
        return self.decode(tuple(genome))

    def crossover(
        self, a: UniVSAConfig, b: UniVSAConfig, rng: np.random.Generator
    ) -> UniVSAConfig:
        """Uniform crossover over genes."""
        genome_a = self.encode(a)
        genome_b = self.encode(b)
        child = tuple(
            genome_a[i] if rng.random() < 0.5 else genome_b[i]
            for i in range(len(genome_a))
        )
        return self.decode(child)
