"""Evolutionary configuration search with elitist preservation [28].

Generational GA over the (D_H, D_L, D_K, O, Theta) genome: tournament
selection, uniform crossover, single-gene neighbourhood mutation, and
elitist preservation (the top ``elite`` individuals survive unchanged,
guaranteeing monotone best-so-far fitness).

Candidate scoring is batched through :class:`~.engine.SearchEngine`: at
the top of each generation every not-yet-scored genome in the population
is evaluated in one engine batch (process-parallel and/or cache-served),
after which sorting and tournament selection are pure dict lookups.
Because evaluation consumes no random state, the GA's rng stream — and
therefore the produced :class:`SearchResult` — is identical to the seed
serial implementation for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.config import UniVSAConfig
from repro.hw.cost import resource_units
from repro.obs import get_registry, stage_timer

from .engine import CandidateOutcome, SearchEngine
from .space import SearchSpace

__all__ = ["EvolutionConfig", "SearchResult", "evolutionary_search"]


@dataclass(frozen=True)
class EvolutionConfig:
    """GA hyperparameters."""

    population: int = 12
    generations: int = 6
    elite: int = 2
    tournament: int = 3
    crossover_rate: float = 0.7
    mutation_rate: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if not 0 < self.elite < self.population:
            raise ValueError("elite must be in (0, population)")
        if self.tournament < 1:
            raise ValueError("tournament must be >= 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")


@dataclass
class SearchResult:
    """Best configuration found plus the full search trace."""

    best_config: UniVSAConfig
    best_fitness: float
    history: list[float] = field(default_factory=list)  # best per generation
    evaluated: dict = field(default_factory=dict)  # genome -> fitness
    stats: dict = field(default_factory=dict)  # engine counters (cache, workers, walls)

    @property
    def generations_run(self) -> int:
        """Number of generations actually executed."""
        return len(self.history)


def _hardware_key(
    outcome: CandidateOutcome, space: SearchSpace
) -> tuple[float, tuple[int, ...]]:
    """Deterministic cheapness ordering for fitness ties.

    Prefers the true L_HW when the objective decomposes (CodesignObjective);
    plain callables fall back to the Eq. 6 resource units of the decoded
    config, with the genome tuple as the final total-order tie-break.
    """
    if outcome.penalty is not None:
        return (outcome.penalty, outcome.genome)
    return (resource_units(space.decode(outcome.genome)), outcome.genome)


def evolutionary_search(
    objective: Callable[[UniVSAConfig], float],
    space: SearchSpace = SearchSpace(),
    config: EvolutionConfig = EvolutionConfig(),
    engine: SearchEngine | None = None,
) -> SearchResult:
    """Maximize ``objective`` over the search space.

    Pass an ``engine`` to control parallelism and persistent caching
    (its ``space`` must be the search's ``space``); by default a serial,
    cache-less engine is built around ``objective``.  The result is
    engine-invariant: workers and cache temperature change wall time,
    never the returned configs, history, or evaluated map.
    """
    rng = np.random.default_rng(config.seed)
    owns_engine = engine is None
    if engine is None:
        engine = SearchEngine(objective, space, executor="serial")
    outcomes: dict[tuple, CandidateOutcome] = {}

    def ensure_scored(candidates: list[UniVSAConfig]) -> None:
        genomes = [space.encode(c) for c in candidates]
        for genome, outcome in engine.evaluate(genomes).items():
            outcomes.setdefault(genome, outcome)

    def fitness(candidate: UniVSAConfig) -> float:
        return outcomes[space.encode(candidate)].fitness

    try:
        population = [space.random(rng) for _ in range(config.population)]
        history: list[float] = []
        registry = get_registry()
        for _generation in range(config.generations):
            with stage_timer("search.generation"):
                ensure_scored(population)
                scored = sorted(population, key=fitness, reverse=True)
                history.append(fitness(scored[0]))
                # Elitist preservation: the best individuals survive unchanged.
                next_population = scored[: config.elite]
                while len(next_population) < config.population:
                    parent_a = _tournament(scored, fitness, config.tournament, rng)
                    if rng.random() < config.crossover_rate:
                        parent_b = _tournament(scored, fitness, config.tournament, rng)
                        child = space.crossover(parent_a, parent_b, rng)
                    else:
                        child = parent_a
                    if rng.random() < config.mutation_rate:
                        child = space.mutate(child, rng)
                    next_population.append(child)
                population = next_population
            registry.counter("search.generations").add(1)
            registry.gauge("search.best_fitness").set(history[-1])
            registry.gauge("search.configs_evaluated").set(len(outcomes))
    finally:
        if owns_engine:
            engine.close()
    # Fitness ties break toward the cheaper hardware (then the smaller
    # genome), never dict insertion order.
    best_genome = min(
        outcomes,
        key=lambda g: (-outcomes[g].fitness,) + _hardware_key(outcomes[g], space),
    )
    return SearchResult(
        best_config=space.decode(best_genome),
        best_fitness=outcomes[best_genome].fitness,
        history=history,
        evaluated={genome: outcome.fitness for genome, outcome in outcomes.items()},
        stats=dict(engine.stats, workers=engine.workers, speedup=engine.speedup()),
    )


def _tournament(
    scored: list[UniVSAConfig],
    fitness: Callable[[UniVSAConfig], float],
    size: int,
    rng: np.random.Generator,
) -> UniVSAConfig:
    """Pick the fittest of ``size`` random individuals."""
    picks = rng.integers(0, len(scored), size=size)
    return max((scored[i] for i in picks), key=fitness)
