"""Evolutionary configuration search with elitist preservation [28].

Generational GA over the (D_H, D_L, D_K, O, Theta) genome: tournament
selection, uniform crossover, single-gene neighbourhood mutation, and
elitist preservation (the top ``elite`` individuals survive unchanged,
guaranteeing monotone best-so-far fitness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.config import UniVSAConfig
from repro.obs import get_registry, stage_timer

from .space import SearchSpace

__all__ = ["EvolutionConfig", "SearchResult", "evolutionary_search"]


@dataclass(frozen=True)
class EvolutionConfig:
    """GA hyperparameters."""

    population: int = 12
    generations: int = 6
    elite: int = 2
    tournament: int = 3
    crossover_rate: float = 0.7
    mutation_rate: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if not 0 < self.elite < self.population:
            raise ValueError("elite must be in (0, population)")
        if self.tournament < 1:
            raise ValueError("tournament must be >= 1")


@dataclass
class SearchResult:
    """Best configuration found plus the full search trace."""

    best_config: UniVSAConfig
    best_fitness: float
    history: list[float] = field(default_factory=list)  # best per generation
    evaluated: dict = field(default_factory=dict)  # genome -> fitness

    @property
    def generations_run(self) -> int:
        """Number of generations actually executed."""
        return len(self.history)


def evolutionary_search(
    objective: Callable[[UniVSAConfig], float],
    space: SearchSpace = SearchSpace(),
    config: EvolutionConfig = EvolutionConfig(),
) -> SearchResult:
    """Maximize ``objective`` over the search space."""
    rng = np.random.default_rng(config.seed)
    evaluated: dict[tuple, float] = {}

    def fitness(candidate: UniVSAConfig) -> float:
        key = space.encode(candidate)
        if key not in evaluated:
            evaluated[key] = float(objective(candidate))
        return evaluated[key]

    population = [space.random(rng) for _ in range(config.population)]
    history: list[float] = []
    registry = get_registry()
    for _generation in range(config.generations):
        with stage_timer("search.generation"):
            scored = sorted(population, key=fitness, reverse=True)
            history.append(fitness(scored[0]))
            # Elitist preservation: the best individuals survive unchanged.
            next_population = scored[: config.elite]
            while len(next_population) < config.population:
                parent_a = _tournament(scored, fitness, config.tournament, rng)
                if rng.random() < config.crossover_rate:
                    parent_b = _tournament(scored, fitness, config.tournament, rng)
                    child = space.crossover(parent_a, parent_b, rng)
                else:
                    child = parent_a
                if rng.random() < config.mutation_rate:
                    child = space.mutate(child, rng)
                next_population.append(child)
            population = next_population
        registry.counter("search.generations").add(1)
        registry.gauge("search.best_fitness").set(history[-1])
        registry.gauge("search.configs_evaluated").set(len(evaluated))
    best_genome = max(evaluated, key=evaluated.get)
    return SearchResult(
        best_config=space.decode(best_genome),
        best_fitness=evaluated[best_genome],
        history=history,
        evaluated=evaluated,
    )


def _tournament(
    scored: list[UniVSAConfig],
    fitness: Callable[[UniVSAConfig], float],
    size: int,
    rng: np.random.Generator,
) -> UniVSAConfig:
    """Pick the fittest of ``size`` random individuals."""
    picks = rng.integers(0, len(scored), size=size)
    return max((scored[i] for i in picks), key=fitness)
