"""K-bit fake quantization with straight-through gradients.

Supports the QNN baseline (Table III's Synetgy-class quantized networks):
weights and activations are quantized to k bits in the forward pass while
gradients flow through unchanged inside the clip range — the standard
DoReFa/PACT-style recipe, of which binarization (k=1) is the special case
already built into :meth:`Tensor.sign_ste`.
"""

from __future__ import annotations

import numpy as np

from .layers import Module, Parameter
from .init import kaiming_uniform
from .tensor import Tensor

__all__ = ["quantize_ste", "QuantLinear", "QuantConv2d"]


def quantize_ste(x: Tensor, bits: int, signed: bool = True) -> Tensor:
    """Uniform k-bit quantization of values clipped to [-1,1] (or [0,1]).

    Forward: clip, scale to the k-bit grid, round, rescale.  Backward:
    identity inside the clip range, zero outside (STE).
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    if signed:
        levels = float(2 ** (bits - 1) - 1) if bits > 1 else 1.0
        clipped = np.clip(x.data, -1.0, 1.0)
        quantized = np.round(clipped * levels) / levels
        inside = (x.data >= -1.0) & (x.data <= 1.0)
    else:
        levels = float(2**bits - 1)
        clipped = np.clip(x.data, 0.0, 1.0)
        quantized = np.round(clipped * levels) / levels
        inside = (x.data >= 0.0) & (x.data <= 1.0)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * inside)

    return Tensor._make(quantized.astype(np.float32), (x,), backward)


class QuantLinear(Module):
    """Dense layer with k-bit weights (and optional activation quant)."""

    def __init__(self, in_features: int, out_features: int, bits: int = 4, rng=None) -> None:
        super().__init__()
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.bits = bits
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            np.clip(kaiming_uniform((out_features, in_features), rng=rng), -1, 1),
            binary=True,  # reuse the [-1, 1] latent clipping
        )

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        w = quantize_ste(self.weight, self.bits)
        return x @ w.transpose()

    def quantized_weight(self) -> np.ndarray:
        """Deployed integer weights in [-(2^(b-1)-1), 2^(b-1)-1]."""
        levels = 2 ** (self.bits - 1) - 1 if self.bits > 1 else 1
        return np.round(np.clip(self.weight.data, -1, 1) * levels).astype(np.int32)


class QuantConv2d(Module):
    """2-D convolution with k-bit weights."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        bits: int = 4,
        stride: int = 1,
        padding: int = 0,
        rng=None,
    ) -> None:
        super().__init__()
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.bits = bits
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(np.clip(kaiming_uniform(shape, rng=rng), -1, 1), binary=True)

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        from . import functional as F

        w = quantize_ste(self.weight, self.bits)
        return F.conv2d(x, w, stride=self.stride, padding=self.padding)

    def quantized_weight(self) -> np.ndarray:
        """Deployed integer kernel."""
        levels = 2 ** (self.bits - 1) - 1 if self.bits > 1 else 1
        return np.round(np.clip(self.weight.data, -1, 1) * levels).astype(np.int32)
