"""Weight initializers for the training substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "uniform_symmetric", "default_rng"]


def default_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce ``rng`` (generator, seed, or None) to a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def kaiming_uniform(shape: tuple[int, ...], rng=None) -> np.ndarray:
    """He-style uniform init: bound = sqrt(6 / fan_in)."""
    gen = default_rng(rng)
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return gen.uniform(-bound, bound, size=shape).astype(np.float32)


def uniform_symmetric(shape: tuple[int, ...], scale: float = 0.1, rng=None) -> np.ndarray:
    """Small symmetric uniform init for binary latent weights.

    Latents live in [-1, 1]; starting them small keeps early sign flips easy
    (the standard BNN latent-weight initialization).
    """
    gen = default_rng(rng)
    return gen.uniform(-scale, scale, size=shape).astype(np.float32)
