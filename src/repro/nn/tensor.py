"""Reverse-mode automatic differentiation on numpy arrays.

This module is the training substrate for the whole repository.  The UniVSA
paper trains its models with PyTorch; no deep-learning framework is available
here, so we implement the minimal engine the paper's training recipe needs:
dense/convolutional ops, broadcasting-aware gradients, and the
straight-through estimator used by every binary layer.

The design is a vectorized tape: each :class:`Tensor` produced by an
operation stores a closure that scatters its output gradient back to its
parents.  ``Tensor.backward()`` topologically sorts the tape and runs the
closures once each.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient and autograd history."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: np.ndarray | float | int | Sequence,
        requires_grad: bool = False,
        _prev: tuple["Tensor", ...] = (),
        name: str = "",
    ) -> None:
        arr = np.asarray(data, dtype=np.float32)
        self.data = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._prev = _prev if self.requires_grad or _prev else ()
        self.name = name

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Array shape of the underlying data."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """The value of a single-element tensor as a Python float."""
        if self.data.size != 1:
            raise ValueError("item() requires a single-element tensor")
        return float(self.data.reshape(())[()]) if self.data.ndim == 0 else float(
            self.data.reshape(-1)[0]
        )

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        self.grad = None

    # ------------------------------------------------------------------
    # graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._prev = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float32), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=np.float32))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Tensor | float") -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: "Tensor | float") -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: "Tensor | float") -> "Tensor":
        return as_tensor(other) + (-self)

    def __truediv__(self, other: "Tensor | float") -> "Tensor":
        return self * as_tensor(other).pow(-1.0)

    def __rtruediv__(self, other: "Tensor | float") -> "Tensor":
        return as_tensor(other) * self.pow(-1.0)

    def pow(self, exponent: float) -> "Tensor":
        """Elementwise power with gradient support."""
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._make(out_data, (self,), backward)

    __pow__ = pow

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim else grad * other.data)
                else:
                    self._accumulate(grad @ other.data.swapaxes(-1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    g = self.data.swapaxes(-1, -2) @ grad
                    other._accumulate(g)

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        """View the tensor under a new shape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        """Permute axes (reversed order when none given)."""
        axes_t = tuple(axes) if axes else tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes_t)
        inverse = tuple(np.argsort(axes_t))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over the given axes."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Mean over the given axes."""
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Maximum along an axis (ties split gradient equally)."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = out_data if keepdims else np.expand_dims(out_data, axis)
            g = grad if keepdims else np.expand_dims(grad, axis)
            mask = (self.data == expanded).astype(np.float32)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * g)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        """Elementwise max(x, 0)."""
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0.0))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic function."""
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        """Elementwise absolute value."""
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to [low, high]; gradient zero outside."""
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            inside = (self.data >= low) & (self.data <= high)
            self._accumulate(grad * inside)

        return Tensor._make(out_data, (self,), backward)

    def sign_ste(self, clip: float = 1.0) -> "Tensor":
        """Binarize to {-1, +1} with a straight-through estimator.

        Forward is ``sign`` with the paper's tiebreak ``sgn(0) = +1``;
        backward passes gradients through unchanged inside ``[-clip, clip]``
        (the hard-tanh STE standard in BNN training).
        """
        out_data = np.where(self.data >= 0.0, 1.0, -1.0).astype(np.float32)

        def backward(grad: np.ndarray) -> None:
            inside = np.abs(self.data) <= clip
            self._accumulate(grad * inside)

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value: "Tensor | np.ndarray | float | int | Sequence") -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy for tensors)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                idx = [slice(None)] * grad.ndim
                idx[axis] = slice(int(start), int(stop))
                t._accumulate(grad[tuple(idx)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        parts = np.split(grad, len(tensors), axis=axis)
        for t, part in zip(tensors, parts):
            if t.requires_grad:
                t._accumulate(np.squeeze(part, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)
