"""Learning-rate schedulers for the training substrate."""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["StepLR", "CosineAnnealingLR"]


class _Scheduler:
    """Base: tracks epochs and rewrites optimizer.lr."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.get_lr()
        return self.optimizer.lr

    def get_lr(self) -> float:  # pragma: no cover - abstract
        """Learning rate for the current epoch."""
        raise NotImplementedError


class StepLR(_Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        """Learning rate for the current epoch."""
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from the base LR to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        super().__init__(optimizer)
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def get_lr(self) -> float:
        """Learning rate for the current epoch."""
        progress = min(self.epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )
