"""Loss functions for classifier training."""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = ["cross_entropy", "accuracy"]


def cross_entropy(
    logits: Tensor, targets: np.ndarray, class_weights: np.ndarray | None = None
) -> Tensor:
    """Mean cross-entropy between logits (B, C) and integer targets (B,).

    ``class_weights`` (C,) rescales each sample's loss by its class weight
    (normalized by the batch's total weight) — used to balance skewed
    class priors such as CHB-IB's 85/15 split.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    batch = logits.shape[0]
    if targets.shape != (batch,):
        raise ValueError(f"targets shape {targets.shape} does not match batch {batch}")
    log_probs = F.log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(batch), targets]
    if class_weights is None:
        return -picked.mean()
    weights = np.asarray(class_weights, dtype=np.float32)[targets]
    scale = Tensor(weights / weights.sum())
    return -(picked * scale).sum()


def accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy of logits/scores (B, C) against targets (B,)."""
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predictions = scores.argmax(axis=-1)
    return float((predictions == np.asarray(targets)).mean())
