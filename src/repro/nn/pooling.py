"""Spatial pooling operations (used by the BNN/QNN baseline family)."""

from __future__ import annotations

import numpy as np

from .layers import Module
from .tensor import Tensor

__all__ = ["max_pool2d", "MaxPool2d", "avg_pool2d", "AvgPool2d"]


def _pooled_size(size: int, kernel: int, stride: int) -> int:
    return (size - kernel) // stride + 1


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over (B, C, H, W) with square windows."""
    stride = stride or kernel
    b, c, h, w = x.shape
    out_h = _pooled_size(h, kernel, stride)
    out_w = _pooled_size(w, kernel, stride)
    strides = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(b, c, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    flat = windows.reshape(b, c, out_h, out_w, kernel * kernel)
    argmax = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        gx = np.zeros_like(x.data)
        ky, kx_ = np.unravel_index(argmax, (kernel, kernel))
        b_idx, c_idx, i_idx, j_idx = np.indices(argmax.shape)
        rows = i_idx * stride + ky
        cols = j_idx * stride + kx_
        np.add.at(gx, (b_idx, c_idx, rows, cols), grad)
        x._accumulate(gx)

    return Tensor._make(out_data.copy(), (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling over (B, C, H, W) with square windows."""
    stride = stride or kernel
    b, c, h, w = x.shape
    out_h = _pooled_size(h, kernel, stride)
    out_w = _pooled_size(w, kernel, stride)
    strides = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(b, c, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    out_data = windows.mean(axis=(-2, -1))
    scale = 1.0 / (kernel * kernel)

    def backward(grad: np.ndarray) -> None:
        gx = np.zeros_like(x.data)
        for ky in range(kernel):
            for kx_ in range(kernel):
                gx[
                    :,
                    :,
                    ky : ky + stride * out_h : stride,
                    kx_ : kx_ + stride * out_w : stride,
                ] += grad * scale
        x._accumulate(gx)

    return Tensor._make(out_data.copy(), (x,), backward)


class MaxPool2d(Module):
    """Module wrapper for :func:`max_pool2d`."""

    def __init__(self, kernel: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride or kernel

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        return max_pool2d(x, self.kernel, self.stride)


class AvgPool2d(Module):
    """Module wrapper for :func:`avg_pool2d`."""

    def __init__(self, kernel: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride or kernel

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        return avg_pool2d(x, self.kernel, self.stride)
