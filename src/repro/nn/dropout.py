"""Dropout regularization (inverted dropout, train-mode only)."""

from __future__ import annotations

import numpy as np

from .layers import Module
from .tensor import Tensor

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout: zero activations with probability ``p`` and
    rescale survivors by 1/(1-p); identity in eval mode."""

    def __init__(self, p: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("p must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)
