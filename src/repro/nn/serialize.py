"""Save/load model state dicts as .npz archives."""

from __future__ import annotations

import os

import numpy as np

from .layers import Module

__all__ = ["save_state", "load_state"]


def save_state(module: Module, path: str | os.PathLike) -> None:
    """Persist a module's parameters and buffers to ``path`` (.npz)."""
    state = module.state_dict()
    np.savez(path, **state)


def load_state(module: Module, path: str | os.PathLike) -> None:
    """Load parameters and buffers saved by :func:`save_state`."""
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
