"""Layer/module system: real and binarized layers used by LDC and UniVSA.

Binary layers keep full-precision *latent* weights, binarize them with a
straight-through estimator on every forward pass, and clip latents to
[-1, 1] after each optimizer step (the standard BNN recipe the LDC paper
trains with).  After training, ``repro.core.export`` extracts the binarized
weights as the VSA artifacts V, K, F, C.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from . import functional as F
from .init import kaiming_uniform, uniform_symmetric
from .tensor import Tensor

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "BinaryLinear",
    "BinaryConv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "Tanh",
    "SignActivation",
]


class Parameter(Tensor):
    """A tensor registered as trainable state of a module."""

    def __init__(self, data: np.ndarray, binary: bool = False) -> None:
        super().__init__(data, requires_grad=True)
        self.binary = binary


class Module:
    """Base class with parameter registration and train/eval modes."""

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self._buffers: dict[str, np.ndarray] = {}
        self.training = True

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Attach non-trainable state saved with the module."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> Iterator[Parameter]:
        """Iterate over all trainable parameters (depth first)."""
        yield from self._parameters.values()
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Iterate over (dotted name, parameter) pairs."""
        for name, param in self._parameters.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix + mod_name + ".")

    def modules(self) -> Iterator["Module"]:
        """Iterate over this module and every submodule."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode on this module and all submodules."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set inference mode on this module and all submodules."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(p.size for p in self.parameters())

    def state_dict(self, prefix: str = "") -> dict[str, np.ndarray]:
        """All parameters and buffers as a flat name->array dict."""
        state: dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[prefix + name] = param.data.copy()
        for name, buf in self._buffers.items():
            state[prefix + name] = np.array(buf, copy=True)
        for mod_name, module in self._modules.items():
            state.update(module.state_dict(prefix + mod_name + "."))
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], prefix: str = "") -> None:
        """Restore parameters and buffers from state_dict output."""
        for name, param in self._parameters.items():
            key = prefix + name
            if key not in state:
                raise KeyError(f"missing parameter {key!r} in state dict")
            if state[key].shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: "
                    f"{state[key].shape} vs {param.data.shape}"
                )
            param.data = np.asarray(state[key], dtype=np.float32).copy()
        for name in self._buffers:
            key = prefix + name
            if key in state:
                buf = np.asarray(state[key]).copy()
                self._buffers[name] = buf
                object.__setattr__(self, name, buf)
        for mod_name, module in self._modules.items():
            module.load_state_dict(state, prefix + mod_name + ".")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        """Run the module's forward computation."""
        raise NotImplementedError


class Sequential(Module):
    """Run submodules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)
        for i, module in enumerate(modules):
            setattr(self, f"layer{i}", module)

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        for module in self.layers:
            x = module(x)
        return x


class Linear(Module):
    """Full-precision dense layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(kaiming_uniform((out_features, in_features), rng=rng))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        return F.linear(x, self.weight, self.bias)


class BinaryLinear(Module):
    """Dense layer whose effective weights are sign(latent) in {-1, +1}.

    ``binary_weight()`` exposes the deployed bipolar matrix — this is where
    the F and C vector sets of the VSA model are read out after training.
    """

    def __init__(self, in_features: int, out_features: int, rng=None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(uniform_symmetric((out_features, in_features), rng=rng), binary=True)

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        return F.linear(x, self.weight.sign_ste())

    def binary_weight(self) -> np.ndarray:
        """Deployed bipolar weights as int8 in {-1, +1}."""
        return np.where(self.weight.data >= 0.0, 1, -1).astype(np.int8)


class BinaryConv2d(Module):
    """Binary 2-D convolution (the paper's BiConv).

    Kernel shape is (O, C, D_K, D_K); effective weights are sign(latent).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng=None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(uniform_symmetric(shape, rng=rng), binary=True)

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        return F.conv2d(x, self.weight.sign_ste(), stride=self.stride, padding=self.padding)

    def binary_weight(self) -> np.ndarray:
        """Deployed bipolar kernel K as int8 in {-1, +1}."""
        return np.where(self.weight.data >= 0.0, 1, -1).astype(np.int8)


class _BatchNormBase(Module):
    """Shared batch-norm logic; subclasses declare the reduction axes."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features, dtype=np.float32))
        self.beta = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def _axes(self, x: Tensor) -> tuple[int, ...]:
        raise NotImplementedError

    def _param_shape(self, x: Tensor) -> tuple[int, ...]:
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        axes = self._axes(x)
        shape = self._param_shape(x)
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=axes, keepdims=True)
            m = self.momentum
            self._buffers["running_mean"] = (
                (1 - m) * self._buffers["running_mean"] + m * mean.data.reshape(-1)
            )
            self._buffers["running_var"] = (
                (1 - m) * self._buffers["running_var"] + m * var.data.reshape(-1)
            )
            self.running_mean = self._buffers["running_mean"]
            self.running_var = self._buffers["running_var"]
            normalized = centered * (var + self.eps).pow(-0.5)
        else:
            mean = Tensor(self._buffers["running_mean"].reshape(shape))
            var = Tensor(self._buffers["running_var"].reshape(shape))
            normalized = (x - mean) * (var + self.eps).pow(-0.5)
        return normalized * self.gamma.reshape(shape) + self.beta.reshape(shape)

    def fold_thresholds(self) -> tuple[np.ndarray, np.ndarray]:
        """Fold BN + sign into per-channel integer thresholds.

        For a pre-activation integer value ``y`` (an XNOR/popcount
        accumulation), ``sign(BN(y)) = +1`` iff ``gamma*(y-mu)/sigma + beta
        >= 0``.  With gamma > 0 this is ``y >= mu - beta*sigma/gamma``; with
        gamma < 0 the comparison flips.  Returns (thresholds, flip_mask):
        output bit is ``y >= t`` where flip=False, ``y < t`` where flip=True
        (inclusive boundaries chosen to preserve the sgn(0)=+1 tiebreak).
        """
        sigma = np.sqrt(self._buffers["running_var"] + self.eps)
        gamma = self.gamma.data
        beta = self.beta.data
        mu = self._buffers["running_mean"]
        safe_gamma = np.where(gamma == 0.0, 1.0, gamma)
        thresholds = mu - beta * sigma / safe_gamma
        flip = gamma < 0.0
        # gamma == 0: output is sign(beta) everywhere; encode as +/- infinity.
        zero = gamma == 0.0
        thresholds = np.where(zero & (beta >= 0.0), -np.inf, thresholds)
        thresholds = np.where(zero & (beta < 0.0), np.inf, thresholds)
        return thresholds.astype(np.float64), flip


class BatchNorm1d(_BatchNormBase):
    """Batch norm over (B, C) or (B, C, L) inputs."""

    def _axes(self, x: Tensor) -> tuple[int, ...]:
        return (0,) if x.ndim == 2 else (0, 2)

    def _param_shape(self, x: Tensor) -> tuple[int, ...]:
        return (1, self.num_features) if x.ndim == 2 else (1, self.num_features, 1)


class BatchNorm2d(_BatchNormBase):
    """Batch norm over (B, C, H, W) inputs."""

    def _axes(self, x: Tensor) -> tuple[int, ...]:
        return (0, 2, 3)

    def _param_shape(self, x: Tensor) -> tuple[int, ...]:
        return (1, self.num_features, 1, 1)


class ReLU(Module):
    """Module wrapper for the ReLU activation."""
    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        return x.relu()


class Tanh(Module):
    """Module wrapper for the tanh activation."""
    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        return x.tanh()


class SignActivation(Module):
    """Binarization activation with STE backward (the sgn of Eq. 1)."""

    def __init__(self, clip: float = 1.0) -> None:
        super().__init__()
        self.clip = clip

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        return x.sign_ste(clip=self.clip)
