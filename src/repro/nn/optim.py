"""Optimizers with the latent-weight clipping binary nets require."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer: holds parameters, applies binary latent clipping."""

    def __init__(self, params: Iterable[Parameter]) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        """Apply one optimizer update from accumulated gradients."""
        raise NotImplementedError

    def _clip_binary_latents(self) -> None:
        # Binary layers train latent weights in [-1, 1]; values outside the
        # clip band would never receive STE gradient again.
        for p in self.params:
            if getattr(p, "binary", False):
                np.clip(p.data, -1.0, 1.0, out=p.data)


class SGD(Optimizer):
    """Plain SGD with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one optimizer update from accumulated gradients."""
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad
        self._clip_binary_latents()


class Adam(Optimizer):
    """Adam; the optimizer used for all binary-VSA training in this repo."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Apply one optimizer update from accumulated gradients."""
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
        self._clip_binary_latents()
