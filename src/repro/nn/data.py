"""Minimal batching utilities for numpy datasets."""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["batch_iterator", "train_val_split"]


def batch_iterator(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    shuffle: bool = True,
    rng: np.random.Generator | int | None = None,
    drop_last: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (x_batch, y_batch) minibatches."""
    n = len(x)
    if len(y) != n:
        raise ValueError("x and y length mismatch")
    order = np.arange(n)
    if shuffle:
        gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        gen.shuffle(order)
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        if drop_last and len(idx) < batch_size:
            break
        yield x[idx], y[idx]


def train_val_split(
    x: np.ndarray,
    y: np.ndarray,
    val_fraction: float = 0.2,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into train/validation parts."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    order = gen.permutation(len(x))
    n_val = max(1, int(round(len(x) * val_fraction)))
    val_idx, train_idx = order[:n_val], order[n_val:]
    return x[train_idx], y[train_idx], x[val_idx], y[val_idx]
