"""Functional neural-network operations on :class:`~repro.nn.tensor.Tensor`.

Contains the convolution machinery (im2col based, exactly the access pattern
the UniVSA hardware convolution engine iterates over), softmax/log-softmax,
and padding utilities.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "pad2d",
    "log_softmax",
    "softmax",
    "linear",
]


def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(
    x: np.ndarray, kernel: tuple[int, int], stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Unfold ``x`` of shape (B, C, H, W) to (B, out_h*out_w, C*kh*kw).

    This is the software mirror of the hardware's sliding-window data
    marshalling: each row of the result is one convolution iteration's
    operand block.
    """
    b, c, h, w = x.shape
    kh, kw = kernel
    out_h = _conv_output_size(h, kh, stride, padding)
    out_w = _conv_output_size(w, kw, stride, padding)
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(b, c, out_h, out_w, kh, kw),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    # (B, out_h, out_w, C, kh, kw) -> (B, out_h*out_w, C*kh*kw)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(b, out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Fold column gradients back to the input shape (adjoint of im2col)."""
    b, c, h, w = x_shape
    kh, kw = kernel
    out_h = _conv_output_size(h, kh, stride, padding)
    out_w = _conv_output_size(w, kw, stride, padding)
    padded = np.zeros((b, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols6 = cols.reshape(b, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += (
                cols6[:, :, :, :, i, j]
            )
    if padding:
        return padded[:, :, padding : padding + h, padding : padding + w]
    return padded


def conv2d(x: Tensor, weight: Tensor, stride: int = 1, padding: int = 0) -> Tensor:
    """2-D cross-correlation: x (B, C, H, W) * weight (O, C, kh, kw).

    No bias: the binary hardware datapath has none (thresholds come from
    folded batch norm instead, see :mod:`repro.core.export`).
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    b, c, h, w = x.shape
    o, c2, kh, kw = weight.shape
    if c != c2:
        raise ValueError(f"channel mismatch: input {c} vs kernel {c2}")
    out_h = _conv_output_size(h, kh, stride, padding)
    out_w = _conv_output_size(w, kw, stride, padding)

    cols = im2col(x.data, (kh, kw), stride, padding)  # (B, P, C*kh*kw)
    w_mat = weight.data.reshape(o, -1)  # (O, C*kh*kw)
    out_data = (cols @ w_mat.T).transpose(0, 2, 1).reshape(b, o, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(b, o, out_h * out_w).transpose(0, 2, 1)  # (B, P, O)
        if weight.requires_grad:
            gw = np.einsum("bpo,bpk->ok", grad_mat, cols)
            weight._accumulate(gw.reshape(o, c, kh, kw))
        if x.requires_grad:
            gcols = grad_mat @ w_mat  # (B, P, C*kh*kw)
            x._accumulate(col2im(gcols, (b, c, h, w), (kh, kw), stride, padding))

    return Tensor._make(out_data, (x, weight), backward)


def pad2d(x: Tensor, padding: int, value: float = 0.0) -> Tensor:
    """Constant-pad the two trailing spatial dims.

    Binary layers pad with -1 (a valid bipolar symbol) so that XNOR/popcount
    inference stays bit-exact at the borders.
    """
    x = as_tensor(x)
    if padding == 0:
        return x
    out_data = np.pad(
        x.data,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        constant_values=value,
    )

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad[:, :, padding:-padding, padding:-padding])

    return Tensor._make(out_data, (x,), backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T (+ bias)`` with weight of shape (out, in)."""
    out = as_tensor(x) @ as_tensor(weight).transpose()
    if bias is not None:
        out = out + bias
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted_data = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted_data).sum(axis=axis, keepdims=True))
    out_data = shifted_data - log_norm

    def backward(grad: np.ndarray) -> None:
        softmax_vals = np.exp(out_data)
        x._accumulate(grad - softmax_vals * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    return log_softmax(x, axis=axis).exp()
