"""Numpy training substrate: autograd, binary layers, optimizers.

This package replaces the PyTorch dependency of the original UniVSA work
with a self-contained reverse-mode autodiff engine sized for the paper's
partial-BNN training workloads.
"""

from . import functional
from .dropout import Dropout
from .quantize import QuantConv2d, QuantLinear, quantize_ste
from .pooling import AvgPool2d, MaxPool2d, avg_pool2d, max_pool2d
from .schedulers import CosineAnnealingLR, StepLR
from .data import batch_iterator, train_val_split
from .layers import (
    BatchNorm1d,
    BatchNorm2d,
    BinaryConv2d,
    BinaryLinear,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    SignActivation,
    Tanh,
)
from .loss import accuracy, cross_entropy
from .optim import SGD, Adam, Optimizer
from .serialize import load_state, save_state
from .tensor import Tensor, as_tensor, concat, is_grad_enabled, no_grad, stack

__all__ = [
    "functional",
    "Dropout",
    "QuantLinear",
    "QuantConv2d",
    "quantize_ste",
    "MaxPool2d",
    "AvgPool2d",
    "max_pool2d",
    "avg_pool2d",
    "StepLR",
    "CosineAnnealingLR",
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "BinaryLinear",
    "BinaryConv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "Tanh",
    "SignActivation",
    "SGD",
    "Adam",
    "Optimizer",
    "cross_entropy",
    "accuracy",
    "batch_iterator",
    "train_val_split",
    "save_state",
    "load_state",
]
