"""Command-line interface: train / evaluate / hw / search / profile / info.

    python -m repro info
    python -m repro train isolet --epochs 12 --out isolet.npz
    python -m repro evaluate isolet.npz isolet
    python -m repro hw har
    python -m repro search bci-iii-v --generations 3
    python -m repro profile bci-iii-v --json bci.profile.json
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import UniVSAArtifacts, UniVSAConfig
from repro.core.pipeline import run_benchmark
from repro.data import benchmark_names, get_benchmark, load
from repro.hw import hardware_report
from repro.utils.tables import render_kv, render_table
from repro.utils.trainloop import TrainConfig

__all__ = ["main", "build_parser"]


def _parse_config(text: str | None, benchmark) -> UniVSAConfig | None:
    if text is None:
        return None
    parts = tuple(int(p) for p in text.split(","))
    if len(parts) != 5:
        raise SystemExit("--config expects 5 integers: D_H,D_L,D_K,O,Theta")
    return UniVSAConfig.from_paper_tuple(parts, levels=benchmark.levels)


def _cmd_info(args: argparse.Namespace) -> int:
    rows = []
    for name in benchmark_names():
        benchmark = get_benchmark(name)
        rows.append(
            [
                name,
                benchmark.spec.domain,
                benchmark.n_classes,
                f"{benchmark.input_shape}",
                str(benchmark.paper_config),
            ]
        )
    print(render_table(
        ["benchmark", "domain", "classes", "(W, L)", "paper config"],
        rows,
        title="registered benchmarks (Table I)",
    ))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    benchmark = get_benchmark(args.benchmark)
    config = _parse_config(args.config, benchmark)
    run = run_benchmark(
        args.benchmark,
        config=config,
        train_config=TrainConfig(epochs=args.epochs, lr=args.lr, seed=args.seed),
        seed=args.seed,
    )
    print(render_kv(
        {
            "benchmark": run.name,
            "config": str(run.config.as_paper_tuple()),
            "train accuracy": f"{run.train_accuracy:.4f}",
            "test accuracy": f"{run.accuracy:.4f}",
            "memory": f"{run.memory_kb:.2f} KB",
        },
        title="training result",
    ))
    if args.out:
        run.artifacts.save(args.out)
        print(f"artifacts written to {args.out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    artifacts = UniVSAArtifacts.load(args.model)
    data = load(args.benchmark, seed=args.seed)
    predictions = artifacts.predict(data.x_test)
    accuracy = float((predictions == data.y_test).mean())
    print(render_kv(
        {
            "model": args.model,
            "benchmark": args.benchmark,
            "test samples": len(data.x_test),
            "accuracy": f"{accuracy:.4f}",
            "memory": f"{artifacts.memory_footprint_bits() / 8000:.2f} KB",
        },
        title="evaluation",
    ))
    return 0


def _cmd_hw(args: argparse.Namespace) -> int:
    benchmark = get_benchmark(args.benchmark)
    config = _parse_config(args.config, benchmark) or UniVSAConfig.from_paper_tuple(
        benchmark.paper_config, levels=benchmark.levels
    )
    report = hardware_report(
        config, benchmark.input_shape, benchmark.n_classes, name=args.benchmark
    )
    print(render_kv(
        {
            "config": str(config.as_paper_tuple()),
            "latency": f"{report.latency_ms:.3f} ms",
            "power": f"{report.power_w:.2f} W",
            "LUTs": report.luts,
            "BRAMs": report.brams,
            "DSPs": report.dsps,
            "throughput": f"{report.throughput_per_s / 1000:.2f}k/s",
            "memory": f"{report.memory_kb:.2f} KB",
            "bottleneck": report.bottleneck,
        },
        title=f"hardware report — {args.benchmark} (ZU3EG @250 MHz)",
    ))
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.search import (
        AccuracyProxy,
        CodesignObjective,
        EvolutionConfig,
        SearchSpace,
        evolutionary_search,
    )

    benchmark = get_benchmark(args.benchmark)
    data = load(args.benchmark, seed=args.seed)
    split = int(0.75 * len(data.x_train))
    proxy = AccuracyProxy(
        data.x_train[:split],
        data.y_train[:split],
        data.x_train[split:],
        data.y_train[split:],
        n_classes=benchmark.n_classes,
        epochs=args.proxy_epochs,
    )
    objective = CodesignObjective(proxy, benchmark.input_shape, benchmark.n_classes)
    result = evolutionary_search(
        objective,
        SearchSpace(),
        EvolutionConfig(
            population=args.population, generations=args.generations, seed=args.seed
        ),
    )
    parts = objective.breakdown(result.best_config)
    print(render_kv(
        {
            "best config": str(result.best_config.as_paper_tuple()),
            "paper config": str(benchmark.paper_config),
            "proxy accuracy": f"{parts['accuracy']:.4f}",
            "L_HW penalty": f"{parts['penalty']:.4f}",
            "objective": f"{parts['objective']:.4f}",
            "configs evaluated": len(result.evaluated),
        },
        title=f"co-design search — {args.benchmark}",
    ))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.obs import profile_benchmark

    report = profile_benchmark(
        args.benchmark,
        n_train=args.n_train,
        n_test=args.n_test,
        epochs=args.epochs,
        seed=args.seed,
        batch_size=args.batch_size,
        hop=args.hop,
    )
    print(report.render())
    json_path = args.json or f"{args.benchmark}-profile.json"
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nstage breakdown JSON written to {json_path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.reportgen import generate_report

    report = generate_report(args.results, output_path=args.out)
    print(f"report with {report.count('##')} sections -> {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="UniVSA reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list registered benchmarks").set_defaults(func=_cmd_info)

    train = sub.add_parser("train", help="train UniVSA on a benchmark")
    train.add_argument("benchmark")
    train.add_argument("--config", help="D_H,D_L,D_K,O,Theta (default: paper)")
    train.add_argument("--epochs", type=int, default=20)
    train.add_argument("--lr", type=float, default=0.008)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", help="write artifacts (.npz)")
    train.set_defaults(func=_cmd_train)

    evaluate = sub.add_parser("evaluate", help="evaluate saved artifacts")
    evaluate.add_argument("model")
    evaluate.add_argument("benchmark")
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.set_defaults(func=_cmd_evaluate)

    hw = sub.add_parser("hw", help="hardware report for a design point")
    hw.add_argument("benchmark")
    hw.add_argument("--config", help="D_H,D_L,D_K,O,Theta (default: paper)")
    hw.set_defaults(func=_cmd_hw)

    search = sub.add_parser("search", help="evolutionary co-design search")
    search.add_argument("benchmark")
    search.add_argument("--population", type=int, default=8)
    search.add_argument("--generations", type=int, default=4)
    search.add_argument("--proxy-epochs", type=int, default=3)
    search.add_argument("--seed", type=int, default=0)
    search.set_defaults(func=_cmd_search)

    profile = sub.add_parser(
        "profile", help="per-stage latency profile of the serving datapath"
    )
    profile.add_argument("benchmark")
    profile.add_argument("--n-train", type=int, default=120)
    profile.add_argument("--n-test", type=int, default=60)
    profile.add_argument("--epochs", type=int, default=2)
    profile.add_argument("--batch-size", type=int, default=16)
    profile.add_argument("--hop", type=int, default=None, help="streaming hop (frames)")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--json", help="stage-breakdown JSON path (default <benchmark>-profile.json)")
    profile.set_defaults(func=_cmd_profile)

    report = sub.add_parser(
        "report", help="assemble benchmarks/results into one markdown report"
    )
    report.add_argument("--results", default="benchmarks/results")
    report.add_argument("--out", default="benchmarks/results/REPORT.md")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
