"""Command-line interface: train / evaluate / hw / search / profile /
trace / bench-throughput / serve / serve-bench / top / chaos /
fault-sweep / plan / obs / info.

    python -m repro info
    python -m repro train isolet --epochs 12 --out isolet.npz
    python -m repro evaluate isolet.npz isolet
    python -m repro hw har
    python -m repro search bci-iii-v --generations 3 --workers 4
    python -m repro profile bci-iii-v --json bci.profile.json
    python -m repro trace bci-iii-v --samples 4 --jsonl bci.traces.jsonl
    python -m repro bench-throughput bci-iii-v --batch 256
    python -m repro serve bci-iii-v --port 8765
    python -m repro top --port 8765 --interval 2
    python -m repro serve-bench bci-iii-v --rates 1,5,15 --trace poisson
    python -m repro chaos bci-iii-v --spec raise:0.1,delay:5ms
    python -m repro fault-sweep bci-iii-v --fractions 0.001,0.01,0.1
    python -m repro plan run bci-iii-v --batch 256
    python -m repro obs compare --task serve --baseline benchmarks/baselines/serve.json
    python -m repro obs export --task serve --format prom

Training, search, and profile runs append one record to the run ledger
(``benchmarks/results/ledger.jsonl`` by default; ``--ledger PATH`` or
``REPRO_LEDGER`` overrides, ``--no-ledger`` opts out), which is what
``repro obs compare`` gates on.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.core import UniVSAArtifacts, UniVSAConfig
from repro.core.pipeline import run_benchmark
from repro.data import benchmark_names, get_benchmark, load
from repro.hw import hardware_report
from repro.utils.tables import render_kv, render_table
from repro.utils.trainloop import TrainConfig

__all__ = ["main", "build_parser"]


def _ledger_path(args: argparse.Namespace):
    """Resolve the run-ledger path (None = ledger disabled)."""
    if getattr(args, "no_ledger", False):
        return None
    explicit = getattr(args, "ledger", None)
    return explicit or os.environ.get("REPRO_LEDGER") or None


def _append_ledger(args: argparse.Namespace, kind: str, task: str, **kwargs) -> None:
    """Append one run record unless --no-ledger was passed."""
    if getattr(args, "no_ledger", False):
        return
    from repro.obs import record_run

    record = record_run(kind, task, ledger_path=_ledger_path(args), **kwargs)
    print(f"ledger: appended {record.run_id} (config {record.config_hash})")


def _add_ledger_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger",
        help="run-ledger JSONL path (default benchmarks/results/ledger.jsonl)",
    )
    parser.add_argument(
        "--no-ledger", action="store_true", help="skip the run-ledger append"
    )


def _parse_config(text: str | None, benchmark) -> UniVSAConfig | None:
    if text is None:
        return None
    parts = tuple(int(p) for p in text.split(","))
    if len(parts) != 5:
        raise SystemExit("--config expects 5 integers: D_H,D_L,D_K,O,Theta")
    return UniVSAConfig.from_paper_tuple(parts, levels=benchmark.levels)


def _cmd_info(args: argparse.Namespace) -> int:
    rows = []
    for name in benchmark_names():
        benchmark = get_benchmark(name)
        rows.append(
            [
                name,
                benchmark.spec.domain,
                benchmark.n_classes,
                f"{benchmark.input_shape}",
                str(benchmark.paper_config),
            ]
        )
    print(render_table(
        ["benchmark", "domain", "classes", "(W, L)", "paper config"],
        rows,
        title="registered benchmarks (Table I)",
    ))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.obs import MetricsRegistry, using_registry

    benchmark = get_benchmark(args.benchmark)
    config = _parse_config(args.config, benchmark)
    with using_registry(MetricsRegistry()) as registry:
        run = run_benchmark(
            args.benchmark,
            config=config,
            train_config=TrainConfig(epochs=args.epochs, lr=args.lr, seed=args.seed),
            seed=args.seed,
        )
    print(render_kv(
        {
            "benchmark": run.name,
            "config": str(run.config.as_paper_tuple()),
            "train accuracy": f"{run.train_accuracy:.4f}",
            "test accuracy": f"{run.accuracy:.4f}",
            "memory": f"{run.memory_kb:.2f} KB",
        },
        title="training result",
    ))
    if args.out:
        run.artifacts.save(args.out)
        print(f"artifacts written to {args.out}")
    _append_ledger(
        args,
        "train",
        run.name,
        config=run.config,
        metrics={
            "accuracy": run.accuracy,
            "train_accuracy": run.train_accuracy,
            "memory_kb": run.memory_kb,
        },
        registry=registry,
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    artifacts = UniVSAArtifacts.load(args.model)
    data = load(args.benchmark, seed=args.seed)
    predictions = artifacts.predict(data.x_test)
    accuracy = float((predictions == data.y_test).mean())
    print(render_kv(
        {
            "model": args.model,
            "benchmark": args.benchmark,
            "test samples": len(data.x_test),
            "accuracy": f"{accuracy:.4f}",
            "memory": f"{artifacts.memory_footprint_bits() / 8000:.2f} KB",
        },
        title="evaluation",
    ))
    return 0


def _cmd_hw(args: argparse.Namespace) -> int:
    benchmark = get_benchmark(args.benchmark)
    config = _parse_config(args.config, benchmark) or UniVSAConfig.from_paper_tuple(
        benchmark.paper_config, levels=benchmark.levels
    )
    report = hardware_report(
        config, benchmark.input_shape, benchmark.n_classes, name=args.benchmark
    )
    print(render_kv(
        {
            "config": str(config.as_paper_tuple()),
            "latency": f"{report.latency_ms:.3f} ms",
            "power": f"{report.power_w:.2f} W",
            "LUTs": report.luts,
            "BRAMs": report.brams,
            "DSPs": report.dsps,
            "throughput": f"{report.throughput_per_s / 1000:.2f}k/s",
            "memory": f"{report.memory_kb:.2f} KB",
            "bottleneck": report.bottleneck,
        },
        title=f"hardware report — {args.benchmark} (ZU3EG @250 MHz)",
    ))
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from time import perf_counter

    from repro.obs import MetricsRegistry, using_registry
    from repro.search import (
        AccuracyProxy,
        CodesignObjective,
        EvolutionConfig,
        SearchEngine,
        SearchSpace,
        evolutionary_search,
    )
    from repro.search.engine import DEFAULT_CACHE_PATH

    benchmark = get_benchmark(args.benchmark)
    data = load(args.benchmark, seed=args.seed)
    split = int(0.75 * len(data.x_train))
    proxy = AccuracyProxy(
        data.x_train[:split],
        data.y_train[:split],
        data.x_train[split:],
        data.y_train[split:],
        n_classes=benchmark.n_classes,
        epochs=args.proxy_epochs,
    )
    objective = CodesignObjective(proxy, benchmark.input_shape, benchmark.n_classes)
    space = SearchSpace()
    cache_path = None if args.no_cache else (args.cache or DEFAULT_CACHE_PATH)
    workers = args.workers if args.workers != 0 else None  # 0 = auto (cpu count)
    executor = "serial" if args.workers == 1 else args.executor
    start = perf_counter()
    with using_registry(MetricsRegistry()) as registry:
        with SearchEngine(
            objective,
            space,
            workers=workers,
            executor=executor,
            cache_path=cache_path,
        ) as engine:
            result = evolutionary_search(
                objective,
                space,
                EvolutionConfig(
                    population=args.population,
                    generations=args.generations,
                    seed=args.seed,
                ),
                engine=engine,
            )
            ledger_stats = engine.ledger_stats()
    wall = perf_counter() - start
    parts = objective.breakdown(result.best_config)
    stats = result.stats
    print(render_kv(
        {
            "best config": str(result.best_config.as_paper_tuple()),
            "paper config": str(benchmark.paper_config),
            "proxy accuracy": f"{parts['accuracy']:.4f}",
            "L_HW penalty": f"{parts['penalty']:.4f}",
            "objective": f"{parts['objective']:.4f}",
            "configs evaluated": len(result.evaluated),
            "fresh trains": stats.get("evaluations", 0),
            "cache hits / misses": f"{stats.get('cache_hits', 0)} / {stats.get('cache_misses', 0)}",
            "workers": f"{stats.get('workers', 1)} ({executor})",
            "search wall": f"{wall:.2f} s",
            "speedup (train/wall)": f"{stats.get('speedup', 0.0):.2f}x",
            "cache": "disabled" if cache_path is None else str(cache_path),
        },
        title=f"co-design search — {args.benchmark}",
    ))
    metrics = {
        "proxy_accuracy": parts["accuracy"],
        "penalty": parts["penalty"],
        "objective": parts["objective"],
        "configs_evaluated": float(len(result.evaluated)),
        "search_wall_s": wall,
        "workers": float(stats.get("workers", 1)),
    }
    metrics.update(ledger_stats)
    _append_ledger(
        args,
        "search",
        args.benchmark,
        config=result.best_config,
        metrics=metrics,
        registry=registry,
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.obs import profile_benchmark

    report = profile_benchmark(
        args.benchmark,
        n_train=args.n_train,
        n_test=args.n_test,
        epochs=args.epochs,
        seed=args.seed,
        batch_size=args.batch_size,
        hop=args.hop,
    )
    print(report.render())
    json_path = args.json or f"{args.benchmark}-profile.json"
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nstage breakdown JSON written to {json_path}")
    _append_ledger(
        args,
        "profile",
        args.benchmark,
        config=report.config,
        metrics={"accuracy": report.accuracy},
        registry=report.registry,
    )
    return 0


def _cmd_bench_throughput(args: argparse.Namespace) -> int:
    """Measure packed.classify samples/sec (seed/fast/fused/parallel/shm)."""
    import json
    from pathlib import Path

    from repro.obs import DEFAULT_LEDGER_PATH, Ledger, write_trajectories
    from repro.runtime import bench_throughput

    report = bench_throughput(
        args.benchmark,
        batch=args.batch,
        repeats=args.repeats,
        warmup=args.warmup,
        workers=args.workers,
        shard_size=args.shard_size,
        executor=args.executor,
        n_train=args.n_train,
        n_test=args.n_test,
        epochs=args.epochs,
        seed=args.seed,
        shm=False if args.no_shm else None,
        plan=args.plan,
    )
    print(report.render())
    json_path = args.json or f"{args.benchmark}-throughput.json"
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nthroughput JSON written to {json_path}")
    _append_ledger(
        args,
        "bench",
        "throughput",
        config=report.config,
        metrics=report.ledger_metrics(),
        registry=report.registry,
    )
    if not getattr(args, "no_ledger", False):
        ledger = Ledger(_ledger_path(args) or DEFAULT_LEDGER_PATH)
        for path in write_trajectories(
            ledger, Path(ledger.path).parent, task="throughput"
        ):
            print(f"trajectory written to {path}")
    return 0


def _cmd_verify_artifacts(args: argparse.Namespace) -> int:
    """Verify a saved artifact archive against its embedded manifest."""
    import json

    from repro.runtime.integrity import ArtifactCorruptionError, verify_archive

    try:
        report = verify_archive(args.model)
    except FileNotFoundError:
        print(f"error: no such archive: {args.model}", file=sys.stderr)
        return 1
    except ArtifactCorruptionError as exc:
        print(f"CORRUPT: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    rows = [
        [name, entry["dtype"], "x".join(str(d) for d in entry["shape"]) or "scalar",
         entry["sha256"][:16]]
        for name, entry in sorted(report["arrays"].items())
    ]
    print(render_kv(
        {
            "archive": report["path"],
            "format version": report["format_version"],
            "config hash": report["config_hash"] or "-",
            "arrays": len(rows),
        },
        title="artifact integrity — all digests verified",
    ))
    print()
    print(render_table(["array", "dtype", "shape", "sha256[:16]"], rows))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the micro-batching TCP serving daemon until interrupted."""
    import asyncio

    from repro.core.inference import BitPackedUniVSA
    from repro.obs import MetricsRegistry, using_registry
    from repro.obs.slo import SLO
    from repro.runtime import (
        IntegrityScrubber,
        MicroBatchServer,
        NetPolicy,
        ResilientBatchRunner,
        ServePolicy,
        serve_tcp,
    )

    if args.model:
        artifacts = UniVSAArtifacts.load(args.model)
        name = args.model
    else:
        benchmark = get_benchmark(args.benchmark)
        run = run_benchmark(
            args.benchmark,
            config=_parse_config(args.config, benchmark),
            train_config=TrainConfig(
                epochs=args.epochs,
                lr=0.008,
                seed=args.seed,
                balance_classes=benchmark.spec.class_balance is not None,
            ),
            n_train=args.n_train,
            n_test=args.n_test,
            seed=args.seed,
        )
        artifacts = run.artifacts
        name = args.benchmark
    engine = BitPackedUniVSA(artifacts, mode="fast")
    policy = ServePolicy(
        max_batch=args.max_batch,
        deadline_ms=args.deadline_ms,
        flush_margin_ms=args.flush_margin_ms,
        max_queue=args.max_queue,
        max_inflight=(
            args.max_inflight
            if args.max_inflight is not None
            else ServePolicy.from_env().max_inflight
        ),
    )
    # REPRO_SLO_* provides the objective; explicit flags win over env.
    slo = SLO.from_env()
    import dataclasses

    if args.slo_p99_ms is not None:
        slo = dataclasses.replace(slo, p99_ms=args.slo_p99_ms)
    if args.slo_availability is not None:
        slo = dataclasses.replace(slo, availability=args.slo_availability)
    # REPRO_SERVE_MAX_LINE / _READ_TIMEOUT_S / _MAX_CONNS provide the
    # front-end limits; explicit flags win over env.
    net = NetPolicy.from_env()
    if args.max_line_bytes is not None:
        net = dataclasses.replace(net, max_line_bytes=args.max_line_bytes)
    if args.read_timeout_s is not None:
        net = dataclasses.replace(net, read_timeout_s=args.read_timeout_s)
    if args.max_connections is not None:
        net = dataclasses.replace(net, max_connections=args.max_connections)

    async def daemon() -> None:
        with ResilientBatchRunner(
            engine,
            shard_size=args.shard_size,
            workers=args.workers,
            executor=args.executor,
        ) as runner:
            # With a saved model, repairs reload the verified archive;
            # a freshly trained model repairs from a pristine in-memory
            # copy retained here.
            scrubber = (
                None
                if args.no_scrub
                else IntegrityScrubber(
                    runner, source=args.model if args.model else None
                )
            )
            async with MicroBatchServer(
                runner,
                policy,
                slo=slo,
                scrubber=scrubber,
                scrub_interval_s=args.scrub_interval_s,
            ) as server:
                tcp = await serve_tcp(server, args.host, args.port, net=net)
                host, port = tcp.sockets[0].getsockname()[:2]
                print(
                    f"serving {name} on {host}:{port} "
                    f"(batch<={policy.max_batch}, deadline {policy.deadline_ms:g} ms, "
                    f"queue<={policy.max_queue}, "
                    f"inflight<={policy.max_inflight}, "
                    f"slo p99<={slo.p99_ms:g} ms @ {slo.availability:g}, "
                    f"scrub every {server.scrub_interval_s:g} s"
                    f"{' off' if scrubber is None else ''}) "
                    "— Ctrl-C drains and exits"
                )
                sys.stdout.flush()
                try:
                    await asyncio.Event().wait()
                finally:
                    tcp.close()
                    await tcp.wait_closed()

    registry = MetricsRegistry()
    with using_registry(registry):
        try:
            asyncio.run(daemon())
        except KeyboardInterrupt:
            print("\ninterrupted — queue drained, daemon stopped")
    # One session record at shutdown: the serve.*/serve.net.*/integrity.*
    # counters of this daemon's lifetime, so chaos recoveries and
    # front-end abuse are visible in the ledger after the fact.
    _append_ledger(
        args,
        "serve",
        "serve-daemon",
        config=artifacts.config,
        metrics={},
        registry=registry,
    )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """Open-loop latency/goodput curve of the micro-batching serve path."""
    import json
    from pathlib import Path

    from repro.obs import DEFAULT_LEDGER_PATH, Ledger, write_trajectories
    from repro.runtime import ServePolicy, bench_serve

    policy = ServePolicy(
        max_batch=args.max_batch,
        deadline_ms=args.deadline_ms,
        flush_margin_ms=args.flush_margin_ms,
        max_queue=args.max_queue,
        max_inflight=(
            args.max_inflight
            if args.max_inflight is not None
            else ServePolicy.from_env().max_inflight
        ),
    )
    rates = tuple(float(r) for r in args.rates.split(","))
    absolute = (
        tuple(float(r) for r in args.rate.split(",")) if args.rate else None
    )
    report = bench_serve(
        args.benchmark,
        rates=rates,
        absolute_rates=absolute,
        duration_s=args.duration,
        trace=args.trace,
        clients=args.clients,
        policy=policy,
        workers=args.workers,
        shard_size=args.shard_size,
        executor=args.executor,
        config=_parse_config(args.config, get_benchmark(args.benchmark)),
        n_train=args.n_train,
        n_test=args.n_test,
        epochs=args.epochs,
        seed=args.seed,
    )
    print(report.render())
    json_path = args.json or f"{args.benchmark}-serve.json"
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nserve-bench JSON written to {json_path}")
    _append_ledger(
        args,
        "bench",
        "serve",
        config=report.config,
        metrics=report.ledger_metrics(),
        registry=report.registry,
    )
    if not getattr(args, "no_ledger", False):
        ledger = Ledger(_ledger_path(args) or DEFAULT_LEDGER_PATH)
        for path in write_trajectories(ledger, Path(ledger.path).parent, task="serve"):
            print(f"trajectory written to {path}")
    if report.mismatches:
        print(
            f"ERROR: {report.mismatches} served answers diverged from "
            "inline inference",
            file=sys.stderr,
        )
        return 1
    return 0


def _admin_request(host: str, port: int, payload: dict, timeout: float = 5.0) -> dict:
    """One NDJSON admin round-trip against a running serve daemon."""
    import json
    import socket

    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    return json.loads(b"".join(chunks))


def _render_top(state: dict) -> str:
    """One `repro top` frame from an admin ``metrics`` snapshot."""
    from repro.obs.export import render_stage_table

    counters = state.get("counters", {})
    slo = state.get("slo", {})
    objective = slo.get("objective", {})
    header = render_kv(
        {
            "queue depth": state.get("queue_depth", 0),
            "in flight": state.get("inflight", 0),
            "draining": state.get("draining", False),
            "requests": counters.get("serve.requests", 0),
            "answered / failed": (
                f"{counters.get('serve.answered', 0)} / "
                f"{counters.get('serve.failed', 0)}"
            ),
            "rejected / quarantined": (
                f"{counters.get('serve.rejected', 0)} / "
                f"{counters.get('serve.quarantined', 0)}"
            ),
            "flush full/deadline/drain": (
                f"{counters.get('serve.flush.full', 0)}/"
                f"{counters.get('serve.flush.deadline', 0)}/"
                f"{counters.get('serve.flush.drain', 0)}"
            ),
            "slo objective": (
                f"p99<={objective.get('p99_ms', 0):g} ms @ "
                f"{objective.get('availability', 0):g}"
            ),
            "budget remaining": f"{slo.get('budget_remaining', 1.0):.3f}",
            "burn fast / slow": (
                f"{slo.get('burn_rate_fast', 0.0):.2f} / "
                f"{slo.get('burn_rate_slow', 0.0):.2f}"
            ),
        },
        title="repro top — live serve daemon",
    )
    stages = state.get("stages", {})
    shown = {
        name: entry
        for name, entry in stages.items()
        if name.startswith(("serve.", "packed.", "resilience.", "batch."))
        and entry.get("count", 0)
    }
    if not shown:
        return header
    return header + "\n\n" + render_stage_table(
        shown, title="stage latency (worker-merged)"
    )


def _cmd_top(args: argparse.Namespace) -> int:
    """Refresh-loop terminal view over the serve daemon's admin endpoint."""
    import time

    try:
        state = _admin_request(args.host, args.port, {"op": "metrics"})
    except OSError as exc:
        print(f"error: cannot reach {args.host}:{args.port} ({exc})", file=sys.stderr)
        return 2
    if args.once:
        print(_render_top(state))
        return 0
    try:
        while True:
            # ANSI clear + home keeps the frame in place like top(1).
            sys.stdout.write("\x1b[2J\x1b[H")
            print(_render_top(state))
            print(f"\nrefreshing every {args.interval:g} s — Ctrl-C exits")
            sys.stdout.flush()
            time.sleep(args.interval)
            state = _admin_request(args.host, args.port, {"op": "metrics"})
    except KeyboardInterrupt:
        print()
    except OSError as exc:
        print(f"error: daemon went away ({exc})", file=sys.stderr)
        return 2
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run one resilient batch under an injected-fault spec and report."""
    from repro.obs import MetricsRegistry, using_registry
    from repro.runtime import (
        ChaosSpec,
        CircuitOpenError,
        ResilientBatchRunner,
        RetryPolicy,
    )
    from repro.core.inference import BitPackedUniVSA

    chaos = (
        ChaosSpec.parse(args.spec, seed=args.chaos_seed)
        if args.spec
        else ChaosSpec.from_env()
    )
    if chaos.has_crash and args.executor != "process":
        # Fail before the (expensive) training run: the runner would
        # reject this spec/executor combination anyway.
        print(
            "error: chaos 'crash' hard-kills pool workers and requires "
            "--executor process",
            file=sys.stderr,
        )
        return 2
    benchmark = get_benchmark(args.benchmark)
    run = run_benchmark(
        args.benchmark,
        train_config=TrainConfig(
            epochs=args.epochs,
            lr=0.008,
            seed=args.seed,
            balance_classes=benchmark.spec.class_balance is not None,
        ),
        n_train=args.n_train,
        n_test=args.n_test,
        seed=args.seed,
    )
    reps = -(-args.batch // max(1, len(run.data.x_test)))
    levels = np.concatenate([run.data.x_test] * reps)[: args.batch]
    labels = np.concatenate([run.data.y_test] * reps)[: args.batch]
    policy = RetryPolicy.from_env()
    if args.retries is not None:
        import dataclasses

        policy = dataclasses.replace(policy, max_retries=max(0, args.retries))
    engine = BitPackedUniVSA(run.artifacts, mode="fast")
    breaker_open = False
    with using_registry(MetricsRegistry()) as registry:
        with ResilientBatchRunner(
            engine,
            shard_size=args.shard_size,
            workers=args.workers,
            executor=args.executor,
            policy=policy,
            chaos=chaos,
        ) as runner:
            try:
                result = runner.run(levels)
                report = result.report
                predictions = result.predictions
            except CircuitOpenError as exc:
                report = exc.report
                predictions = None
                breaker_open = True
    print(report.render())
    metrics = {
        "batch": float(args.batch),
        "retries": float(report.retries),
        "fallbacks": float(report.fallbacks),
        "quarantined": float(len(report.quarantined)),
        "failed_samples": float(len(report.failed_samples)),
        "breaker_open": float(report.breaker_open),
    }
    if predictions is not None:
        # Accuracy and seed-engine agreement over the samples that were
        # actually served (quarantined/failed rows carry the sentinel).
        included = np.ones(args.batch, dtype=bool)
        included[report.excluded] = False
        if included.any():
            reference = engine.sibling("legacy").scores(levels).argmax(axis=1)
            metrics["accuracy"] = float(
                (predictions[included] == labels[included]).mean()
            )
            metrics["seed_mismatches"] = float(
                (predictions[included] != reference[included]).sum()
            )
            print(
                f"\nserved {int(included.sum())}/{args.batch} samples · "
                f"accuracy {metrics['accuracy']:.4f} · "
                f"seed mismatches {int(metrics['seed_mismatches'])}"
            )
    _append_ledger(
        args,
        "chaos",
        "chaos",
        config=run.config,
        metrics=metrics,
        registry=registry,
    )
    return 1 if breaker_open else 0


def _cmd_fault_sweep(args: argparse.Namespace) -> int:
    """Accuracy vs memory flip rate, served through the resilient runtime."""
    import json
    from pathlib import Path

    from repro.hw.faults import fault_sweep
    from repro.obs import MetricsRegistry, using_registry
    from repro.runtime import serving_predict_fn

    benchmark = get_benchmark(args.benchmark)
    run = run_benchmark(
        args.benchmark,
        train_config=TrainConfig(
            epochs=args.epochs,
            lr=0.008,
            seed=args.seed,
            balance_classes=benchmark.spec.class_balance is not None,
        ),
        n_train=args.n_train,
        n_test=args.n_test,
        seed=args.seed,
    )
    fractions = tuple(float(f) for f in args.fractions.split(","))
    groups = tuple(args.groups.split(",")) if args.groups else None
    kwargs = {"groups": groups} if groups else {}
    if args.reference:
        predict_fn = None  # artifact-level integer reference path
    else:
        predict_fn = serving_predict_fn(
            executor=args.executor,
            workers=args.workers,
            shard_size=args.shard_size,
        )
    with using_registry(MetricsRegistry()) as registry:
        report = fault_sweep(
            run.artifacts,
            run.data.x_test,
            run.data.y_test,
            flip_fractions=fractions,
            seed=args.seed,
            predict_fn=predict_fn,
            repair_after=args.repair_after,
            **kwargs,
        )
    rows = [
        [f"{f:g}", f"{a:.4f}", f"{d:+.4f}"]
        for f, a, d in zip(
            report.flip_fractions, report.accuracies, report.degradation()
        )
    ]
    print(render_kv(
        {
            "benchmark": args.benchmark,
            "path": "reference" if args.reference else "resilient serving",
            "groups": args.groups or "all",
            "baseline accuracy": f"{report.baseline_accuracy:.4f}",
        },
        title="fault sweep — bit flips in stored memories",
    ))
    print()
    print(render_table(["flip fraction", "accuracy", "drop"], rows, title="sweep"))
    if report.repaired_accuracies is not None:
        recovery_rows = [
            [f"{f:g}", f"{deg:.4f}", "yes" if det else "no", f"{rep:.4f}", f"{rec:+.4f}"]
            for f, deg, det, rep, rec in zip(
                report.flip_fractions,
                report.resident_accuracies,
                report.scrub_detected,
                report.repaired_accuracies,
                report.recovery(),
            )
        ]
        print()
        print(render_table(
            ["flip fraction", "degraded", "detected", "repaired", "recovered"],
            recovery_rows,
            title="recovery — scrub + hot repair of resident engine memory",
        ))
    payload = report.as_dict()
    payload.update(
        benchmark=args.benchmark,
        groups=list(groups) if groups else "all",
        serving_path="reference" if args.reference else "resilient",
        seed=args.seed,
    )
    json_path = Path(
        args.json or f"benchmarks/results/{args.benchmark}-fault-sweep.json"
    )
    json_path.parent.mkdir(parents=True, exist_ok=True)
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nfault-sweep JSON written to {json_path}")
    metrics = {"accuracy": report.baseline_accuracy}
    for fraction, accuracy in zip(report.flip_fractions, report.accuracies):
        metrics[f"accuracy_flip_{fraction:g}"] = accuracy
    metrics["max_degradation"] = max(report.degradation(), default=0.0)
    if report.repaired_accuracies is not None:
        for fraction, accuracy in zip(report.flip_fractions, report.repaired_accuracies):
            metrics[f"repaired_accuracy_flip_{fraction:g}"] = accuracy
        metrics["min_repaired_accuracy"] = min(
            report.repaired_accuracies, default=report.baseline_accuracy
        )
    _append_ledger(
        args,
        "bench",
        "fault-sweep",
        config=run.config,
        metrics=metrics,
        registry=registry,
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Trace end-to-end classifications and render the span trees."""
    import numpy as np

    from repro.core.inference import BitPackedUniVSA
    from repro.hw.arch import HardwareSpec
    from repro.hw.simulator import HardwareSimulator
    from repro.obs import (
        MetricsRegistry,
        Tracer,
        render_trace_tree,
        using_registry,
        using_tracer,
        write_traces_jsonl,
    )
    from repro.runtime.stream import StreamingClassifier

    benchmark = get_benchmark(args.benchmark)
    train_config = TrainConfig(
        epochs=args.epochs,
        lr=0.008,
        seed=args.seed,
        balance_classes=benchmark.spec.class_balance is not None,
    )
    run = run_benchmark(
        args.benchmark,
        train_config=train_config,
        n_train=args.n_train,
        n_test=args.n_test,
        seed=args.seed,
    )
    engine = BitPackedUniVSA(run.artifacts)
    n = max(1, min(args.samples, len(run.data.x_test)))
    tracer = Tracer(sample_rate=args.sample_rate)
    with using_tracer(tracer), using_registry(MetricsRegistry()):
        # Packed datapath: one trace per classified sample.
        for i in range(n):
            engine.scores(run.data.x_test[i : i + 1])
        # Hardware simulator: same samples, spans annotated with the
        # cycle model's predictions (modeled vs measured side by side).
        spec = HardwareSpec(
            config=run.artifacts.config,
            input_shape=run.artifacts.input_shape,
            n_classes=run.artifacts.n_classes,
        )
        HardwareSimulator(run.artifacts, spec).run(run.data.x_test[:n])
        # Streaming runtime: push enough signal for one decision.
        stream = StreamingClassifier(run.artifacts, run.data.quantizer)
        rng = np.random.default_rng(args.seed)
        stream.push(
            rng.uniform(
                run.data.quantizer.low,
                run.data.quantizer.high,
                size=stream.window_span,
            )
        )
    traces = tracer.to_dicts()
    if not traces:
        print("no traces captured (sampling rate too low?)")
        return 1
    # Render the slowest trace of each root kind.
    by_root: dict[str, dict] = {}
    for trace in traces:
        best = by_root.get(trace["root"])
        if best is None or trace["duration_s"] > best["duration_s"]:
            by_root[trace["root"]] = trace
    for root in sorted(by_root):
        print(render_trace_tree(by_root[root]))
        print()
    from repro.runtime.batch import resolve_workers
    from repro.vsa.kernels import kernel_info

    info = kernel_info()
    print(
        f"kernels: {info['set']} (pack={info['pack']}, "
        f"popcount={info['popcount']}, numpy {info['numpy']}) · "
        f"workers: {resolve_workers()}"
    )
    print(
        f"{len(traces)} trace(s) captured "
        f"({tracer.dropped_roots} dropped by sampling)"
    )
    if args.jsonl:
        count = write_traces_jsonl(traces, args.jsonl)
        print(f"{count} trace(s) written to {args.jsonl}")
    return 0


def _cmd_obs_compare(args: argparse.Namespace) -> int:
    """Diff the latest ledger run against a baseline; nonzero on regression."""
    import json
    from pathlib import Path

    from repro.obs import (
        DEFAULT_LEDGER_PATH,
        Ledger,
        RunRecord,
        compare_records,
        write_trajectories,
    )

    ledger = Ledger(args.ledger or os.environ.get("REPRO_LEDGER") or DEFAULT_LEDGER_PATH)
    current = ledger.latest(task=args.task, kind=args.kind)
    if current is None:
        print(f"no ledger records match (ledger={ledger.path}, task={args.task})")
        return 2
    out_dir = Path(args.trajectories) if args.trajectories else ledger.path.parent
    written = write_trajectories(ledger, out_dir)
    for path in written:
        print(f"trajectory written to {path}")
    if args.baseline == "prev":
        baseline = ledger.latest(task=current.task, kind=args.kind, offset=1)
        if baseline is None:
            print(
                f"no previous run for task {current.task!r} — "
                "recorded baseline only, nothing to compare"
            )
            return 0
    else:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = RunRecord.from_dict(json.load(handle))
    report = compare_records(
        current,
        baseline,
        max_accuracy_drop=args.max_accuracy_drop,
        max_p95_regression=args.max_p95_regression,
        max_throughput_drop=args.max_throughput_drop,
        max_budget_burn=args.max_budget_burn,
    )
    print(report.render())
    if report.regressed:
        for check in report.failures():
            print(
                f"REGRESSION: {check.name} ({check.kind}) "
                f"current={check.current:.6g} limit={check.limit:.6g} "
                f"baseline={check.baseline:.6g}"
            )
        return 1
    print("no regressions")
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    """Dump the latest ledger record as JSON or Prometheus text."""
    import json

    from repro.obs import (
        DEFAULT_LEDGER_PATH,
        Ledger,
        record_to_prometheus,
    )

    ledger = Ledger(
        args.ledger or os.environ.get("REPRO_LEDGER") or DEFAULT_LEDGER_PATH
    )
    record = ledger.latest(task=args.task, kind=args.kind)
    if record is None:
        print(
            f"no ledger records match (ledger={ledger.path}, task={args.task})",
            file=sys.stderr,
        )
        return 2
    if args.format == "prom":
        text = record_to_prometheus(record)
    else:
        text = json.dumps(record.as_dict(), indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"{args.format} export of {record.run_id} written to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    """Run / show / clear the execution-planner calibration cache."""
    import json

    from repro.runtime.plan import (
        DEFAULT_PLAN_CACHE,
        ExecutionPlan,
        calibrate,
        clear_plan_cache,
        load_plan_cache,
        render_plan,
        store_plan,
    )

    cache = getattr(args, "cache", None) or None
    if args.plan_command == "show":
        cache_map = load_plan_cache(cache)
        if args.json:
            print(json.dumps(cache_map, indent=2, sort_keys=True))
            return 0
        if not cache_map:
            print(f"plan cache is empty ({cache or DEFAULT_PLAN_CACHE})")
            return 0
        for key in sorted(cache_map):
            print(render_plan(ExecutionPlan.from_dict(cache_map[key])))
            print()
        return 0
    if args.plan_command == "clear":
        removed = clear_plan_cache(cache)
        print(f"cleared {removed} plan(s) from {cache or DEFAULT_PLAN_CACHE}")
        return 0

    # plan run: train a small model, sweep the knobs, persist the winner.
    from repro.core.inference import BitPackedUniVSA
    from repro.obs import MetricsRegistry, using_registry

    benchmark = get_benchmark(args.benchmark)
    run = run_benchmark(
        args.benchmark,
        train_config=TrainConfig(
            epochs=args.epochs,
            lr=0.008,
            seed=args.seed,
            balance_classes=benchmark.spec.class_balance is not None,
        ),
        n_train=args.n_train,
        n_test=args.n_test,
        seed=args.seed,
    )
    engine = BitPackedUniVSA(run.artifacts, mode="fused")
    with using_registry(MetricsRegistry()) as registry:
        plan = calibrate(engine, batch=args.batch, repeats=args.repeats)
    path = store_plan(plan, cache)
    if args.json:
        print(json.dumps(plan.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_plan(plan))
    print(f"\nplan {plan.key} stored in {path} (REPRO_PLAN=auto picks it up)")
    # One task="plan" record per calibration keeps plan drift auditable
    # across machines via `repro obs compare --task plan`.
    _append_ledger(
        args,
        "plan",
        "plan",
        config=run.config,
        metrics=plan.ledger_metrics(),
        registry=registry,
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.reportgen import generate_report

    report = generate_report(args.results, output_path=args.out)
    print(f"report with {report.count('##')} sections -> {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="UniVSA reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list registered benchmarks").set_defaults(func=_cmd_info)

    train = sub.add_parser("train", help="train UniVSA on a benchmark")
    train.add_argument("benchmark")
    train.add_argument("--config", help="D_H,D_L,D_K,O,Theta (default: paper)")
    train.add_argument("--epochs", type=int, default=20)
    train.add_argument("--lr", type=float, default=0.008)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", help="write artifacts (.npz)")
    _add_ledger_flags(train)
    train.set_defaults(func=_cmd_train)

    evaluate = sub.add_parser("evaluate", help="evaluate saved artifacts")
    evaluate.add_argument("model")
    evaluate.add_argument("benchmark")
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.set_defaults(func=_cmd_evaluate)

    hw = sub.add_parser("hw", help="hardware report for a design point")
    hw.add_argument("benchmark")
    hw.add_argument("--config", help="D_H,D_L,D_K,O,Theta (default: paper)")
    hw.set_defaults(func=_cmd_hw)

    search = sub.add_parser(
        "search",
        help="evolutionary co-design search (batched parallel evaluation "
        "with a persistent candidate cache)",
    )
    search.add_argument("benchmark")
    search.add_argument("--population", type=int, default=8)
    search.add_argument("--generations", type=int, default=4)
    search.add_argument("--proxy-epochs", type=int, default=3)
    search.add_argument("--seed", type=int, default=0)
    search.add_argument(
        "--workers",
        type=int,
        default=1,
        help="candidate evaluators per generation (1 = serial, 0 = cpu count)",
    )
    search.add_argument(
        "--executor", choices=("process", "thread"), default="process",
        help="worker pool kind for --workers > 1 (default process)",
    )
    search.add_argument(
        "--cache",
        help="candidate-evaluation cache JSONL "
        "(default benchmarks/results/search_cache.jsonl)",
    )
    search.add_argument(
        "--no-cache", action="store_true", help="disable the persistent cache"
    )
    _add_ledger_flags(search)
    search.set_defaults(func=_cmd_search)

    profile = sub.add_parser(
        "profile", help="per-stage latency profile of the serving datapath"
    )
    profile.add_argument("benchmark")
    profile.add_argument("--n-train", type=int, default=120)
    profile.add_argument("--n-test", type=int, default=60)
    profile.add_argument("--epochs", type=int, default=2)
    profile.add_argument("--batch-size", type=int, default=16)
    profile.add_argument("--hop", type=int, default=None, help="streaming hop (frames)")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--json", help="stage-breakdown JSON path (default <benchmark>-profile.json)")
    _add_ledger_flags(profile)
    profile.set_defaults(func=_cmd_profile)

    bench = sub.add_parser(
        "bench-throughput",
        help="samples/sec of packed.classify: seed vs fast vs fused vs "
        "worker pool vs zero-copy shm pool",
    )
    bench.add_argument("benchmark")
    bench.add_argument("--batch", type=int, default=256, help="workload batch size")
    bench.add_argument("--repeats", type=int, default=3, help="timed runs per engine")
    bench.add_argument("--warmup", type=int, default=1, help="untimed warmup runs")
    bench.add_argument("--workers", type=int, default=None, help="pool size (default: cpu count)")
    bench.add_argument("--shard-size", type=int, default=None, help="samples per shard")
    bench.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="worker pool kind (default thread)",
    )
    bench.add_argument(
        "--plan", default=None,
        help="execution planner: 'auto' (calibrate or reuse the cache), "
        "'off', or a plan JSON path (default: REPRO_PLAN); when active a "
        "sixth 'planned' stage runs the calibrated configuration",
    )
    bench.add_argument(
        "--no-shm", action="store_true",
        help="pickle shards to process workers instead of the zero-copy "
        "shared-memory handoff (the shm engine stage still runs, degraded)",
    )
    bench.add_argument("--n-train", type=int, default=120)
    bench.add_argument("--n-test", type=int, default=60)
    bench.add_argument("--epochs", type=int, default=2)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--json", help="report JSON path (default <benchmark>-throughput.json)")
    _add_ledger_flags(bench)
    bench.set_defaults(func=_cmd_bench_throughput)

    def _add_serve_policy_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--max-batch", type=int, default=64, help="samples per micro-batch"
        )
        p.add_argument(
            "--deadline-ms", type=float, default=50.0,
            help="per-request latency budget (default 50 ms)",
        )
        p.add_argument(
            "--flush-margin-ms", type=float, default=5.0,
            help="budget headroom reserved for batch execution (default 5 ms)",
        )
        p.add_argument(
            "--max-queue", type=int, default=1024,
            help="queued samples before load shedding (default 1024)",
        )
        p.add_argument(
            "--max-inflight", type=int, default=None,
            help="micro-batches executing concurrently (pipeline depth; "
            "default: REPRO_SERVE_INFLIGHT or 2, 1 = fully serialized)",
        )
        p.add_argument("--workers", type=int, default=None, help="runner pool size")
        p.add_argument(
            "--shard-size", type=int, default=None, help="samples per runner shard"
        )
        p.add_argument(
            "--executor", choices=("thread", "process"), default="thread",
            help="runner pool kind (default thread)",
        )
        p.add_argument(
            "--config", help="D_H,D_L,D_K,O,Theta model override (default: paper)"
        )
        p.add_argument("--n-train", type=int, default=120)
        p.add_argument("--n-test", type=int, default=60)
        p.add_argument("--epochs", type=int, default=2)
        p.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve",
        help="micro-batching TCP serving daemon (newline-delimited JSON; "
        "Ctrl-C drains the queue before exiting)",
    )
    serve.add_argument("benchmark", nargs="?", default="bci-iii-v")
    serve.add_argument("--model", help="serve saved artifacts (.npz) instead of training")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765, help="0 picks a free port")
    serve.add_argument(
        "--slo-p99-ms", type=float, default=None,
        help="SLO p99 latency target in ms (default: REPRO_SLO_P99_MS or 50)",
    )
    serve.add_argument(
        "--slo-availability", type=float, default=None,
        help="SLO availability objective, e.g. 0.999 "
        "(default: REPRO_SLO_AVAILABILITY)",
    )
    serve.add_argument(
        "--scrub-interval-s", type=float, default=None,
        help="seconds between memory-scrub passes "
        "(default: REPRO_SCRUB_INTERVAL_S or 5; <=0 disables the loop)",
    )
    serve.add_argument(
        "--no-scrub", action="store_true",
        help="disable the integrity scrubber entirely",
    )
    serve.add_argument(
        "--max-line-bytes", type=int, default=None,
        help="largest accepted request line (default: REPRO_SERVE_MAX_LINE or 1 MiB)",
    )
    serve.add_argument(
        "--read-timeout-s", type=float, default=None,
        help="per-connection read timeout in seconds "
        "(default: REPRO_SERVE_READ_TIMEOUT_S or 30; 0 disables)",
    )
    serve.add_argument(
        "--max-connections", type=int, default=None,
        help="concurrent connection cap (default: REPRO_SERVE_MAX_CONNS or 128)",
    )
    _add_serve_policy_flags(serve)
    _add_ledger_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    verify = sub.add_parser(
        "verify-artifacts",
        help="verify a saved model archive against its embedded integrity "
        "manifest (exit 1 on any digest mismatch)",
    )
    verify.add_argument("model", help="path to a saved artifact archive (.npz)")
    verify.add_argument(
        "--json", action="store_true", help="print the verification report as JSON"
    )
    verify.set_defaults(func=_cmd_verify_artifacts)

    top = sub.add_parser(
        "top",
        help="live terminal view over a serve daemon's admin endpoint "
        "(queue depth, flush counters, merged stage p99s, SLO budget)",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=8765)
    top.add_argument(
        "--interval", type=float, default=2.0, help="refresh period in seconds"
    )
    top.add_argument(
        "--once", action="store_true", help="print one frame and exit"
    )
    top.set_defaults(func=_cmd_top)

    serve_bench = sub.add_parser(
        "serve-bench",
        help="open-loop load generator against the micro-batching server: "
        "p50/p99/p99.9 latency and goodput vs offered load, verified "
        "bit-identical to inline inference",
    )
    serve_bench.add_argument("benchmark")
    serve_bench.add_argument(
        "--rates", default="1,5,15",
        help="offered loads as multiples of inline single-sample throughput "
        "(default 1,5,15)",
    )
    serve_bench.add_argument(
        "--rate", help="absolute offered loads in requests/s (overrides --rates)"
    )
    serve_bench.add_argument(
        "--duration", type=float, default=1.5, help="seconds per load point"
    )
    serve_bench.add_argument(
        "--trace", choices=("poisson", "bursty"), default="poisson",
        help="arrival process (default poisson)",
    )
    serve_bench.add_argument(
        "--clients", type=int, default=8, help="concurrent client streams"
    )
    serve_bench.add_argument(
        "--json", help="report JSON path (default <benchmark>-serve.json)"
    )
    _add_serve_policy_flags(serve_bench)
    _add_ledger_flags(serve_bench)
    serve_bench.set_defaults(func=_cmd_serve_bench)

    chaos = sub.add_parser(
        "chaos",
        help="run one resilient batch under an injected-fault spec "
        "(raise:P,delay:DUR,bitflip:RATE,crash:P) and print the shard report",
    )
    chaos.add_argument("benchmark")
    chaos.add_argument(
        "--spec",
        help="chaos spec, e.g. 'raise:0.1,delay:5ms,bitflip:1e-4' "
        "(default: REPRO_CHAOS)",
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=0, help="fault-injection RNG seed"
    )
    chaos.add_argument("--batch", type=int, default=256, help="workload batch size")
    chaos.add_argument("--retries", type=int, default=None, help="max retries per shard")
    chaos.add_argument("--workers", type=int, default=None, help="pool size")
    chaos.add_argument("--shard-size", type=int, default=None, help="samples per shard")
    chaos.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="worker pool kind (default thread)",
    )
    chaos.add_argument("--n-train", type=int, default=120)
    chaos.add_argument("--n-test", type=int, default=60)
    chaos.add_argument("--epochs", type=int, default=2)
    chaos.add_argument("--seed", type=int, default=0)
    _add_ledger_flags(chaos)
    chaos.set_defaults(func=_cmd_chaos)

    sweep = sub.add_parser(
        "fault-sweep",
        help="accuracy vs stored-memory bit-flip rate, served through the "
        "resilient packed runtime",
    )
    sweep.add_argument("benchmark")
    sweep.add_argument(
        "--fractions",
        default="0.001,0.01,0.05,0.1",
        help="comma-separated flip fractions (default 0.001,0.01,0.05,0.1)",
    )
    sweep.add_argument(
        "--groups",
        help="comma-separated memory groups to corrupt (default: all)",
    )
    sweep.add_argument(
        "--reference",
        action="store_true",
        help="use the artifact-level integer reference path instead of the "
        "resilient serving path",
    )
    sweep.add_argument("--workers", type=int, default=None, help="pool size")
    sweep.add_argument("--shard-size", type=int, default=None, help="samples per shard")
    sweep.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="worker pool kind (default thread)",
    )
    sweep.add_argument("--n-train", type=int, default=120)
    sweep.add_argument("--n-test", type=int, default=60)
    sweep.add_argument("--epochs", type=int, default=2)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--repair-after",
        action="store_true",
        help="also corrupt a live packed engine's resident memory at each "
        "fraction and measure accuracy after the integrity scrubber's hot "
        "repair (the recovery curve)",
    )
    sweep.add_argument(
        "--json",
        help="sweep JSON path (default benchmarks/results/<benchmark>-fault-sweep.json)",
    )
    _add_ledger_flags(sweep)
    sweep.set_defaults(func=_cmd_fault_sweep)

    trace = sub.add_parser(
        "trace",
        help="span-tree traces of end-to-end classifications "
        "(packed engine, hw simulator with modeled cycles, streaming)",
    )
    trace.add_argument("benchmark")
    trace.add_argument("--samples", type=int, default=4, help="samples to trace")
    trace.add_argument(
        "--sample-rate",
        type=float,
        default=1.0,
        help="fraction of requests traced (deterministic, default 1.0)",
    )
    trace.add_argument("--n-train", type=int, default=120)
    trace.add_argument("--n-test", type=int, default=60)
    trace.add_argument("--epochs", type=int, default=2)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--jsonl", help="write captured traces as JSONL")
    trace.set_defaults(func=_cmd_trace)

    obs = sub.add_parser(
        "obs",
        help="run-ledger maintenance (compare runs, export records, "
        "emit trajectories)",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    compare = obs_sub.add_parser(
        "compare",
        help="diff the latest ledger run against a baseline; "
        "exit 1 on accuracy or p95 latency regression",
    )
    compare.add_argument(
        "--ledger", help="ledger JSONL path (default benchmarks/results/ledger.jsonl)"
    )
    compare.add_argument("--task", help="task to compare (default: any latest)")
    compare.add_argument("--kind", help="restrict to a run kind (bench/profile/...)")
    compare.add_argument(
        "--baseline",
        default="prev",
        help="'prev' (previous ledger entry for the task) or a record JSON path",
    )
    compare.add_argument(
        "--max-accuracy-drop",
        type=float,
        default=0.02,
        help="largest tolerated absolute accuracy drop (default 0.02)",
    )
    compare.add_argument(
        "--max-p95-regression",
        type=float,
        default=0.5,
        help="largest tolerated relative p95 latency increase (0.5 = +50%%)",
    )
    compare.add_argument(
        "--max-throughput-drop",
        type=float,
        default=0.5,
        help="largest tolerated relative samples/sec drop (0.5 = -50%%)",
    )
    compare.add_argument(
        "--max-budget-burn",
        type=float,
        default=None,
        help="largest tolerated slo.budget_consumed in the current run "
        "(absolute fraction, e.g. 0.5; default: not checked)",
    )
    compare.add_argument(
        "--trajectories",
        help="directory for BENCH_<task>.json files (default: ledger directory)",
    )
    compare.set_defaults(func=_cmd_obs_compare)
    export = obs_sub.add_parser(
        "export",
        help="dump the latest ledger record as JSON or Prometheus text",
    )
    export.add_argument(
        "--ledger", help="ledger JSONL path (default benchmarks/results/ledger.jsonl)"
    )
    export.add_argument("--task", help="task to export (default: any latest)")
    export.add_argument("--kind", help="restrict to a run kind (bench/profile/...)")
    export.add_argument(
        "--format", choices=("json", "prom"), default="json",
        help="output format (default json)",
    )
    export.add_argument("--out", help="write to a file instead of stdout")
    export.set_defaults(func=_cmd_obs_export)

    plan = sub.add_parser(
        "plan",
        help="execution planner: calibrate the datapath knobs (tile budget, "
        "executor, pipeline depth) and manage the persisted plan cache",
    )
    plan_sub = plan.add_subparsers(dest="plan_command", required=True)
    plan_run = plan_sub.add_parser(
        "run",
        help="train a small model, run the calibration sweep, store the "
        "winning plan (REPRO_PLAN=auto consumes it)",
    )
    plan_run.add_argument("benchmark")
    plan_run.add_argument("--batch", type=int, default=256, help="calibration batch size")
    plan_run.add_argument("--repeats", type=int, default=2, help="timed runs per candidate")
    plan_run.add_argument(
        "--cache",
        help="plan cache JSON path (default benchmarks/results/plan_cache.json)",
    )
    plan_run.add_argument("--json", action="store_true", help="print the plan as JSON")
    plan_run.add_argument("--n-train", type=int, default=120)
    plan_run.add_argument("--n-test", type=int, default=60)
    plan_run.add_argument("--epochs", type=int, default=2)
    plan_run.add_argument("--seed", type=int, default=0)
    _add_ledger_flags(plan_run)
    plan_run.set_defaults(func=_cmd_plan)
    plan_show = plan_sub.add_parser("show", help="print the cached plan(s)")
    plan_show.add_argument(
        "--cache",
        help="plan cache JSON path (default benchmarks/results/plan_cache.json)",
    )
    plan_show.add_argument("--json", action="store_true", help="dump the raw cache JSON")
    plan_show.set_defaults(func=_cmd_plan)
    plan_clear = plan_sub.add_parser("clear", help="delete the plan cache")
    plan_clear.add_argument(
        "--cache",
        help="plan cache JSON path (default benchmarks/results/plan_cache.json)",
    )
    plan_clear.set_defaults(func=_cmd_plan)

    report = sub.add_parser(
        "report", help="assemble benchmarks/results into one markdown report"
    )
    report.add_argument("--results", default="benchmarks/results")
    report.add_argument("--out", default="benchmarks/results/REPORT.md")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
