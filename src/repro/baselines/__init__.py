"""Classical lightweight-ML baselines of Table II."""

from .bnn import BinaryConvNet, BNNClassifier
from .knn import KNNClassifier
from .lda import LDAClassifier
from .qnn import QNNClassifier, QuantConvNet
from .memory import bits_to_kb, format_kb, ldc_memory_bits, lehdc_memory_bits
from .svm import BinarySVM, SVMClassifier, rbf_kernel

__all__ = [
    "BinaryConvNet",
    "BNNClassifier",
    "KNNClassifier",
    "LDAClassifier",
    "QNNClassifier",
    "QuantConvNet",
    "BinarySVM",
    "SVMClassifier",
    "rbf_kernel",
    "bits_to_kb",
    "format_kb",
    "ldc_memory_bits",
    "lehdc_memory_bits",
]
