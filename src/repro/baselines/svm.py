"""RBF-kernel SVM trained with SMO, from scratch (Table II baseline).

Implements the simplified Sequential Minimal Optimization of Platt (with
the standard E-cache and second-choice heuristic) for binary C-SVC, and
one-vs-one voting for multi-class — the same construction libsvm uses, so
the deployed artifact (support vectors + dual coefficients, stored at 16-bit
as in the paper) matches what the paper measured.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rbf_kernel", "BinarySVM", "SVMClassifier"]


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """K(a, b) = exp(-gamma * ||a - b||^2) for a (P, N), b (Q, N)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    d2 = (a**2).sum(axis=1)[:, None] - 2 * a @ b.T + (b**2).sum(axis=1)[None]
    return np.exp(-gamma * np.maximum(d2, 0.0))


class BinarySVM:
    """Binary C-SVC with RBF kernel, labels in {-1, +1}."""

    def __init__(
        self,
        c: float = 1.0,
        gamma: float = 0.1,
        tol: float = 1e-3,
        max_passes: int = 5,
        max_iter: int = 2000,
        seed: int = 0,
    ) -> None:
        self.c = c
        self.gamma = gamma
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.seed = seed
        self.support_vectors: np.ndarray | None = None
        self.dual_coef: np.ndarray | None = None
        self.bias = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "BinarySVM":
        """Train via simplified SMO; y must be in {-1, +1}."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if set(np.unique(y)) - {-1.0, 1.0}:
            raise ValueError("labels must be -1/+1")
        n = len(x)
        rng = np.random.default_rng(self.seed)
        kernel = rbf_kernel(x, x, self.gamma)
        alpha = np.zeros(n)
        state = {"bias": 0.0}

        def error(i: int) -> float:
            return float((alpha * y) @ kernel[i] + state["bias"] - y[i])

        def take_step(i: int, j: int, e_i: float) -> bool:
            if i == j:
                return False
            e_j = error(j)
            alpha_i_old, alpha_j_old = alpha[i], alpha[j]
            if y[i] != y[j]:
                low = max(0.0, alpha[j] - alpha[i])
                high = min(self.c, self.c + alpha[j] - alpha[i])
            else:
                low = max(0.0, alpha[i] + alpha[j] - self.c)
                high = min(self.c, alpha[i] + alpha[j])
            if low >= high:
                return False
            eta = 2.0 * kernel[i, j] - kernel[i, i] - kernel[j, j]
            if eta >= 0:
                return False
            alpha[j] = np.clip(alpha[j] - y[j] * (e_i - e_j) / eta, low, high)
            if abs(alpha[j] - alpha_j_old) < 1e-7 * (alpha[j] + alpha_j_old + 1e-7):
                alpha[j] = alpha_j_old
                return False
            alpha[i] += y[i] * y[j] * (alpha_j_old - alpha[j])
            b1 = (
                state["bias"]
                - e_i
                - y[i] * (alpha[i] - alpha_i_old) * kernel[i, i]
                - y[j] * (alpha[j] - alpha_j_old) * kernel[i, j]
            )
            b2 = (
                state["bias"]
                - e_j
                - y[i] * (alpha[i] - alpha_i_old) * kernel[i, j]
                - y[j] * (alpha[j] - alpha_j_old) * kernel[j, j]
            )
            if 0 < alpha[i] < self.c:
                state["bias"] = b1
            elif 0 < alpha[j] < self.c:
                state["bias"] = b2
            else:
                state["bias"] = 0.5 * (b1 + b2)
            return True

        def examine(i: int) -> bool:
            e_i = error(i)
            violated = (y[i] * e_i < -self.tol and alpha[i] < self.c) or (
                y[i] * e_i > self.tol and alpha[i] > 0
            )
            if not violated:
                return False
            # 1) second-choice heuristic: maximize |E_i - E_j|
            errors = (alpha * y) @ kernel + state["bias"] - y
            j = int(np.argmax(np.abs(errors - e_i)))
            if take_step(i, j, e_i):
                return True
            # 2) non-bound multipliers in random order
            non_bound = np.flatnonzero((alpha > 1e-8) & (alpha < self.c - 1e-8))
            for j in rng.permutation(non_bound):
                if take_step(i, int(j), e_i):
                    return True
            # 3) everything else in random order
            for j in rng.permutation(n):
                if take_step(i, int(j), e_i):
                    return True
            return False

        passes = 0
        iters = 0
        while passes < self.max_passes and iters < self.max_iter:
            changed = sum(examine(i) for i in range(n))
            passes = passes + 1 if changed == 0 else 0
            iters += 1
        bias = state["bias"]
        support = alpha > 1e-8
        self.support_vectors = x[support]
        self.dual_coef = (alpha[support] * y[support]).astype(np.float64)
        self.bias = float(bias)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed margin f(x) = sum_i alpha_i y_i K(x_i, x) + b."""
        if self.support_vectors is None:
            raise RuntimeError("SVM is not fitted")
        if len(self.support_vectors) == 0:
            return np.full(len(np.atleast_2d(x)), self.bias)
        k = rbf_kernel(np.atleast_2d(x), self.support_vectors, self.gamma)
        return k @ self.dual_coef + self.bias

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Labels in {-1, +1} (0 margin maps to +1)."""
        return np.where(self.decision_function(x) >= 0, 1, -1)


class SVMClassifier:
    """Multi-class RBF SVM via one-vs-one voting.

    ``gamma="scale"`` uses the libsvm default 1 / (N * var(x)).
    """

    def __init__(
        self,
        c: float = 1.0,
        gamma: float | str = "scale",
        tol: float = 1e-3,
        max_passes: int = 5,
        seed: int = 0,
    ) -> None:
        self.c = c
        self.gamma = gamma
        self.tol = tol
        self.max_passes = max_passes
        self.seed = seed
        self._machines: dict[tuple[int, int], BinarySVM] = {}
        self._n_classes = 0
        self._gamma_value = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "SVMClassifier":
        """Train C*(C-1)/2 pairwise machines."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        self._n_classes = int(y.max()) + 1
        if self.gamma == "scale":
            var = float(x.var())
            self._gamma_value = 1.0 / (x.shape[1] * var) if var > 0 else 1.0
        else:
            self._gamma_value = float(self.gamma)
        self._machines = {}
        for a in range(self._n_classes):
            for b in range(a + 1, self._n_classes):
                mask = (y == a) | (y == b)
                labels = np.where(y[mask] == a, 1.0, -1.0)
                machine = BinarySVM(
                    c=self.c,
                    gamma=self._gamma_value,
                    tol=self.tol,
                    max_passes=self.max_passes,
                    seed=self.seed,
                )
                machine.fit(x[mask], labels)
                self._machines[(a, b)] = machine
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """One-vs-one vote; margins break vote ties."""
        if not self._machines:
            raise RuntimeError("classifier is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        votes = np.zeros((len(x), self._n_classes), dtype=np.float64)
        for (a, b), machine in self._machines.items():
            margin = machine.decision_function(x)
            votes[:, a] += (margin >= 0) + 1e-3 * np.tanh(margin)
            votes[:, b] += (margin < 0) - 1e-3 * np.tanh(margin)
        return votes.argmax(axis=1)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(x) == np.asarray(y)).mean())

    def n_support_vectors(self) -> int:
        """Total stored support vectors across pairwise machines."""
        return sum(len(m.support_vectors) for m in self._machines.values())

    def memory_footprint_bits(self) -> int:
        """Deployed size at 16-bit floats: SVs + dual coefs + biases."""
        if not self._machines:
            raise RuntimeError("classifier is not fitted")
        total = 0
        for machine in self._machines.values():
            total += machine.support_vectors.size + machine.dual_coef.size + 1
        return 16 * total
