"""Binary neural network baseline (the Table III BNN/QNN family).

The paper excludes deep models from its Table II software comparison
because they blow the BCI resource budget, but cites FracBNN-class binary
CNNs in the hardware comparison.  This baseline makes the comparison
concrete in software: a small binary CNN (binary conv -> BN -> sign ->
pool, twice, then a binary dense classifier) trained with the same STE
substrate as UniVSA, with deployed-size accounting so the memory column
can sit next to Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ldc.model import normalize_levels
from repro.nn import (
    BatchNorm1d,
    BatchNorm2d,
    BinaryConv2d,
    BinaryLinear,
    Linear,
    Module,
    Tensor,
    max_pool2d,
    no_grad,
)
from repro.nn import functional as F
from repro.utils.trainloop import TrainConfig, TrainHistory, fit_classifier

__all__ = ["BinaryConvNet", "BNNClassifier"]


class BinaryConvNet(Module):
    """Two binary conv blocks + binary dense head.

    First conv consumes the raw (single-channel) value plane; weights of
    every learnable layer are binarized with STE.  BatchNorm keeps the
    binary pre-activations trainable (and would fold into thresholds on
    hardware, exactly as in :mod:`repro.core.export`).
    """

    def __init__(
        self,
        input_shape: tuple[int, int],
        n_classes: int,
        channels: tuple[int, int] = (16, 32),
        kernel_size: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.input_shape = tuple(input_shape)
        w, length = self.input_shape
        c1, c2 = channels
        pad = kernel_size // 2
        self._pad = pad
        self.conv1 = BinaryConv2d(1, c1, kernel_size, padding=pad, rng=rng)
        self.bn1 = BatchNorm2d(c1)
        self.conv2 = BinaryConv2d(c1, c2, kernel_size, padding=pad, rng=rng)
        self.bn2 = BatchNorm2d(c2)
        pooled_w = max(w // 2 // 2, 1)
        pooled_l = max(length // 2 // 2, 1)
        self.flat_features = c2 * pooled_w * pooled_l
        self.head = BinaryLinear(self.flat_features, n_classes, rng=rng)
        self.head_bn = BatchNorm1d(n_classes)

    def forward(self, x: Tensor) -> Tensor:
        """x (B, W, L) normalized floats -> logits (B, C)."""
        batch = x.shape[0]
        x = x.reshape(batch, 1, *self.input_shape)
        x = self.bn1(self.conv1(x)).sign_ste()
        x = max_pool2d(x, 2)
        x = self.bn2(self.conv2(x)).sign_ste()
        x = max_pool2d(x, 2)
        x = x.reshape(batch, self.flat_features)
        return self.head_bn(self.head(x))

    def deployed_bits(self) -> int:
        """Binary weights at 1 bit plus BN thresholds at 16 bits/channel."""
        binary = (
            self.conv1.weight.size + self.conv2.weight.size + self.head.weight.size
        )
        thresholds = (
            self.bn1.num_features + self.bn2.num_features + self.head_bn.num_features
        )
        return binary + 16 * thresholds


@dataclass
class BNNClassifier:
    """Scikit-style wrapper: BinaryConvNet + the shared training loop."""

    input_shape: tuple[int, int]
    n_classes: int
    channels: tuple[int, int] = (16, 32)
    levels: int = 256
    seed: int = 0
    train_config: TrainConfig = None

    def __post_init__(self) -> None:
        if self.train_config is None:
            self.train_config = TrainConfig(epochs=15, lr=0.01, seed=self.seed)
        self.model: BinaryConvNet | None = None
        self.history: TrainHistory | None = None

    def _preprocess(self, levels: np.ndarray) -> np.ndarray:
        return normalize_levels(
            np.asarray(levels).reshape((-1,) + tuple(self.input_shape)), self.levels
        )

    def fit(self, x: np.ndarray, y: np.ndarray) -> "BNNClassifier":
        """Train on discretized samples (B, W, L)."""
        self.model = BinaryConvNet(
            self.input_shape, self.n_classes, channels=self.channels, seed=self.seed
        )
        self.history = fit_classifier(
            self.model, np.asarray(x), np.asarray(y), self.train_config,
            preprocess=self._preprocess,
        )
        return self

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Predicted labels (B,)."""
        if self.model is None:
            raise RuntimeError("classifier is not fitted")
        self.model.eval()
        out = []
        x = np.asarray(x)
        with no_grad():
            for start in range(0, len(x), batch_size):
                logits = self.model(Tensor(self._preprocess(x[start : start + batch_size])))
                out.append(logits.data.argmax(axis=1))
        return np.concatenate(out)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(x) == np.asarray(y)).mean())

    def memory_footprint_bits(self) -> int:
        """Deployed model size."""
        if self.model is None:
            raise RuntimeError("classifier is not fitted")
        return self.model.deployed_bits()
