"""Quantized neural network baseline (Table III's QNN family, k-bit).

Same topology as the BNN baseline but with k-bit weights and k-bit
activations (DoReFa-style fake quantization): the software accuracy
comparator for Synetgy-class accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ldc.model import normalize_levels
from repro.nn import BatchNorm1d, BatchNorm2d, Module, Tensor, max_pool2d, no_grad
from repro.nn.quantize import QuantConv2d, QuantLinear, quantize_ste
from repro.utils.trainloop import TrainConfig, TrainHistory, fit_classifier

__all__ = ["QuantConvNet", "QNNClassifier"]


class QuantConvNet(Module):
    """Two k-bit conv blocks + k-bit dense head."""

    def __init__(
        self,
        input_shape: tuple[int, int],
        n_classes: int,
        bits: int = 4,
        channels: tuple[int, int] = (16, 32),
        kernel_size: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.input_shape = tuple(input_shape)
        self.bits = bits
        w, length = self.input_shape
        c1, c2 = channels
        pad = kernel_size // 2
        self.conv1 = QuantConv2d(1, c1, kernel_size, bits=bits, padding=pad, rng=rng)
        self.bn1 = BatchNorm2d(c1)
        self.conv2 = QuantConv2d(c1, c2, kernel_size, bits=bits, padding=pad, rng=rng)
        self.bn2 = BatchNorm2d(c2)
        pooled = max(w // 4, 1) * max(length // 4, 1)
        self.flat_features = c2 * pooled
        self.head = QuantLinear(self.flat_features, n_classes, bits=bits, rng=rng)
        self.head_bn = BatchNorm1d(n_classes)

    def _activation(self, x: Tensor) -> Tensor:
        # Bounded activation then k-bit quantization (PACT-style).
        return quantize_ste(x.tanh(), self.bits)

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        batch = x.shape[0]
        x = x.reshape(batch, 1, *self.input_shape)
        x = self._activation(self.bn1(self.conv1(x)))
        x = max_pool2d(x, 2)
        x = self._activation(self.bn2(self.conv2(x)))
        x = max_pool2d(x, 2)
        x = x.reshape(batch, self.flat_features)
        return self.head_bn(self.head(x))

    def deployed_bits(self) -> int:
        """k bits per weight plus 16-bit BN parameters per channel."""
        weights = (
            self.conv1.weight.size + self.conv2.weight.size + self.head.weight.size
        )
        thresholds = (
            self.bn1.num_features + self.bn2.num_features + self.head_bn.num_features
        )
        return self.bits * weights + 16 * 2 * thresholds


@dataclass
class QNNClassifier:
    """Scikit-style wrapper around :class:`QuantConvNet`."""

    input_shape: tuple[int, int]
    n_classes: int
    bits: int = 4
    channels: tuple[int, int] = (16, 32)
    levels: int = 256
    seed: int = 0
    train_config: TrainConfig = None

    def __post_init__(self) -> None:
        if self.train_config is None:
            self.train_config = TrainConfig(epochs=15, lr=0.01, seed=self.seed)
        self.model: QuantConvNet | None = None
        self.history: TrainHistory | None = None

    def _preprocess(self, levels: np.ndarray) -> np.ndarray:
        return normalize_levels(
            np.asarray(levels).reshape((-1,) + tuple(self.input_shape)), self.levels
        )

    def fit(self, x: np.ndarray, y: np.ndarray) -> "QNNClassifier":
        """Train on discretized samples (B, W, L)."""
        self.model = QuantConvNet(
            self.input_shape,
            self.n_classes,
            bits=self.bits,
            channels=self.channels,
            seed=self.seed,
        )
        self.history = fit_classifier(
            self.model, np.asarray(x), np.asarray(y), self.train_config,
            preprocess=self._preprocess,
        )
        return self

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Predicted labels (B,)."""
        if self.model is None:
            raise RuntimeError("classifier is not fitted")
        self.model.eval()
        out = []
        x = np.asarray(x)
        with no_grad():
            for start in range(0, len(x), batch_size):
                logits = self.model(Tensor(self._preprocess(x[start : start + batch_size])))
                out.append(logits.data.argmax(axis=1))
        return np.concatenate(out)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(x) == np.asarray(y)).mean())

    def memory_footprint_bits(self) -> int:
        """Deployed model size."""
        if self.model is None:
            raise RuntimeError("classifier is not fitted")
        return self.model.deployed_bits()
