"""Model memory-footprint accounting used in the Table II comparison.

All sizes are deployed-inference artifacts, following the paper's
conventions: LDA at 32-bit float, SVM at 16-bit float, binary VSA models at
1 bit/element, KNN reported as the raw training set (the paper prints '-').
"""

from __future__ import annotations

__all__ = ["bits_to_kb", "lehdc_memory_bits", "ldc_memory_bits", "format_kb"]


def bits_to_kb(bits: int) -> float:
    """Bits -> kilobytes (decimal: 1 KB = 8000 bits, the paper's convention)."""
    return bits / 8000.0


def lehdc_memory_bits(dim: int, n_features: int, n_classes: int, levels: int) -> int:
    """LeHDC deployed size: V (M x D) + F (N x D) + C (C x D) bits."""
    return dim * (levels + n_features + n_classes)


def ldc_memory_bits(
    dim: int, n_features: int, n_classes: int, levels: int
) -> int:
    """LDC deployed size: same artifact structure as LeHDC at small D."""
    return dim * (levels + n_features + n_classes)


def format_kb(bits: int | None) -> str:
    """Human-readable KB string; None renders as the paper's dash."""
    if bits is None:
        return "-"
    kb = bits_to_kb(bits)
    if kb >= 1024:
        return f"{kb / 1024:.2f}MB"
    return f"{kb:.2f}KB"
