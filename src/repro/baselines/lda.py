"""Linear Discriminant Analysis baseline (32-bit float, Table II)."""

from __future__ import annotations

import numpy as np
from scipy import linalg

__all__ = ["LDAClassifier"]


class LDAClassifier:
    """Multi-class LDA with a shared, shrinkage-regularized covariance.

    Discriminant: delta_c(x) = x^T S^-1 mu_c - 0.5 mu_c^T S^-1 mu_c
    + log pi_c; deployed as C linear functions (weights + bias), which is
    what the Table II memory accounting counts.
    """

    def __init__(self, shrinkage: float = 0.1) -> None:
        if not 0.0 <= shrinkage <= 1.0:
            raise ValueError("shrinkage must be in [0, 1]")
        self.shrinkage = shrinkage
        self.weights: np.ndarray | None = None  # (C, N)
        self.biases: np.ndarray | None = None  # (C,)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LDAClassifier":
        """Fit on float features x (B, N) and integer labels y (B,)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        classes = np.arange(int(y.max()) + 1)
        n_features = x.shape[1]
        means = np.stack([x[y == c].mean(axis=0) for c in classes])
        centered = x - means[y]
        cov = centered.T @ centered / max(len(x) - len(classes), 1)
        trace_scale = np.trace(cov) / n_features
        cov = (1 - self.shrinkage) * cov + self.shrinkage * trace_scale * np.eye(n_features)
        priors = np.array([(y == c).mean() for c in classes])
        solve = linalg.solve(cov, means.T, assume_a="pos")  # (N, C)
        self.weights = solve.T.astype(np.float32)
        self.biases = (
            -0.5 * np.einsum("cn,cn->c", means, solve.T) + np.log(priors)
        ).astype(np.float32)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Per-class discriminant scores (B, C)."""
        if self.weights is None:
            raise RuntimeError("classifier is not fitted")
        return np.asarray(x, dtype=np.float32) @ self.weights.T + self.biases

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted labels (B,)."""
        return self.decision_function(x).argmax(axis=1)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(x) == np.asarray(y)).mean())

    def memory_footprint_bits(self) -> int:
        """Deployed size: C x (N + 1) float32 parameters."""
        if self.weights is None:
            raise RuntimeError("classifier is not fitted")
        return 32 * (self.weights.size + self.biases.size)
