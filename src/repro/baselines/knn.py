"""K-nearest-neighbour baseline (K=5 in Table II)."""

from __future__ import annotations

import numpy as np

__all__ = ["KNNClassifier"]


class KNNClassifier:
    """Brute-force Euclidean KNN with majority vote (lowest label on ties)."""

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._n_classes = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        """Store the training set (KNN has no parameters)."""
        self._x = np.asarray(x, dtype=np.float64)
        self._y = np.asarray(y)
        self._n_classes = int(self._y.max()) + 1
        if self.k > len(self._x):
            raise ValueError("k exceeds training-set size")
        return self

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Predicted labels; distance computation is batched for memory."""
        if self._x is None:
            raise RuntimeError("classifier is not fitted")
        x = np.asarray(x, dtype=np.float64)
        train_sq = (self._x**2).sum(axis=1)
        out = np.empty(len(x), dtype=np.int64)
        for start in range(0, len(x), batch_size):
            chunk = x[start : start + batch_size]
            d2 = (chunk**2).sum(axis=1)[:, None] - 2 * chunk @ self._x.T + train_sq[None]
            nearest = np.argpartition(d2, self.k - 1, axis=1)[:, : self.k]
            votes = np.zeros((len(chunk), self._n_classes), dtype=np.int64)
            for j in range(self.k):
                np.add.at(votes, (np.arange(len(chunk)), self._y[nearest[:, j]]), 1)
            out[start : start + batch_size] = votes.argmax(axis=1)
        return out

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(x) == np.asarray(y)).mean())

    def memory_footprint_bits(self) -> int:
        """KNN stores the whole training set (Table II reports '-')."""
        if self._x is None:
            raise RuntimeError("classifier is not fitted")
        return 32 * self._x.size + 8 * self._y.size
