"""Sliding-window preprocessing (Sec. III-A input pipeline).

BCI signals are "preprocessed and evenly divided into W sliding windows with
overlap, where each window contains a signal snippet of length L"; the model
input is the (W, L) matrix of snippets.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sliding_windows", "window_layout"]


def window_layout(
    total_length: int, window_count: int, window_length: int
) -> tuple[np.ndarray, int]:
    """Compute window start offsets and overlap for a W x L division.

    Returns (starts, overlap).  Windows are evenly spaced so the first
    starts at 0 and the last ends at ``total_length``; the overlap is
    ``window_length - stride`` (may be 0 for non-overlapping layouts).
    """
    if window_count < 1 or window_length < 1:
        raise ValueError("window_count and window_length must be positive")
    if window_length > total_length:
        raise ValueError("window longer than the signal")
    if window_count == 1:
        return np.array([0]), 0
    span = total_length - window_length
    starts = np.linspace(0, span, window_count).round().astype(int)
    stride = int(starts[1] - starts[0]) if window_count > 1 else window_length
    return starts, max(window_length - stride, 0)


def sliding_windows(
    signal: np.ndarray, window_count: int, window_length: int
) -> np.ndarray:
    """Divide a 1-D signal into (window_count, window_length) snippets."""
    signal = np.asarray(signal)
    if signal.ndim != 1:
        raise ValueError("sliding_windows expects a 1-D signal")
    starts, _ = window_layout(signal.shape[0], window_count, window_length)
    return np.stack([signal[s : s + window_length] for s in starts])
