"""Cross-validation splits and stratified subsampling."""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["stratified_subsample", "kfold_indices"]


def stratified_subsample(
    y: np.ndarray, n_samples: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Pick ``n_samples`` indices preserving class proportions."""
    y = np.asarray(y)
    if n_samples > len(y):
        raise ValueError("cannot subsample more points than available")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    classes, counts = np.unique(y, return_counts=True)
    fractions = counts / counts.sum()
    picks: list[np.ndarray] = []
    allocated = 0
    for i, cls in enumerate(classes):
        want = int(round(fractions[i] * n_samples)) if i < len(classes) - 1 else n_samples - allocated
        want = min(max(want, 1), counts[i])
        allocated += want
        idx = np.flatnonzero(y == cls)
        picks.append(gen.choice(idx, size=want, replace=False))
    result = np.concatenate(picks)
    gen.shuffle(result)
    return result[:n_samples]


def kfold_indices(
    n: int, k: int, rng: np.random.Generator | int | None = None
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, val_idx) for k folds over n samples."""
    if k < 2 or k > n:
        raise ValueError("k must be in [2, n]")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    order = gen.permutation(n)
    folds = np.array_split(order, k)
    for i in range(k):
        val = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        yield train, val
