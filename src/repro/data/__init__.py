"""Benchmark datasets: synthetic stand-ins for the paper's six tasks."""

from . import benchmarks as _benchmarks  # noqa: F401  (registers the tasks)
from .cache import load_benchmark_data, load_cached, save_benchmark_data
from .quantize import Quantizer, quantize_dataset
from .registry import (
    Benchmark,
    BenchmarkData,
    benchmark_names,
    get_benchmark,
    load,
    register,
)
from .userdata import UserDataset, from_arrays, from_csv_dir, from_npz, prepare_windows
from .splits import kfold_indices, stratified_subsample
from .synthetic import SignalTaskSpec, SyntheticDataset, generate_signal_task
from .windows import sliding_windows, window_layout

__all__ = [
    "Quantizer",
    "save_benchmark_data",
    "load_benchmark_data",
    "load_cached",
    "quantize_dataset",
    "Benchmark",
    "BenchmarkData",
    "benchmark_names",
    "get_benchmark",
    "load",
    "register",
    "SignalTaskSpec",
    "SyntheticDataset",
    "generate_signal_task",
    "sliding_windows",
    "window_layout",
    "UserDataset",
    "from_arrays",
    "from_csv_dir",
    "from_npz",
    "prepare_windows",
    "kfold_indices",
    "stratified_subsample",
]
