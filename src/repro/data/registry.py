"""Benchmark registry: the six evaluation tasks of Table I.

Each entry couples a synthetic generator spec with the paper's searched
UniVSA configuration so that every experiment (Tables I-IV, Figs. 4/6) can
refer to benchmarks by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .quantize import Quantizer, quantize_dataset
from .synthetic import SignalTaskSpec, generate_signal_task

__all__ = ["Benchmark", "BenchmarkData", "register", "get_benchmark", "benchmark_names", "load"]


@dataclass(frozen=True)
class Benchmark:
    """A named benchmark: generator spec + paper Table I model config."""

    spec: SignalTaskSpec
    # Paper Table I searched configuration (D_H, D_L, D_K, O, Theta).
    paper_config: tuple[int, int, int, int, int]
    levels: int = 256  # M
    default_train: int = 480
    default_test: int = 240

    @property
    def name(self) -> str:
        """Benchmark name."""
        return self.spec.name

    @property
    def input_shape(self) -> tuple[int, int]:
        """Input window shape (W, L)."""
        return (self.spec.window_count, self.spec.window_length)

    @property
    def n_classes(self) -> int:
        """Number of classes."""
        return self.spec.n_classes


@dataclass
class BenchmarkData:
    """Quantized train/test splits ready for any model in the repo."""

    benchmark: Benchmark
    x_train: np.ndarray  # (B, W, L) int64 levels in [0, M)
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    quantizer: Quantizer
    informative_windows: np.ndarray = field(repr=False)

    @property
    def n_features(self) -> int:
        """Number of input features (N = W x L)."""
        return self.x_train.shape[1] * self.x_train.shape[2]

    def flat_train(self) -> np.ndarray:
        """Train inputs flattened to (B, W*L)."""
        return self.x_train.reshape(len(self.x_train), -1)

    def flat_test(self) -> np.ndarray:
        """Test inputs flattened to (B, W*L)."""
        return self.x_test.reshape(len(self.x_test), -1)


_REGISTRY: dict[str, Benchmark] = {}


def register(benchmark: Benchmark) -> Benchmark:
    """Add a benchmark to the global registry (name must be unique)."""
    if benchmark.name in _REGISTRY:
        raise ValueError(f"benchmark {benchmark.name!r} already registered")
    _REGISTRY[benchmark.name] = benchmark
    return benchmark


def get_benchmark(name: str) -> Benchmark:
    """Look up a registered benchmark by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def benchmark_names() -> list[str]:
    """Names of all registered benchmarks, in registration order."""
    return list(_REGISTRY)


def load(
    name: str,
    n_train: int | None = None,
    n_test: int | None = None,
    seed: int = 0,
) -> BenchmarkData:
    """Generate + quantize a benchmark's data (deterministic in ``seed``)."""
    benchmark = get_benchmark(name)
    raw = generate_signal_task(
        benchmark.spec,
        n_train=benchmark.default_train if n_train is None else n_train,
        n_test=benchmark.default_test if n_test is None else n_test,
        seed=seed,
    )
    x_train, x_test, quantizer = quantize_dataset(
        raw.x_train, raw.x_test, levels=benchmark.levels
    )
    return BenchmarkData(
        benchmark=benchmark,
        x_train=x_train,
        y_train=raw.y_train,
        x_test=x_test,
        y_test=raw.y_test,
        quantizer=quantizer,
        informative_windows=raw.informative_windows,
    )
