"""The six Table I benchmarks as synthetic stand-ins.

Shapes, class counts, domains, and the searched UniVSA configurations come
straight from Table I of the paper; the generator knobs encode each task's
statistical character via the four mechanisms of
:mod:`repro.data.synthetic` (dc / spread / oscillation / coupling), tuned
so the Table II accuracy *orderings* reproduce (see EXPERIMENTS.md).
"""

from __future__ import annotations

from .registry import Benchmark, register
from .synthetic import SignalTaskSpec

__all__ = ["EEGMMI", "BCI_III_V", "CHB_B", "CHB_IB", "ISOLET", "HAR"]

# EEGMMI: 64-channel motor imagery EEG, 2 classes, time domain.  Small
# multimodal dc (KNN > LDA), a strong variance-coded component (learned
# VSA > LDA), and strong coupling (UniVSA/SVM > LDC) — the paper's
# signature task where plain LDC trails SVM and UniVSA closes the gap.
EEGMMI = register(
    Benchmark(
        spec=SignalTaskSpec(
            name="eegmmi",
            n_classes=2,
            window_count=16,
            window_length=64,
            domain="time",
            noise=1.3,
            dc_strength=0.26,
            spread_strength=0.9,
            oscillation_strength=0.5,
            coupling_strength=0.8,
            informative_fraction=0.6,
            clusters_per_class=3,
        ),
        paper_config=(8, 2, 3, 95, 1),
        default_train=900,
        default_test=300,
    )
)

# BCI-III-V: mental imagery, 3 classes, frequency domain.  Multi-cluster
# band-power prototypes favor local neighbourhood methods (paper: KNN is
# best here at 0.99).
BCI_III_V = register(
    Benchmark(
        spec=SignalTaskSpec(
            name="bci-iii-v",
            n_classes=3,
            window_count=16,
            window_length=6,
            domain="frequency",
            noise=1.15,
            oscillation_strength=0.75,
            coupling_strength=0.5,
            informative_fraction=0.8,
            clusters_per_class=4,
        ),
        paper_config=(8, 1, 3, 151, 3),
    )
)

# CHB (balanced): seizure detection, 2 classes, frequency domain; strongly
# separable band powers — every competent method scores high (paper: all
# models > 0.89).
CHB_B = register(
    Benchmark(
        spec=SignalTaskSpec(
            name="chb-b",
            n_classes=2,
            window_count=23,
            window_length=64,
            domain="frequency",
            noise=3.2,
            oscillation_strength=0.45,
            coupling_strength=0.9,
            informative_fraction=0.5,
        ),
        paper_config=(8, 2, 3, 16, 3),
    )
)

# CHB (imbalanced): same signal, 85/15 class prior.
CHB_IB = register(
    Benchmark(
        spec=SignalTaskSpec(
            name="chb-ib",
            n_classes=2,
            window_count=23,
            window_length=64,
            domain="frequency",
            noise=3.2,
            oscillation_strength=0.45,
            coupling_strength=0.9,
            informative_fraction=0.5,
            class_balance=(0.85, 0.15),
        ),
        paper_config=(4, 1, 5, 16, 1),
    )
)

# ISOLET: spoken letters, 26 classes, time domain.  Clear per-class dc
# formant patterns (LDA/SVM strong) with moderate variance coding; the
# challenge is class count, not noise.
ISOLET = register(
    Benchmark(
        spec=SignalTaskSpec(
            name="isolet",
            n_classes=26,
            window_count=16,
            window_length=40,
            domain="time",
            noise=1.1,
            dc_strength=0.55,
            spread_strength=0.6,
            oscillation_strength=1.0,
            coupling_strength=0.45,
            informative_fraction=0.9,
        ),
        paper_config=(4, 4, 3, 22, 3),
        default_train=1040,
        default_test=390,
    )
)

# HAR: accelerometer/gyro activities, 6 classes, time domain.  Class
# evidence is almost entirely variance-coded and power-normalized —
# distance-based methods collapse (paper: KNN 0.56) and linear models sit
# mid-pack, while learned VSA models shine (LeHDC/LDC/UniVSA > 0.92).
HAR = register(
    Benchmark(
        spec=SignalTaskSpec(
            name="har",
            n_classes=6,
            window_count=16,
            window_length=36,
            domain="time",
            noise=1.35,
            dc_strength=0.13,
            spread_strength=1.4,
            oscillation_strength=0.5,
            coupling_strength=0.35,
            informative_fraction=0.9,
            distributed_weak_features=True,
        ),
        paper_config=(8, 4, 3, 18, 3),
        default_train=720,
        default_test=300,
    )
)
