"""Input discretization to M levels (paper Sec. V-A: M = 256).

Levels are fitted on training data only (uniform bins between robust
percentiles) so that train/test see the same quantizer — the V codebook of
the deployed VSA model is indexed by these levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Quantizer", "quantize_dataset"]


@dataclass
class Quantizer:
    """Uniform quantizer mapping floats to integer levels [0, levels)."""

    levels: int = 256
    low: float | None = None
    high: float | None = None

    def fit(self, x: np.ndarray, percentile: float = 0.5) -> "Quantizer":
        """Fit the value range on training data (robust percentiles)."""
        if self.levels < 2:
            raise ValueError("levels must be >= 2")
        x = np.asarray(x, dtype=np.float64)
        self.low = float(np.percentile(x, percentile))
        self.high = float(np.percentile(x, 100.0 - percentile))
        if self.high <= self.low:
            self.high = self.low + 1.0
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Map floats to integer levels, clipping out-of-range values."""
        if self.low is None or self.high is None:
            raise RuntimeError("quantizer is not fitted")
        x = np.asarray(x, dtype=np.float64)
        scaled = (x - self.low) / (self.high - self.low)
        levels = np.floor(scaled * self.levels).astype(np.int64)
        return np.clip(levels, 0, self.levels - 1)

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit the quantizer on x and return its levels."""
        return self.fit(x).transform(x)

    def inverse(self, levels: np.ndarray) -> np.ndarray:
        """Map levels back to bin-center floats (for inspection)."""
        if self.low is None or self.high is None:
            raise RuntimeError("quantizer is not fitted")
        centers = (np.asarray(levels, dtype=np.float64) + 0.5) / self.levels
        return centers * (self.high - self.low) + self.low


def quantize_dataset(
    x_train: np.ndarray, x_test: np.ndarray, levels: int = 256
) -> tuple[np.ndarray, np.ndarray, Quantizer]:
    """Fit a quantizer on train data and discretize both splits."""
    quantizer = Quantizer(levels=levels).fit(x_train)
    return quantizer.transform(x_train), quantizer.transform(x_test), quantizer
