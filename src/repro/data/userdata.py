"""Bring-your-own-data pipeline: raw recordings -> UniVSA-ready splits.

When the real datasets (PhysioNet EEGMMI, CHB-MIT, UCI ISOLET/HAR, ...)
are available, this module is the on-ramp: it applies exactly the
preprocessing contract the synthetic benchmarks use — per-recording
sliding windows into a (W, L) matrix, train-only quantizer fitting,
stratified splitting — so every model in the repository runs on real
data unchanged.

Accepted inputs: in-memory arrays, ``.npz`` archives with ``signals`` +
``labels``, or a directory of per-class CSV files (one recording per
row).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .quantize import Quantizer
from .windows import sliding_windows

__all__ = ["prepare_windows", "UserDataset", "from_arrays", "from_npz", "from_csv_dir"]


def prepare_windows(
    recordings: np.ndarray, window_count: int, window_length: int
) -> np.ndarray:
    """Window each 1-D recording into a (W, L) matrix.

    ``recordings`` is (B, T) float; returns (B, W, L).
    """
    recordings = np.asarray(recordings, dtype=np.float64)
    if recordings.ndim != 2:
        raise ValueError("recordings must be (B, T)")
    return np.stack(
        [sliding_windows(rec, window_count, window_length) for rec in recordings]
    )


class UserDataset:
    """Quantized user data, API-compatible with benchmark splits."""

    def __init__(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_test: np.ndarray,
        y_test: np.ndarray,
        quantizer: Quantizer,
    ) -> None:
        self.x_train = x_train
        self.y_train = y_train
        self.x_test = x_test
        self.y_test = y_test
        self.quantizer = quantizer

    @property
    def input_shape(self) -> tuple[int, int]:
        """Input window shape (W, L)."""
        return self.x_train.shape[1:]

    @property
    def n_classes(self) -> int:
        """Number of classes."""
        return int(max(self.y_train.max(), self.y_test.max())) + 1

    def flat_train(self) -> np.ndarray:
        """Train inputs flattened to (B, W*L)."""
        return self.x_train.reshape(len(self.x_train), -1)

    def flat_test(self) -> np.ndarray:
        """Test inputs flattened to (B, W*L)."""
        return self.x_test.reshape(len(self.x_test), -1)


def from_arrays(
    signals: np.ndarray,
    labels: np.ndarray,
    window_count: int,
    window_length: int,
    levels: int = 256,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> UserDataset:
    """Build a quantized split from raw (B, T) recordings + labels."""
    signals = np.asarray(signals, dtype=np.float64)
    labels = np.asarray(labels)
    if len(signals) != len(labels):
        raise ValueError("signals/labels length mismatch")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    windows = prepare_windows(signals, window_count, window_length)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(windows))
    n_test = max(1, int(round(test_fraction * len(windows))))
    test_idx, train_idx = order[:n_test], order[n_test:]
    quantizer = Quantizer(levels=levels).fit(windows[train_idx])
    return UserDataset(
        x_train=quantizer.transform(windows[train_idx]),
        y_train=labels[train_idx],
        x_test=quantizer.transform(windows[test_idx]),
        y_test=labels[test_idx],
        quantizer=quantizer,
    )


def from_npz(
    path: str | Path,
    window_count: int,
    window_length: int,
    levels: int = 256,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> UserDataset:
    """Load ``signals`` (B, T) and ``labels`` (B,) from an .npz archive."""
    with np.load(path) as archive:
        if "signals" not in archive or "labels" not in archive:
            raise ValueError("npz must contain 'signals' and 'labels'")
        signals = archive["signals"]
        labels = archive["labels"]
    return from_arrays(
        signals, labels, window_count, window_length, levels, test_fraction, seed
    )


def from_csv_dir(
    directory: str | Path,
    window_count: int,
    window_length: int,
    levels: int = 256,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> UserDataset:
    """Load a directory of ``<class-name>.csv`` files (one recording/row).

    Class labels are assigned by sorted file order, so the mapping is
    deterministic across runs.
    """
    directory = Path(directory)
    files = sorted(directory.glob("*.csv"))
    if not files:
        raise ValueError(f"no .csv files in {directory}")
    signals = []
    labels = []
    for label, path in enumerate(files):
        rows = np.loadtxt(path, delimiter=",", ndmin=2)
        signals.append(rows)
        labels.append(np.full(len(rows), label))
    lengths = {s.shape[1] for s in signals}
    if len(lengths) != 1:
        raise ValueError(f"inconsistent recording lengths across files: {lengths}")
    return from_arrays(
        np.concatenate(signals),
        np.concatenate(labels),
        window_count,
        window_length,
        levels,
        test_fraction,
        seed,
    )
