"""Dataset caching: persist generated benchmarks as .npz archives.

Generation is deterministic but not free (the EEGMMI stand-in synthesizes
~1M samples of signal); caching makes repeated benchmark runs and
notebook sessions instant, and gives deployments a fixed dataset artifact
to version.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .quantize import Quantizer
from .registry import BenchmarkData, get_benchmark, load

__all__ = ["save_benchmark_data", "load_benchmark_data", "load_cached"]


def save_benchmark_data(data: BenchmarkData, path: str | os.PathLike) -> None:
    """Write a quantized benchmark split to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        name=np.array(data.benchmark.name),
        x_train=data.x_train,
        y_train=data.y_train,
        x_test=data.x_test,
        y_test=data.y_test,
        quantizer_low=np.array(data.quantizer.low),
        quantizer_high=np.array(data.quantizer.high),
        quantizer_levels=np.array(data.quantizer.levels),
        informative=data.informative_windows,
    )


def load_benchmark_data(path: str | os.PathLike) -> BenchmarkData:
    """Load a split saved by :func:`save_benchmark_data`."""
    with np.load(path) as archive:
        name = str(archive["name"])
        quantizer = Quantizer(
            levels=int(archive["quantizer_levels"]),
            low=float(archive["quantizer_low"]),
            high=float(archive["quantizer_high"]),
        )
        return BenchmarkData(
            benchmark=get_benchmark(name),
            x_train=archive["x_train"],
            y_train=archive["y_train"],
            x_test=archive["x_test"],
            y_test=archive["y_test"],
            quantizer=quantizer,
            informative_windows=archive["informative"],
        )


def load_cached(
    name: str,
    cache_dir: str | os.PathLike,
    n_train: int | None = None,
    n_test: int | None = None,
    seed: int = 0,
) -> BenchmarkData:
    """Load a benchmark through an on-disk cache keyed by its parameters."""
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    benchmark = get_benchmark(name)
    # `is None` (not truthiness): an explicit n_train=0 / n_test=0 is a
    # real request, not "use the default".  The quantizer level count is
    # part of the key so runs with different M never share an archive.
    key_train = benchmark.default_train if n_train is None else n_train
    key_test = benchmark.default_test if n_test is None else n_test
    path = cache_dir / f"{name}-{key_train}-{key_test}-m{benchmark.levels}-s{seed}.npz"
    if path.exists():
        return load_benchmark_data(path)
    data = load(name, n_train=n_train, n_test=n_test, seed=seed)
    save_benchmark_data(data, path)
    return data
