"""Synthetic signal generators standing in for the paper's datasets.

The originals (PhysioNet EEGMMI, BCI Competition III-V, CHB-MIT, UCI
ISOLET/HAR) are public but unavailable offline, so each benchmark is
replaced by a deterministic generator that matches the *input contract* —
(W, L) window shape, class count, M=256 discretization, class imbalance —
and whose class information is carried by four orthogonal, individually
tunable mechanisms.  Each mechanism is visible to a different family of
classifiers, which is what lets the benchmarks reproduce the paper's
accuracy *orderings*:

* **dc** — per-window mean offsets, drawn per (class, cluster).  Linearly
  decodable; with one cluster it is LDA's home turf, with several clusters
  per class the boundary is multimodal and local methods (KNN) win while
  a single linear discriminant saturates.
* **spread** — per-window noise variance allocation, drawn per class and
  *power-normalized across windows* (every class has the same total
  power).  Equal means make it invisible to LDA; equal total power makes
  expected pairwise distances class-independent, blinding KNN and vanilla
  RBF distances.  Models that learn per-feature nonlinear value mappings —
  the ValueBox of LDC/UniVSA, kernels to a degree — can read it from level
  extremeness statistics.
* **oscillation** — class-specific band oscillations with random phase
  and power-normalized amplitudes: EEG-flavoured realism that behaves
  like a milder spread component.
* **coupling** — adjacent informative windows share a random carrier
  whose relative sign is class-specific.  Marginals are unchanged and
  distances are unaffected: only models that build *feature interactions*
  (the paper's BiConv; kernel methods partially) can see it.

The frequency-domain generator (band powers) keeps the same component
structure on log-power values and adds per-class cluster prototypes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SignalTaskSpec", "generate_signal_task", "SyntheticDataset"]


@dataclass(frozen=True)
class SignalTaskSpec:
    """Recipe for a synthetic windowed-signal classification task."""

    name: str
    n_classes: int
    window_count: int  # W
    window_length: int  # L
    domain: str = "time"  # "time" -> oscillations, "frequency" -> band powers
    noise: float = 1.0
    dc_strength: float = 0.4  # linear component (LDA/KNN)
    spread_strength: float = 0.0  # variance-coded component (VSA/SVM)
    oscillation_strength: float = 1.0  # EEG-flavoured band component
    coupling_strength: float = 0.8  # interaction-only component (BiConv)
    informative_fraction: float = 0.6  # fraction of windows carrying signal
    clusters_per_class: int = 1
    distributed_weak_features: bool = False
    class_balance: tuple[float, ...] | None = None  # None -> uniform

    def __post_init__(self) -> None:
        if self.n_classes < 2:
            raise ValueError("need at least two classes")
        if self.domain not in ("time", "frequency"):
            raise ValueError(f"unknown domain {self.domain!r}")
        if not 0.0 < self.informative_fraction <= 1.0:
            raise ValueError("informative_fraction must be in (0, 1]")
        if self.class_balance is not None and len(self.class_balance) != self.n_classes:
            raise ValueError("class_balance length must equal n_classes")
        if self.clusters_per_class < 1:
            raise ValueError("clusters_per_class must be >= 1")


@dataclass
class SyntheticDataset:
    """Raw (float) train/test splits plus the informative-window ground truth."""

    spec: SignalTaskSpec
    x_train: np.ndarray  # (B, W, L) float
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    informative_windows: np.ndarray = field(repr=False)  # bool (W,)


@dataclass
class _ClassSignatures:
    """Per-class parameters drawn once and shared by train/test."""

    informative: np.ndarray  # bool (W,)
    dc: np.ndarray  # (C, K, W) cluster-structured means
    sigma: np.ndarray  # (C, W) power-normalized noise scales
    freqs: np.ndarray  # (W,) class-independent band frequencies
    amps: np.ndarray  # (W,) class-independent oscillation amplitudes
    pair_sign: np.ndarray  # (C, W) coupling signs
    band_means: np.ndarray  # (C, K, W, L) frequency-domain prototypes
    weak_offsets: np.ndarray  # (C, W, L) distributed weak evidence


def _class_labels(
    n: int, spec: SignalTaskSpec, rng: np.random.Generator
) -> np.ndarray:
    if spec.class_balance is None:
        return rng.integers(0, spec.n_classes, size=n)
    probs = np.asarray(spec.class_balance, dtype=np.float64)
    probs = probs / probs.sum()
    return rng.choice(spec.n_classes, size=n, p=probs)


def _normalize_rows_power(values: np.ndarray, informative: np.ndarray) -> np.ndarray:
    """Scale each class row so the total power over informative windows
    matches the first class's (removes the total-power shortcut)."""
    values = values.copy()
    power = (values[:, informative] ** 2).sum(axis=1)
    reference = power[0] if power[0] > 0 else 1.0
    scale = np.sqrt(reference / np.where(power > 0, power, 1.0))
    values[:, informative] *= scale[:, None]
    return values


def _draw_signatures(spec: SignalTaskSpec, rng: np.random.Generator) -> _ClassSignatures:
    w, length = spec.window_count, spec.window_length
    c, k = spec.n_classes, spec.clusters_per_class
    n_informative = max(1, int(round(spec.informative_fraction * w)))
    informative = np.zeros(w, dtype=bool)
    informative[rng.choice(w, size=n_informative, replace=False)] = True

    dc = rng.standard_normal((c, k, w)) * informative[None, None, :]

    # Spread: binary high/low variance allocation per class, half the
    # informative windows high -- then power-normalized across classes.
    sigma = np.ones((c, w))
    informative_idx = np.flatnonzero(informative)
    for ci in range(c):
        high = rng.choice(
            informative_idx, size=max(1, len(informative_idx) // 2), replace=False
        )
        sigma[ci, high] = 1.0 + spec.spread_strength
    power = (sigma**2).sum(axis=1)
    sigma *= np.sqrt(power[0] / power)[:, None]

    # Oscillations carry no class information (realism only): subspace
    # structure shared by classes would otherwise hand distance-based
    # methods a manifold shortcut.
    freqs = rng.uniform(2.0, 12.0, size=w)
    amps = rng.uniform(0.5, 1.5, size=w)
    pair_sign = rng.choice([-1.0, 1.0], size=(c, w))
    band_means = rng.uniform(-1.0, 1.0, size=(c, k, w, length)) * informative[
        None, None, :, None
    ]
    weak_offsets = rng.standard_normal((c, w, length)) * 0.25
    return _ClassSignatures(
        informative=informative,
        dc=dc,
        sigma=sigma,
        freqs=freqs,
        amps=amps,
        pair_sign=pair_sign,
        band_means=band_means,
        weak_offsets=weak_offsets,
    )


def _time_domain_samples(
    labels: np.ndarray,
    spec: SignalTaskSpec,
    rng: np.random.Generator,
    sig: _ClassSignatures,
) -> np.ndarray:
    n = len(labels)
    w, length = spec.window_count, spec.window_length
    t = np.arange(length) / length
    clusters = rng.integers(0, spec.clusters_per_class, size=n)

    # Noise with class-specific, power-normalized per-window scales.
    x = rng.standard_normal((n, w, length)) * (spec.noise * sig.sigma[labels])[:, :, None]
    # Linear component: cluster-structured per-window means.
    x += (spec.dc_strength * sig.dc[labels, clusters])[:, :, None]
    # Oscillations: class-independent band realism, random phase.
    if spec.oscillation_strength > 0:
        phases = rng.uniform(0, 2 * np.pi, size=(n, w))
        waves = np.sin(
            2 * np.pi * sig.freqs[None, :, None] * t[None, None, :]
            + phases[:, :, None]
        )
        x += spec.oscillation_strength * sig.amps[None, :, None] * waves
    # Coupling: a *fresh broadband carrier per sample* shared between
    # adjacent informative windows; only the relative sign is the class
    # signature.  Marginals and expected distances are class-free — only
    # within-sample feature interactions reveal it.
    if spec.coupling_strength > 0:
        for wi in range(w - 1):
            if sig.informative[wi] and sig.informative[wi + 1]:
                carrier = rng.standard_normal((n, length))
                signs = sig.pair_sign[labels, wi][:, None]
                x[:, wi] += spec.coupling_strength * carrier
                x[:, wi + 1] += signs * spec.coupling_strength * carrier
    if spec.distributed_weak_features:
        x += sig.weak_offsets[labels]
    return x


def _frequency_domain_samples(
    labels: np.ndarray,
    spec: SignalTaskSpec,
    rng: np.random.Generator,
    sig: _ClassSignatures,
) -> np.ndarray:
    """Log-scaled band-power features (Gaussian around class prototypes).

    Band powers are log-scaled, the standard preprocessing for EEG
    spectral features; raw powers would waste most of the M=256 quantizer
    range on the log-normal tail.
    """
    n = len(labels)
    w, length = spec.window_count, spec.window_length
    clusters = rng.integers(0, spec.clusters_per_class, size=n)
    log_power = spec.oscillation_strength * sig.band_means[labels, clusters]
    log_power = log_power + rng.standard_normal((n, w, length)) * (
        spec.noise * 0.5 * sig.sigma[labels][:, :, None]
    )
    if spec.coupling_strength > 0:
        for wi in range(w - 1):
            if sig.informative[wi] and sig.informative[wi + 1]:
                shared = rng.standard_normal((n, length))
                signs = sig.pair_sign[labels, wi][:, None]
                log_power[:, wi] += spec.coupling_strength * shared
                log_power[:, wi + 1] += signs * spec.coupling_strength * shared
    if spec.distributed_weak_features:
        log_power = log_power + 0.5 * sig.weak_offsets[labels]
    return log_power


def generate_signal_task(
    spec: SignalTaskSpec, n_train: int, n_test: int, seed: int = 0
) -> SyntheticDataset:
    """Generate a deterministic train/test split for ``spec``."""
    rng = np.random.default_rng(seed)
    signatures = _draw_signatures(spec, rng)
    y_train = _class_labels(n_train, spec, rng)
    y_test = _class_labels(n_test, spec, rng)
    sampler = (
        _time_domain_samples if spec.domain == "time" else _frequency_domain_samples
    )
    x_train = sampler(y_train, spec, rng, signatures)
    x_test = sampler(y_test, spec, rng, signatures)
    return SyntheticDataset(
        spec=spec,
        x_train=x_train.astype(np.float64),
        y_train=y_train.astype(np.int64),
        x_test=x_test.astype(np.float64),
        y_test=y_test.astype(np.int64),
        informative_windows=signatures.informative,
    )
