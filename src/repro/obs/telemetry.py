"""Cross-process metric harvest: worker registries, deltas, merge.

Everything executed inside a process-pool worker lives in another
process, so the parent's :class:`~repro.obs.registry.MetricsRegistry`
never sees it — the worker-side ``packed.*`` stage timers, kernel
gauges, and chaos events were a blind spot.  This module closes it with
a small, explicit protocol:

1. **Install** — the pool initializer calls
   :func:`install_worker_telemetry` *after* engine construction, so each
   worker records into its own private registry (and, optionally, a
   deterministically sampled tracer) without capturing one-time init
   work that a serial run would not record either.
2. **Ship** — after each task the worker calls
   :func:`drain_worker_delta`, which snapshots its registry **and resets
   it**, and piggybacks the serialized delta on the task's result tuple.
   Reset-after-ship means every delta is shipped at most once: a future
   whose result is discarded (timeout, broken pool, cancelled sibling)
   simply loses its delta, and nothing is ever double-counted.
3. **Merge** — the parent calls :func:`merge_delta` on each collected
   result: counters sum, histogram reservoirs merge (count/total exact,
   samples re-offered), and gauges land *tagged per worker pid*
   (``kernels.popcount_native.w1234``) because summing last-write-wins
   values across processes is meaningless.
4. **Drain on close** — a :class:`concurrent.futures.ProcessPoolExecutor`
   cannot address individual workers, so :func:`drain_pool` submits a
   batch of no-op :func:`drain_task` jobs and merges whatever comes
   back.  A worker that picks up two drains returns an empty second
   delta (reset-after-ship is idempotent); a worker that picks up none
   loses its residue, matching the lost-future semantics above.

The protocol is exercised by ``runtime/batch.py``,
``runtime/resilience.py``, and ``search/engine.py``; its determinism
contract (serial ≡ thread ≡ process merged totals) is pinned by
``tests/obs/test_telemetry.py``.
"""

from __future__ import annotations

import os
from collections import deque

from .registry import MetricsRegistry, NullRegistry, get_registry, set_registry
from .trace import Tracer, set_tracer, trace_to_dict

__all__ = [
    "WORKER_GAUGE_SEP",
    "install_worker_telemetry",
    "worker_telemetry_installed",
    "registry_delta",
    "drain_worker_delta",
    "merge_delta",
    "drain_task",
    "drain_pool",
    "recent_worker_traces",
    "worker_trace_rate",
]

#: Gauge names merge as ``f"{name}{WORKER_GAUGE_SEP}{pid}"``.
WORKER_GAUGE_SEP = ".w"

#: Max worker-shipped traces retained parent-side (oldest dropped).
MAX_WORKER_TRACES = 256

#: Max traces shipped per delta (bounds pickle size under high rates).
_TRACES_PER_DELTA = 8

# Worker-side state: the private registry/tracer installed by the pool
# initializer.  ``None`` in the parent and in workers whose pool was
# built while observability was off.
_worker_registry: MetricsRegistry | None = None
_worker_tracer: Tracer | None = None

# Parent-side: traces shipped up from workers, newest last.
_worker_traces: deque = deque(maxlen=MAX_WORKER_TRACES)


def worker_trace_rate(environ=None) -> float:
    """Sampling rate for worker-side tracers (``REPRO_WORKER_TRACE_RATE``,
    default 0.0 = tracing off in workers)."""
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_WORKER_TRACE_RATE")
    if raw is None or not str(raw).strip():
        return 0.0
    try:
        return min(1.0, max(0.0, float(raw)))
    except (TypeError, ValueError):
        return 0.0


def install_worker_telemetry(
    enabled: bool = True, trace_sample_rate: float | None = None
) -> None:
    """Install a private recording registry (and sampled tracer) here.

    Called from pool-worker initializers, *after* engine construction so
    init-time work stays out of the deltas — that is what keeps merged
    process-run totals identical to serial/thread runs.  With
    ``enabled=False`` (the pool was built while the parent registry was
    the null registry) nothing is installed and the worker keeps the
    zero-overhead path.
    """
    global _worker_registry, _worker_tracer
    if not enabled:
        _worker_registry = None
        _worker_tracer = None
        return
    registry = MetricsRegistry()
    set_registry(registry)
    _worker_registry = registry
    rate = worker_trace_rate() if trace_sample_rate is None else trace_sample_rate
    if rate > 0.0:
        tracer = Tracer(sample_rate=rate)
        set_tracer(tracer)
        _worker_tracer = tracer
    else:
        _worker_tracer = None


def worker_telemetry_installed() -> bool:
    """True inside a worker that has a recording registry installed."""
    return _worker_registry is not None


def registry_delta(
    registry: MetricsRegistry | NullRegistry, *, reset: bool = False
) -> dict:
    """Serializable snapshot of ``registry``'s full state.

    With ``reset=True`` the registry is cleared after the snapshot
    (ship-and-reset).  The two steps are not atomic — a recording that
    lands between them is lost — which is fine in pool workers, where
    tasks run one at a time on the worker's only thread.
    """
    counters = {name: c.value for name, c in registry.counters().items()}
    gauges = {name: g.value for name, g in registry.gauges().items()}
    histograms = {
        name: {
            "samples": h.samples(),
            "count": h.count,
            "total_s": h.total_seconds,
        }
        for name, h in registry.histograms().items()
    }
    if reset:
        registry.reset()
    return {
        "pid": os.getpid(),
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def drain_worker_delta() -> dict | None:
    """Ship-and-reset this worker's accumulated metrics (and traces).

    Returns ``None`` when no worker telemetry is installed, so the
    piggyback slot on result tuples costs nothing when observability is
    off.
    """
    registry = _worker_registry
    if registry is None:
        return None
    delta = registry_delta(registry, reset=True)
    tracer = _worker_tracer
    if tracer is not None:
        traces = tracer.to_dicts()
        if traces:
            delta["traces"] = traces[-_TRACES_PER_DELTA:]
        tracer.reset()
    return delta


def merge_delta(
    registry: MetricsRegistry | NullRegistry, delta: dict | None
) -> bool:
    """Fold one worker delta into ``registry``.

    Counters sum; histograms merge exactly on count/total and by
    reservoir re-offer on samples; gauges are written under a
    per-worker-pid suffix (never summed).  Worker traces are parked in
    the parent-side buffer (:func:`recent_worker_traces`).  Returns True
    when anything was merged.
    """
    if delta is None or not getattr(registry, "enabled", False):
        return False
    merged = False
    for name, value in delta.get("counters", {}).items():
        if value:
            registry.counter(name).add(int(value))
            merged = True
    pid = delta.get("pid")
    tag = f"{WORKER_GAUGE_SEP}{pid}" if pid is not None else ""
    for name, value in delta.get("gauges", {}).items():
        registry.gauge(name + tag).set(value)
        merged = True
    for name, entry in delta.get("histograms", {}).items():
        count = int(entry.get("count", 0))
        if count:
            registry.histogram(name).merge_samples(
                entry.get("samples", []), count, float(entry.get("total_s", 0.0))
            )
            merged = True
    for trace in delta.get("traces", ()):
        trace = dict(trace)
        if pid is not None:
            trace["worker_pid"] = pid
        _worker_traces.append(trace)
        merged = True
    return merged


def recent_worker_traces() -> list[dict]:
    """Traces shipped up from workers, oldest first (bounded buffer)."""
    return list(_worker_traces)


def drain_task(_index: int = 0) -> dict | None:
    """Picklable pool task shipping this worker's outstanding delta."""
    return drain_worker_delta()


def drain_pool(
    executor, registry, n_tasks: int, timeout_s: float = 5.0
) -> int:
    """Best-effort drain of a process pool's workers into ``registry``.

    ``ProcessPoolExecutor`` cannot address individual workers, so this
    submits ``n_tasks`` (usually the pool width) drain jobs and merges
    whatever returns within ``timeout_s``.  Duplicate drains are
    harmless (the second returns an empty delta); a worker that picks up
    no drain keeps its residue, which is then lost with the pool — the
    same at-most-once semantics as every other delta.  Returns the
    number of non-empty deltas merged; a broken or closed pool drains
    zero, never raises.
    """
    if not getattr(registry, "enabled", False) or n_tasks <= 0:
        return 0
    merged = 0
    try:
        futures = [executor.submit(drain_task, i) for i in range(n_tasks)]
    except Exception:  # noqa: BLE001 — closed/broken pool: nothing to drain
        return 0
    for future in futures:
        try:
            delta = future.result(timeout=timeout_s)
        except Exception:  # noqa: BLE001 — crashed/hung worker loses its residue
            continue
        if merge_delta(registry, delta):
            merged += 1
    return merged
