"""Persistent run ledger + perf/accuracy regression gate.

Every benchmark / profile / training / search run appends one JSON line
to a ledger (``benchmarks/results/ledger.jsonl`` by convention): the
configuration and its hash, the git revision, the budget knobs from the
environment, the accuracy metrics, the per-stage latency breakdown from
the active metrics registry, and a soft-vote margin summary.  The ledger
is what turns individual runs into a *trajectory*: ``write_trajectories``
folds it into one ``BENCH_<task>.json`` per task, and ``compare_records``
diffs a run against a baseline with per-metric thresholds — accuracy may
not drop by more than ``max_accuracy_drop``, and no stage's p95 latency
may exceed the baseline's by more than ``max_p95_regression`` (a ratio:
0.5 means 50% slower fails).  ``python -m repro obs compare`` drives the
comparison and exits nonzero on regression, which is what CI gates on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

from .export import stage_breakdown
from .registry import MetricsRegistry, NullRegistry

__all__ = [
    "DEFAULT_LEDGER_PATH",
    "MARGIN_HISTOGRAM",
    "FUSED_NAMESPACE",
    "INTEGRITY_NAMESPACE",
    "RESILIENCE_NAMESPACE",
    "SEARCH_NAMESPACE",
    "SERVE_NAMESPACE",
    "SHM_NAMESPACE",
    "SLO_NAMESPACE",
    "TRAFFIC_NAMESPACE",
    "RunRecord",
    "Ledger",
    "config_hash",
    "git_rev",
    "budget_env",
    "record_run",
    "MetricCheck",
    "ComparisonReport",
    "compare_records",
    "write_trajectories",
]

DEFAULT_LEDGER_PATH = Path("benchmarks") / "results" / "ledger.jsonl"

#: Histogram the datapaths record top1-top2 soft-vote score gaps into.
#: Deliberately outside the ``packed.``/``artifacts.`` namespaces so the
#: stage share computation never counts it as wall time.
MARGIN_HISTOGRAM = "quality.soft_vote_margin"

#: Histogram namespaces whose entries are stage *latencies* (and may
#: therefore be gated on p95 by the comparator).
STAGE_NAMESPACES = (
    "packed",
    "artifacts",
    "stream",
    "hwsim",
    "train",
    "search",
    "ldc",
    "batch",
    "serve",
)

#: Counter/gauge namespace the resilience layer records failure handling
#: into.  Harvested verbatim into every record's metrics, so a degraded
#: run (retries, engine fallbacks, quarantined samples, an open breaker)
#: is marked in the ledger without the caller threading the counts
#: through by hand.
RESILIENCE_NAMESPACE = "resilience."

#: Counter/gauge namespace the co-design search engine records into
#: (``search.cache.{hit,miss}``, ``search.workers``, ``search.retries``,
#: ...).  Harvested the same way, so every ``kind="search"`` ledger
#: record carries its worker count and cache economics.
SEARCH_NAMESPACE = "search."

#: Counter/gauge namespace the micro-batching serve front end records
#: into (``serve.{requests,accepted,rejected,answered,failed,
#: quarantined}``, ``serve.flush.*``, ``serve.queue_depth``, ...).
#: Harvested the same way, so a ``task="serve"`` ledger record carries
#: its admission-control accounting — shed requests included — without
#: the bench threading the counts through by hand.
SERVE_NAMESPACE = "serve."

#: Counter namespace the zero-copy shard handoff records into
#: (``batch.shm.{segments,bytes_shared,attach}`` plus the non-shm path's
#: ``batch.bytes_pickled``).  Harvested into every record, so a serve or
#: chaos ledger entry shows whether batches moved by name or by pickle —
#: and how many segments a crash-recovery run had to re-share.
SHM_NAMESPACE = "batch.shm."

#: Counter/gauge namespace the fused single-pass datapath records into
#: (``packed.fused.{tiles,tile_size}`` and the published analytic
#: roofline gauges ``packed.traffic.*``).  Harvested so data-movement
#: regressions are gateable next to throughput.
FUSED_NAMESPACE = "packed.fused."
TRAFFIC_NAMESPACE = "packed.traffic."

#: Gauge namespace :meth:`repro.obs.slo.SLOTracker.publish` mirrors the
#: error-budget state into (``slo.budget_consumed``, ``slo.burn_rate_*``,
#: ``slo.objective.*``, ...).  Harvested into every record, which is what
#: lets ``repro obs compare --max-budget-burn`` gate a run on how much
#: SLO budget it burned.
SLO_NAMESPACE = "slo."

#: Counter/gauge namespace the artifact-integrity layer records into
#: (``integrity.{scrubs,mismatches,repairs,repair_failures,corruptions,
#: corrupt_bits}`` plus the soft-vote margin-window gauges).  Harvested
#: into every record, so a serving run shows how often resident memory
#: decayed, how often the scrubber healed it, and what the corruption
#: cost in decision margin.
INTEGRITY_NAMESPACE = "integrity."


def config_hash(config) -> str:
    """Stable short hash of a run configuration.

    Accepts a dataclass (e.g. ``UniVSAConfig``), a mapping, or any
    JSON-serializable value; identical configurations hash identically
    across processes and sessions.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
    else:
        payload = config
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def git_rev() -> str:
    """Current short git revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def budget_env() -> dict[str, str]:
    """The ``REPRO_*`` budget knobs present in the environment."""
    return {
        key: value
        for key, value in sorted(os.environ.items())
        if key.startswith("REPRO_")
    }


@dataclass
class RunRecord:
    """One ledger line: everything needed to compare runs later."""

    kind: str  # "bench" | "profile" | "train" | "search"
    task: str
    timestamp: float
    run_id: str
    git_rev: str
    config: dict = field(default_factory=dict)
    config_hash: str = ""
    env: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    stages: dict = field(default_factory=dict)
    margin: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-serializable view (one ledger line)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        """Inverse of :meth:`as_dict`; tolerant of missing optional keys."""
        return cls(
            kind=payload.get("kind", "unknown"),
            task=payload.get("task", "unknown"),
            timestamp=float(payload.get("timestamp", 0.0)),
            run_id=payload.get("run_id", ""),
            git_rev=payload.get("git_rev", "unknown"),
            config=payload.get("config", {}) or {},
            config_hash=payload.get("config_hash", ""),
            env=payload.get("env", {}) or {},
            metrics=payload.get("metrics", {}) or {},
            stages=payload.get("stages", {}) or {},
            margin=payload.get("margin", {}) or {},
        )


class Ledger:
    """Append-only JSONL store of :class:`RunRecord` lines."""

    def __init__(self, path: str | os.PathLike = DEFAULT_LEDGER_PATH) -> None:
        self.path = Path(path)

    def append(self, record: RunRecord) -> RunRecord:
        """Append one record (creating parent directories as needed)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
        return record

    def read(self) -> list[RunRecord]:
        """All records, oldest first (missing file reads as empty)."""
        if not self.path.exists():
            return []
        records = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(RunRecord.from_dict(json.loads(line)))
        return records

    def latest(
        self, task: str | None = None, kind: str | None = None, offset: int = 0
    ) -> RunRecord | None:
        """Newest matching record; ``offset=1`` is the one before it."""
        matches = [
            r
            for r in self.read()
            if (task is None or r.task == task) and (kind is None or r.kind == kind)
        ]
        if len(matches) <= offset:
            return None
        return matches[-1 - offset]

    def tasks(self) -> list[str]:
        """Distinct task names, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.read():
            seen.setdefault(record.task, None)
        return list(seen)


def _stage_summaries(registry: MetricsRegistry | NullRegistry) -> dict:
    stages: dict = {}
    for namespace in STAGE_NAMESPACES:
        stages.update(stage_breakdown(registry, prefix=namespace + "."))
    return stages


def record_run(
    kind: str,
    task: str,
    *,
    config=None,
    metrics: dict | None = None,
    registry: MetricsRegistry | NullRegistry | None = None,
    ledger_path: str | os.PathLike | None = None,
    timestamp: float | None = None,
) -> RunRecord:
    """Build one :class:`RunRecord` and append it to the ledger.

    ``config`` may be a dataclass or dict; ``registry`` contributes the
    per-stage latency breakdown and the soft-vote margin summary.  Pass
    ``ledger_path=None`` for the default ``benchmarks/results/ledger.jsonl``.
    """
    now = time.time() if timestamp is None else timestamp
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        config_payload = dataclasses.asdict(config)
    else:
        config_payload = dict(config) if config else {}
    stages: dict = {}
    margin: dict = {}
    all_metrics = dict(metrics or {})
    if registry is not None and registry.enabled:
        stages = _stage_summaries(registry)
        margin_hist = registry.histograms().get(MARGIN_HISTOGRAM)
        if margin_hist is not None:
            margin = margin_hist.summary()
        harvested = dict(registry.counter_values(RESILIENCE_NAMESPACE))
        harvested.update(registry.gauge_values(RESILIENCE_NAMESPACE))
        harvested.update(registry.counter_values(SEARCH_NAMESPACE))
        harvested.update(registry.gauge_values(SEARCH_NAMESPACE))
        harvested.update(registry.counter_values(SERVE_NAMESPACE))
        harvested.update(registry.gauge_values(SERVE_NAMESPACE))
        harvested.update(registry.counter_values(SLO_NAMESPACE))
        harvested.update(registry.gauge_values(SLO_NAMESPACE))
        harvested.update(registry.counter_values(INTEGRITY_NAMESPACE))
        harvested.update(registry.gauge_values(INTEGRITY_NAMESPACE))
        harvested.update(registry.counter_values(SHM_NAMESPACE))
        harvested.update(registry.counter_values(FUSED_NAMESPACE))
        harvested.update(registry.gauge_values(FUSED_NAMESPACE))
        harvested.update(registry.gauge_values(TRAFFIC_NAMESPACE))
        for name, value in harvested.items():
            all_metrics.setdefault(name, value)
    record = RunRecord(
        kind=kind,
        task=task,
        timestamp=now,
        run_id=f"{kind}-{task}-{int(now * 1000)}",
        git_rev=git_rev(),
        config=config_payload,
        config_hash=config_hash(config_payload),
        env=budget_env(),
        metrics=all_metrics,
        stages=stages,
        margin=margin,
    )
    ledger = Ledger(DEFAULT_LEDGER_PATH if ledger_path is None else ledger_path)
    ledger.append(record)
    return record


# ---------------------------------------------------------------------------
# comparison (the regression gate)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MetricCheck:
    """One thresholded comparison between a run and its baseline."""

    name: str
    kind: str  # "accuracy" (higher is better) | "p95" (lower is better)
    current: float
    baseline: float
    limit: float  # the worst acceptable current value
    ok: bool


@dataclass
class ComparisonReport:
    """All checks of one run-vs-baseline comparison."""

    current_id: str
    baseline_id: str
    checks: list[MetricCheck] = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        """True when any check failed."""
        return any(not check.ok for check in self.checks)

    def failures(self) -> list[MetricCheck]:
        """The failing checks."""
        return [check for check in self.checks if not check.ok]

    def render(self) -> str:
        """Text table of every check."""
        from repro.utils.tables import render_table

        rows = []
        for check in self.checks:
            scale = 1e3 if check.kind == "p95" else 1.0
            unit = " ms" if check.kind == "p95" else ""
            rows.append(
                [
                    check.name,
                    check.kind,
                    f"{check.current * scale:.4f}{unit}",
                    f"{check.baseline * scale:.4f}{unit}",
                    f"{check.limit * scale:.4f}{unit}",
                    "ok" if check.ok else "REGRESSED",
                ]
            )
        title = (
            f"run {self.current_id} vs baseline {self.baseline_id} — "
            + ("REGRESSED" if self.regressed else "ok")
        )
        return render_table(
            ["metric", "kind", "current", "baseline", "limit", "verdict"],
            rows,
            title=title,
        )


def compare_records(
    current: RunRecord,
    baseline: RunRecord,
    max_accuracy_drop: float = 0.02,
    max_p95_regression: float = 0.5,
    max_throughput_drop: float = 0.5,
    max_budget_burn: float | None = None,
) -> ComparisonReport:
    """Threshold-diff ``current`` against ``baseline``.

    Accuracy-style metrics (names containing ``accuracy``) fail when they
    drop more than ``max_accuracy_drop`` below the baseline.  Rate-style
    metrics (names containing ``per_s`` or ``throughput``; higher is
    better) fail when ``current < baseline * (1 - max_throughput_drop)``.
    Stage p95 latencies fail when
    ``current > baseline * (1 + max_p95_regression)``.  Metrics present
    on only one side are skipped — a baseline can gate accuracy alone by
    omitting ``stages``.

    With ``max_budget_burn`` set, the run's harvested SLO state
    (``slo.budget_consumed``, see :data:`SLO_NAMESPACE`) is gated as an
    *absolute* threshold on the current record alone — no baseline value
    needed, because the budget objective is stated by the SLO itself.
    """
    report = ComparisonReport(
        current_id=current.run_id or "current",
        baseline_id=baseline.run_id or "baseline",
    )
    for name in sorted(baseline.metrics):
        if "accuracy" not in name or name not in current.metrics:
            continue
        base = float(baseline.metrics[name])
        cur = float(current.metrics[name])
        limit = base - max_accuracy_drop
        report.checks.append(
            MetricCheck(name, "accuracy", cur, base, limit, cur >= limit - 1e-12)
        )
    for name in sorted(baseline.metrics):
        if ("per_s" not in name and "throughput" not in name) or (
            name not in current.metrics
        ):
            continue
        base = float(baseline.metrics[name])
        if base <= 0.0:
            continue
        cur = float(current.metrics[name])
        limit = base * (1.0 - max_throughput_drop)
        report.checks.append(
            MetricCheck(name, "throughput", cur, base, limit, cur >= limit - 1e-12)
        )
    for stage in sorted(baseline.stages):
        if stage not in current.stages:
            continue
        base = float(baseline.stages[stage].get("p95_s", 0.0))
        cur = float(current.stages[stage].get("p95_s", 0.0))
        if base <= 0.0:
            continue
        limit = base * (1.0 + max_p95_regression)
        report.checks.append(
            MetricCheck(stage, "p95", cur, base, limit, cur <= limit + 1e-12)
        )
    if max_budget_burn is not None:
        name = "slo.budget_consumed"
        cur = float(current.metrics.get(name, 0.0))
        base = float(baseline.metrics.get(name, 0.0))
        report.checks.append(
            MetricCheck(
                name, "budget", cur, base, max_budget_burn,
                cur <= max_budget_burn + 1e-12,
            )
        )
    return report


# ---------------------------------------------------------------------------
# trajectories (BENCH_<task>.json)
# ---------------------------------------------------------------------------
def _trajectory_point(record: RunRecord) -> dict:
    return {
        "timestamp": record.timestamp,
        "run_id": record.run_id,
        "kind": record.kind,
        "git_rev": record.git_rev,
        "config_hash": record.config_hash,
        "metrics": record.metrics,
        "p95_s": {name: entry.get("p95_s", 0.0) for name, entry in record.stages.items()},
        "margin_mean": record.margin.get("mean_s", 0.0),
    }


def write_trajectories(
    ledger: Ledger, out_dir: str | os.PathLike, task: str | None = None
) -> list[Path]:
    """Fold the ledger into one ``BENCH_<task>.json`` per task.

    Each trajectory file holds every recorded point for the task, oldest
    first, plus the latest point duplicated under ``"latest"`` for cheap
    dashboard reads.  Returns the paths written.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    by_task: dict[str, list[RunRecord]] = {}
    for record in ledger.read():
        if task is not None and record.task != task:
            continue
        by_task.setdefault(record.task, []).append(record)
    written = []
    for name, records in by_task.items():
        points = [_trajectory_point(r) for r in records]
        path = out / f"BENCH_{name}.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {"task": name, "n_runs": len(points), "points": points, "latest": points[-1]},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        written.append(path)
    return written
