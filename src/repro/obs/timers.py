"""Stage timing: a context manager / decorator recording into the registry.

``stage_timer("packed.biconv")`` wraps a datapath stage; the elapsed wall
time lands in the active registry's latency histogram of that name.  When
a tracer is active (``repro.obs.trace``) the same block also becomes a
child span of whatever span is currently open, so the stage timers double
as the skeleton of request-level traces.  When both the null registry and
the null tracer are active the timer takes neither a clock reading nor a
histogram lookup — the hot path pays two attribute reads and branches.
"""

from __future__ import annotations

import functools
from time import perf_counter
from typing import Callable

from .registry import get_registry
from .trace import get_tracer

__all__ = ["stage_timer"]


class stage_timer:
    """Time a named stage into the active registry (and active trace).

    Usable both ways::

        with stage_timer("packed.encode"):
            ...

        @stage_timer("train.epoch")
        def run_epoch(...): ...

    The registry and tracer are looked up at ``__enter__`` (not
    construction), so a timer object or decorated function respects
    whatever registry/tracer is active at call time.
    """

    __slots__ = ("name", "_registry", "_tracer", "_span", "_start")

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self) -> "stage_timer":
        registry = get_registry()
        tracer = get_tracer()
        self._registry = registry if registry.enabled else None
        if tracer.enabled:
            self._tracer = tracer
            self._span = tracer.open_span(self.name)
        else:
            self._tracer = None
            self._span = None
        if self._registry is not None or self._span is not None:
            self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        registry = self._registry
        span = self._span
        if registry is not None or span is not None:
            end = perf_counter()
            if registry is not None:
                registry.histogram(self.name).observe(end - self._start)
            if span is not None:
                if exc_type is not None:
                    # Same discipline as trace_span: a stage that raised
                    # is marked so retries are attributable in the tree.
                    attrs = span.attrs if span.attrs is not None else {}
                    attrs.setdefault("error", exc_type.__name__)
                    span.attrs = attrs
                self._tracer.close_span(span, self._start, end)
                return False
        if self._tracer is not None:
            # Tracer active but this subtree unsampled: balance the stack.
            self._tracer.close_span(None, 0.0, 0.0)
        return False

    def __call__(self, func: Callable) -> Callable:
        name = self.name

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with stage_timer(name):
                return func(*args, **kwargs)

        return wrapper
