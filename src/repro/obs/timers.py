"""Stage timing: a context manager / decorator recording into the registry.

``stage_timer("packed.biconv")`` wraps a datapath stage; the elapsed wall
time lands in the active registry's latency histogram of that name.  When
the null registry is active the timer takes neither a clock reading nor a
histogram lookup — the hot path pays one attribute read and a branch.
"""

from __future__ import annotations

import functools
from time import perf_counter
from typing import Callable

from .registry import get_registry

__all__ = ["stage_timer"]


class stage_timer:
    """Time a named stage into the active registry.

    Usable both ways::

        with stage_timer("packed.encode"):
            ...

        @stage_timer("train.epoch")
        def run_epoch(...): ...

    The registry is looked up at ``__enter__`` (not construction), so a
    timer object or decorated function respects whatever registry is
    active at call time.
    """

    __slots__ = ("name", "_registry", "_start")

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self) -> "stage_timer":
        registry = get_registry()
        if registry.enabled:
            self._registry = registry
            self._start = perf_counter()
        else:
            self._registry = None
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        registry = self._registry
        if registry is not None:
            registry.histogram(self.name).observe(perf_counter() - self._start)
        return False

    def __call__(self, func: Callable) -> Callable:
        name = self.name

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with stage_timer(name):
                return func(*args, **kwargs)

        return wrapper
