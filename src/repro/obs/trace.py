"""Request-level tracing: span trees over one classification end-to-end.

A *trace* is the tree of timed spans one request produced — a packed
``scores()`` call, one streaming decision, or one simulated hardware
sample.  Spans nest by runtime call structure: every
:class:`repro.obs.timers.stage_timer` site becomes a child span of
whatever span is open on the current thread, so the existing stage
instrumentation (``packed.*``, ``artifacts.*``, ``hwsim.*``,
``stream.decision``) doubles as the trace skeleton; explicit
:class:`trace_span` blocks add roots and request-level attributes
(batch size, soft-vote margin, modeled cycles).

The discipline matches the metrics registry exactly: the active tracer
defaults to :data:`NULL_TRACER`, and while it is active an instrumented
path pays one attribute read and a branch — no clock readings, no
allocations.  ``enable_tracing()`` / ``using_tracer(...)`` install a
real :class:`Tracer`, whose ``sample_rate`` decides deterministically
(a rate accumulator, no RNG) which *root* spans are recorded; children
always follow their root's decision, so a trace is either complete or
absent.

Traces export to JSONL (one trace per line) and render as an indented
tree in which the slowest child chain from the root — the critical
path — is flagged.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from contextlib import contextmanager
from time import perf_counter

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "using_tracer",
    "trace_span",
    "annotate_span",
    "trace_to_dict",
    "write_traces_jsonl",
    "read_traces_jsonl",
    "render_trace_tree",
    "slowest_path",
]


class Span:
    """One timed operation inside a trace."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start_s", "end_s", "attrs")

    def __init__(
        self,
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: int | None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = 0.0
        self.end_s = 0.0
        self.attrs: dict | None = None

    @property
    def duration_s(self) -> float:
        """Elapsed wall time of the span."""
        return self.end_s - self.start_s

    def as_dict(self) -> dict:
        """JSON-serializable view."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs) if self.attrs else {},
        }


class Tracer:
    """Collects span trees; thread-safe, bounded, deterministically sampled.

    ``sample_rate`` is the fraction of root spans recorded (1.0 = every
    request).  The decision is made per root with a rate accumulator, so
    a rate of 0.25 records exactly every 4th root — reproducible runs
    stay reproducible.  ``max_traces`` bounds memory: the oldest finished
    traces are dropped first.
    """

    enabled = True

    def __init__(self, sample_rate: float = 1.0, max_traces: int = 512) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.sample_rate = sample_rate
        self._finished: deque[list[Span]] = deque(maxlen=max_traces)
        self._open: dict[int, list[Span]] = {}
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_trace = 0
        self._next_span = 0
        self._sample_acc = 0.0
        self._dropped_roots = 0

    # -- span lifecycle (drives come from stage_timer / trace_span) ----
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def open_span(self, name: str, attrs: dict | None = None) -> Span | None:
        """Start a span under the current one; ``None`` when unsampled.

        The caller owns the clock: pass start/end to :meth:`close_span`.
        A ``None`` entry is still pushed for unsampled roots (and their
        descendants) so enter/exit pairs stay balanced.
        """
        stack = self._stack()
        if stack:
            parent = stack[-1]
            if parent is None:
                stack.append(None)
                return None
            with self._lock:
                span_id = self._next_span
                self._next_span += 1
            span = Span(name, parent.trace_id, span_id, parent.span_id)
            with self._lock:
                self._open[span.trace_id].append(span)
        else:
            with self._lock:
                self._sample_acc += self.sample_rate
                sampled = self._sample_acc >= 1.0 - 1e-12
                if sampled:
                    self._sample_acc -= 1.0
                else:
                    self._dropped_roots += 1
                    stack.append(None)
                    return None
                trace_id = self._next_trace
                self._next_trace += 1
                span_id = self._next_span
                self._next_span += 1
                span = Span(name, trace_id, span_id, None)
                self._open[trace_id] = [span]
        if attrs:
            span.attrs = dict(attrs)
        stack.append(span)
        return span

    def close_span(self, span: Span | None, start_s: float, end_s: float) -> None:
        """Finish ``span`` (or pop an unsampled placeholder)."""
        stack = self._stack()
        if stack:
            stack.pop()
        if span is None:
            return
        span.start_s = start_s
        span.end_s = end_s
        if span.parent_id is None:  # root closed: the trace is complete
            with self._lock:
                spans = self._open.pop(span.trace_id, None)
                if spans is not None:
                    self._finished.append(spans)

    def annotate(self, **attrs) -> None:
        """Attach attributes to the innermost open span (no-op outside one)."""
        stack = self._stack()
        if not stack or stack[-1] is None:
            return
        span = stack[-1]
        if span.attrs is None:
            span.attrs = {}
        span.attrs.update(attrs)

    def current_span(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- queries -------------------------------------------------------
    def traces(self) -> list[list[Span]]:
        """Finished traces, oldest first (each a list of spans, root first)."""
        with self._lock:
            return [list(spans) for spans in self._finished]

    @property
    def dropped_roots(self) -> int:
        """Root spans skipped by sampling."""
        return self._dropped_roots

    def to_dicts(self) -> list[dict]:
        """Finished traces as JSON-serializable dicts."""
        return [trace_to_dict(spans) for spans in self.traces()]

    def reset(self) -> None:
        """Drop all finished traces and the sampling state."""
        with self._lock:
            self._finished.clear()
            self._open.clear()
            self._sample_acc = 0.0
            self._dropped_roots = 0


class NullTracer:
    """Zero-overhead stand-in active by default."""

    enabled = False
    sample_rate = 0.0
    dropped_roots = 0

    def open_span(self, name: str, attrs: dict | None = None) -> None:
        """Never samples."""
        return None

    def close_span(self, span, start_s: float, end_s: float) -> None:
        """No state to finish."""

    def annotate(self, **attrs) -> None:
        """No span to annotate."""

    def current_span(self) -> None:
        """No open span."""
        return None

    def traces(self) -> list:
        """Always empty."""
        return []

    def to_dicts(self) -> list:
        """Always empty."""
        return []

    def reset(self) -> None:
        """No state to drop."""


NULL_TRACER = NullTracer()

_active: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The currently active tracer (the null tracer by default)."""
    return _active


def set_tracer(tracer: Tracer | NullTracer) -> None:
    """Install ``tracer`` as the active one."""
    global _active
    _active = tracer


def enable_tracing(tracer: Tracer | None = None) -> Tracer:
    """Activate tracing; returns the now-active tracer."""
    active = tracer if tracer is not None else Tracer()
    set_tracer(active)
    return active


def disable_tracing() -> None:
    """Restore the zero-overhead null tracer."""
    set_tracer(NULL_TRACER)


@contextmanager
def using_tracer(tracer: Tracer | NullTracer):
    """Temporarily make ``tracer`` the active one."""
    previous = get_tracer()
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


class trace_span:
    """Open a span for the ``with`` body (usually a trace root).

    Mirrors ``stage_timer``'s discipline: the tracer is looked up at
    ``__enter__``, and with the null tracer active (or the root
    unsampled) no clock is read.
    """

    __slots__ = ("name", "_attrs", "_tracer", "_span", "_start")

    def __init__(self, name: str, **attrs) -> None:
        self.name = name
        self._attrs = attrs or None

    def __enter__(self) -> "trace_span":
        tracer = get_tracer()
        if tracer.enabled:
            self._tracer = tracer
            self._span = tracer.open_span(self.name, self._attrs)
            if self._span is not None:
                self._start = perf_counter()
        else:
            self._tracer = None
            self._span = None
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        if tracer is not None:
            span = self._span
            if span is not None:
                if exc_type is not None:
                    # A span that ends by exception carries the error
                    # class, so failed/retried work is visible in the
                    # rendered tree and the JSONL export.
                    attrs = span.attrs if span.attrs is not None else {}
                    attrs.setdefault("error", exc_type.__name__)
                    span.attrs = attrs
                tracer.close_span(span, self._start, perf_counter())
            else:
                tracer.close_span(None, 0.0, 0.0)
        return False


def annotate_span(**attrs) -> None:
    """Attach attributes to the innermost open span of the active tracer."""
    tracer = get_tracer()
    if tracer.enabled:
        tracer.annotate(**attrs)


# ---------------------------------------------------------------------------
# export / import / rendering
# ---------------------------------------------------------------------------
def trace_to_dict(spans: list[Span]) -> dict:
    """One finished trace as a JSON-serializable dict (root first)."""
    root = spans[0]
    return {
        "trace_id": root.trace_id,
        "root": root.name,
        "duration_s": root.duration_s,
        "spans": [span.as_dict() for span in spans],
    }


def write_traces_jsonl(
    traces: Tracer | list[dict], path: str | os.PathLike
) -> int:
    """Write traces (a tracer or pre-built dicts) as JSONL; returns count."""
    payload = traces.to_dicts() if isinstance(traces, (Tracer, NullTracer)) else traces
    with open(path, "w", encoding="utf-8") as handle:
        for trace in payload:
            handle.write(json.dumps(trace, sort_keys=True) + "\n")
    return len(payload)


def read_traces_jsonl(path: str | os.PathLike) -> list[dict]:
    """Read traces written by :func:`write_traces_jsonl`."""
    traces = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                traces.append(json.loads(line))
    return traces


def _children_index(trace: dict) -> dict:
    children: dict = {}
    for span in trace["spans"]:
        children.setdefault(span["parent_id"], []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s["start_s"])
    return children


def slowest_path(trace: dict) -> list[int]:
    """Span ids on the critical chain: from the root, always descend into
    the slowest child."""
    children = _children_index(trace)
    root = children.get(None, [None])[0]
    if root is None:
        return []
    path = [root["span_id"]]
    node = root
    while True:
        below = children.get(node["span_id"])
        if not below:
            return path
        node = max(below, key=lambda s: s["duration_s"])
        path.append(node["span_id"])


def _format_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    parts = []
    if "modeled_cycles" in attrs:
        parts.append(f"modeled={int(attrs['modeled_cycles'])} cyc")
    for key in sorted(attrs):
        if key == "modeled_cycles":
            continue
        value = attrs[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return "  [" + ", ".join(parts) + "]"


def render_trace_tree(trace: dict) -> str:
    """Indented text tree of one trace; ``*`` flags the slowest path.

    ``hwsim.*`` spans carry ``modeled_cycles`` attributes, so the tree
    shows the cycle model's prediction next to the measured wall time of
    the very same stage execution.
    """
    children = _children_index(trace)
    critical = set(slowest_path(trace))
    lines = [
        f"trace {trace['trace_id']} — {trace['root']}  "
        f"{trace['duration_s'] * 1e3:.3f} ms  (* = slowest path)"
    ]

    def walk(span: dict, depth: int) -> None:
        marker = " *" if span["span_id"] in critical else ""
        lines.append(
            f"{'  ' * depth}- {span['name']}  "
            f"{span['duration_s'] * 1e3:.3f} ms"
            f"{_format_attrs(span.get('attrs') or {})}{marker}"
        )
        for child in children.get(span["span_id"], []):
            walk(child, depth + 1)

    root = children.get(None, [None])[0]
    if root is not None:
        walk(root, 0)
    return "\n".join(lines)
