"""repro.obs — stage-level observability for the packed datapath.

A dependency-free metrics registry (counters, gauges, latency histograms
with p50/p95/p99), a ``stage_timer`` context manager / decorator, and
exporters that turn registry state into JSON or text tables.

The active registry defaults to :data:`NULL_REGISTRY`, whose instruments
are shared no-ops — instrumented hot paths are zero-overhead until
:func:`enable` (or :func:`using_registry`) installs a real
:class:`MetricsRegistry`.  ``python -m repro profile <benchmark>`` and
the benchmark harness are the two built-in consumers.
"""

from .export import (
    render_stage_table,
    snapshot,
    stage_breakdown,
    to_json,
    write_json,
)
from .profile import ProfileReport, profile_benchmark
from .registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    get_registry,
    set_registry,
    using_registry,
)
from .timers import stage_timer

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "enable",
    "disable",
    "using_registry",
    "stage_timer",
    "snapshot",
    "stage_breakdown",
    "to_json",
    "write_json",
    "render_stage_table",
    "ProfileReport",
    "profile_benchmark",
]
