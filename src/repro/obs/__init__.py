"""repro.obs — observability for the packed datapath, end to end.

Five layers, all dependency-free and all zero-overhead until enabled:

* **Metrics** (:mod:`.registry`, :mod:`.timers`, :mod:`.export`): a
  registry of counters, gauges, and latency histograms with p50/p95/p99,
  recorded by ``stage_timer`` sites throughout the datapath, exported as
  JSON or text tables.
* **Traces** (:mod:`.trace`): span trees covering one classification
  end-to-end — every ``stage_timer`` site doubles as a child span, with
  explicit roots around packed ``scores()``, streaming decisions, and
  simulated hardware samples (the latter annotated with modeled cycles
  so a trace shows the cycle model next to measured wall time).
  Deterministic sampling, JSONL export, rendered span trees flagging the
  slowest path (``python -m repro trace``).
* **Ledger** (:mod:`.ledger`): every benchmark/profile/train/search run
  appends one record (config + hash, git rev, budget env, accuracy,
  stage breakdown, soft-vote margins) to
  ``benchmarks/results/ledger.jsonl``; ``python -m repro obs compare``
  diffs the latest run against a baseline with per-metric thresholds and
  folds the ledger into ``BENCH_<task>.json`` trajectory files.
* **Worker telemetry** (:mod:`.telemetry`): pool workers record into
  private registries installed by the pool initializer, ship
  reset-after-snapshot deltas back on each result, and the parent merges
  them — counters sum, histograms merge exactly, gauges are tagged
  per-worker (``name.w<pid>``) — so process-executor runs surface real
  worker-side stage time with at-most-once accounting even across pool
  crashes.
* **SLO tracking** (:mod:`.slo`): a latency/availability objective
  (``REPRO_SLO_*`` env) with rolling-window error-budget accounting and
  fast/slow burn rates, published as ``slo.*`` gauges into the registry
  — visible live on the serve admin endpoint (``repro top``), harvested
  into ledger records, and gated by
  ``repro obs compare --max-budget-burn``.

The active registry and tracer default to :data:`NULL_REGISTRY` /
:data:`NULL_TRACER`, whose instruments are shared no-ops — instrumented
hot paths take no clock readings and make no allocations until
:func:`enable` / :func:`enable_tracing` (or the ``using_*`` context
managers) install real collectors.
"""

from .export import (
    record_to_prometheus,
    render_stage_table,
    snapshot,
    stage_breakdown,
    to_json,
    to_prometheus,
    write_json,
)
from .ledger import (
    DEFAULT_LEDGER_PATH,
    INTEGRITY_NAMESPACE,
    MARGIN_HISTOGRAM,
    SLO_NAMESPACE,
    ComparisonReport,
    Ledger,
    MetricCheck,
    RunRecord,
    budget_env,
    compare_records,
    config_hash,
    git_rev,
    record_run,
    write_trajectories,
)
from .slo import SLO, SLOTracker
from .telemetry import (
    WORKER_GAUGE_SEP,
    drain_pool,
    drain_worker_delta,
    install_worker_telemetry,
    merge_delta,
    recent_worker_traces,
    registry_delta,
)
from .profile import ProfileReport, profile_benchmark
from .registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    get_registry,
    set_registry,
    using_registry,
)
from .timers import stage_timer
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    annotate_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    read_traces_jsonl,
    render_trace_tree,
    set_tracer,
    slowest_path,
    trace_span,
    trace_to_dict,
    using_tracer,
    write_traces_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "enable",
    "disable",
    "using_registry",
    "stage_timer",
    "snapshot",
    "stage_breakdown",
    "to_json",
    "to_prometheus",
    "record_to_prometheus",
    "write_json",
    "render_stage_table",
    "ProfileReport",
    "profile_benchmark",
    # cross-process telemetry
    "WORKER_GAUGE_SEP",
    "install_worker_telemetry",
    "registry_delta",
    "drain_worker_delta",
    "merge_delta",
    "drain_pool",
    "recent_worker_traces",
    # SLO / error budgets
    "SLO",
    "SLOTracker",
    "INTEGRITY_NAMESPACE",
    "SLO_NAMESPACE",
    # tracing
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "using_tracer",
    "trace_span",
    "annotate_span",
    "trace_to_dict",
    "write_traces_jsonl",
    "read_traces_jsonl",
    "render_trace_tree",
    "slowest_path",
    # ledger
    "DEFAULT_LEDGER_PATH",
    "MARGIN_HISTOGRAM",
    "RunRecord",
    "Ledger",
    "config_hash",
    "git_rev",
    "budget_env",
    "record_run",
    "MetricCheck",
    "ComparisonReport",
    "compare_records",
    "write_trajectories",
]
