"""Dependency-free metrics registry: counters, gauges, latency histograms.

The registry is the measurement substrate for the whole datapath: hot
paths record into whatever registry is currently *active*.  By default
the active registry is a :class:`NullRegistry` whose instruments are
shared no-op singletons, so instrumented code pays only an attribute
read and a branch when observability is off.  ``enable()`` swaps in a
real :class:`MetricsRegistry`; the profiler and the benchmark harness do
this around the code they measure.

Everything here is pure stdlib (``threading`` + ``bisect``) — the
registry must be importable from the innermost hot loops without
dragging in anything heavier than what :mod:`repro.vsa.bitops` already
needs.
"""

from __future__ import annotations

import random
import threading
import zlib
from bisect import insort
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "enable",
    "disable",
    "using_registry",
]


class Counter:
    """Monotonic event counter (thread-safe)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def add(self, amount: int = 1) -> None:
        """Increment by ``amount``."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        return self._value


class Gauge:
    """Last-write-wins instantaneous value (thread-safe)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current value."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        """Most recently set value."""
        return self._value


class LatencyHistogram:
    """Collection of duration observations with percentile queries.

    Observations are kept in a sorted list (insertion via ``bisect``), so
    percentiles are exact and O(1) to read.  A reservoir cap bounds
    memory for very long runs: once full, each new observation is
    admitted by deterministic reservoir sampling (Algorithm R with an
    RNG seeded from the histogram name), so the retained samples stay a
    uniform draw over *everything* observed — a multi-hour serve run's
    p99 reflects the whole run, not just its first minutes.  ``count``
    and ``total_seconds`` are always exact regardless of the cap.
    """

    __slots__ = (
        "name", "_sorted", "_count", "_total", "_seen", "_rng",
        "_lock", "_max_samples",
    )

    def __init__(self, name: str, max_samples: int = 65536) -> None:
        self.name = name
        self._sorted: list[float] = []
        self._count = 0
        self._total = 0.0
        # Offers made to the reservoir; differs from ``_count`` once
        # merged deltas contribute counts without re-offering samples.
        self._seen = 0
        # str.__hash__ is salted per process, so seed from a stable
        # digest of the name: same name -> same admission sequence in
        # every process, which keeps merged runs reproducible.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        self._lock = threading.Lock()
        self._max_samples = max_samples

    def observe(self, seconds: float) -> None:
        """Record one duration (in seconds)."""
        value = float(seconds)
        with self._lock:
            self._count += 1
            self._total += value
            self._offer_locked(value)

    def _offer_locked(self, value: float) -> None:
        """Reservoir admission (Algorithm R) for one candidate sample."""
        self._seen += 1
        if len(self._sorted) < self._max_samples:
            insort(self._sorted, value)
            return
        slot = self._rng.randrange(self._seen)
        if slot < len(self._sorted):
            # ``slot`` is uniform over the retained samples given it was
            # admitted, so evicting at that index keeps the reservoir a
            # uniform sample of all offers.
            del self._sorted[slot]
            insort(self._sorted, value)

    def merge_samples(
        self, samples: list[float], count: int, total: float
    ) -> None:
        """Fold another histogram's state into this one.

        ``count``/``total`` add exactly; ``samples`` (the other side's
        retained reservoir) are re-offered to this reservoir one by one.
        This is how worker-side deltas land in the parent registry.
        """
        with self._lock:
            self._count += int(count)
            self._total += float(total)
            for value in samples:
                self._offer_locked(float(value))

    def samples(self) -> list[float]:
        """Copy of the retained reservoir (sorted ascending)."""
        with self._lock:
            return list(self._sorted)

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def total_seconds(self) -> float:
        """Sum of all observed durations."""
        return self._total

    @property
    def mean_seconds(self) -> float:
        """Mean observed duration (0.0 when empty)."""
        return self._total / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (q in [0, 100]) with linear interpolation."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile expects q in [0, 100]")
        with self._lock:
            samples = list(self._sorted)
        if not samples:
            return 0.0
        if len(samples) == 1:
            return samples[0]
        position = q / 100.0 * (len(samples) - 1)
        lower = int(position)
        upper = min(lower + 1, len(samples) - 1)
        fraction = position - lower
        return samples[lower] * (1.0 - fraction) + samples[upper] * fraction

    def summary(self) -> dict[str, float]:
        """Count / total / mean / p50 / p95 / p99 / max in one dict.

        ``observed`` is the exact number of observations (including any
        merged in from worker deltas); ``retained`` is how many samples
        the reservoir currently holds — equal until the cap is reached.
        """
        with self._lock:
            samples = list(self._sorted)
            count = self._count
            total = self._total
        if not samples:
            return {
                "count": count, "total_s": total,
                "mean_s": total / count if count else 0.0,
                "p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0, "max_s": 0.0,
                "observed": count, "retained": 0,
            }

        def pct(q: float) -> float:
            position = q / 100.0 * (len(samples) - 1)
            lower = int(position)
            upper = min(lower + 1, len(samples) - 1)
            fraction = position - lower
            return samples[lower] * (1.0 - fraction) + samples[upper] * fraction

        return {
            "count": count,
            "total_s": total,
            "mean_s": total / count,
            "p50_s": pct(50),
            "p95_s": pct(95),
            "p99_s": pct(99),
            "max_s": samples[-1],
            "observed": count,
            "retained": len(samples),
        }


class MetricsRegistry:
    """Named instrument store; instruments are created on first use."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> LatencyHistogram:
        """The latency histogram named ``name`` (created on first use)."""
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(name, LatencyHistogram(name))

    # ------------------------------------------------------------------
    def counters(self) -> dict[str, Counter]:
        """Snapshot of the counter table."""
        return dict(self._counters)

    def gauges(self) -> dict[str, Gauge]:
        """Snapshot of the gauge table."""
        return dict(self._gauges)

    def counter_values(self, prefix: str = "") -> dict[str, float]:
        """Name -> value for counters whose name starts with ``prefix``.

        The run ledger uses this to harvest whole metric namespaces
        (e.g. ``resilience.``) into a record without enumerating names.
        """
        return {
            name: float(counter.value)
            for name, counter in self._counters.items()
            if name.startswith(prefix)
        }

    def gauge_values(self, prefix: str = "") -> dict[str, float]:
        """Name -> value for gauges whose name starts with ``prefix``."""
        return {
            name: float(gauge.value)
            for name, gauge in self._gauges.items()
            if name.startswith(prefix)
        }

    def histograms(self) -> dict[str, LatencyHistogram]:
        """Snapshot of the histogram table."""
        return dict(self._histograms)

    def reset(self) -> None:
        """Drop every instrument (names included).

        The whole reset happens under the registry lock, so a concurrent
        ``counter()``/``histogram()`` lookup observes either the full old
        table or the full new (empty) one — never a half-cleared mix.
        Threads holding an instrument object across the reset keep
        recording into the orphaned instrument, which is then simply
        unreachable from the registry; the next lookup by name returns a
        fresh, zeroed instrument.  That makes reset safe to call between
        benches while flusher threads are still live.
        """
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def add(self, amount: int = 1) -> None:  # noqa: D102 - no-op
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:  # noqa: D102 - no-op
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    total_seconds = 0.0
    mean_seconds = 0.0

    def observe(self, seconds: float) -> None:  # noqa: D102 - no-op
        pass

    def merge_samples(
        self, samples: list[float], count: int, total: float
    ) -> None:  # noqa: D102 - no-op
        pass

    def samples(self) -> list[float]:  # noqa: D102 - no-op
        return []

    def percentile(self, q: float) -> float:  # noqa: D102 - no-op
        return 0.0

    def summary(self) -> dict[str, float]:  # noqa: D102 - no-op
        return {
            "count": 0, "total_s": 0.0, "mean_s": 0.0,
            "p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0, "max_s": 0.0,
            "observed": 0, "retained": 0,
        }


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """Zero-overhead stand-in: every instrument is a shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        """The shared no-op counter."""
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        """The shared no-op gauge."""
        return _NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        """The shared no-op histogram."""
        return _NULL_HISTOGRAM

    def counters(self) -> dict[str, Counter]:
        """Always empty."""
        return {}

    def gauges(self) -> dict[str, Gauge]:
        """Always empty."""
        return {}

    def counter_values(self, prefix: str = "") -> dict[str, float]:
        """Always empty."""
        return {}

    def gauge_values(self, prefix: str = "") -> dict[str, float]:
        """Always empty."""
        return {}

    def histograms(self) -> dict[str, LatencyHistogram]:
        """Always empty."""
        return {}

    def reset(self) -> None:
        """No state to drop."""


NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry | NullRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry | NullRegistry:
    """The currently active registry (the null registry by default)."""
    return _active


def set_registry(registry: MetricsRegistry | NullRegistry) -> None:
    """Install ``registry`` as the active one."""
    global _active
    _active = registry


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Activate metrics collection; returns the now-active registry."""
    active = registry if registry is not None else MetricsRegistry()
    set_registry(active)
    return active


def disable() -> None:
    """Restore the zero-overhead null registry."""
    set_registry(NULL_REGISTRY)


@contextmanager
def using_registry(registry: MetricsRegistry | NullRegistry):
    """Temporarily make ``registry`` the active one."""
    previous = get_registry()
    set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
