"""Service-level objectives and rolling-window error-budget accounting.

An :class:`SLO` states what "healthy" means for the serving path — a p99
latency target and an availability target over a rolling window.  An
:class:`SLOTracker` consumes one event per served request and answers
the operational questions: how much of the window's error budget is
gone, and how fast is it burning right now?

The accounting follows the standard error-budget formulation: with an
availability objective ``a``, the budget is the ``1 - a`` fraction of
requests allowed to be *bad* (failed, shed, or slower than the p99
target) inside the window.  ``budget_consumed`` is the fraction of that
allowance already used; a **burn rate** over a horizon is the bad-request
rate divided by ``1 - a``, so burn 1.0 means "spending the budget
exactly as fast as the window replenishes it" and burn 10 means the
budget dies in a tenth of the window.  Two horizons are tracked — a
fast one (minutes, pages on sudden outages) and a slow one (tens of
minutes, catches smoldering degradation) — mirroring multi-window
burn-rate alerting.

Quarantined requests are *client* errors (the input was invalid); they
are excluded from availability and tallied separately, so a client
sending NaNs cannot burn the server's error budget.

``SLOTracker.publish`` mirrors the current state into ``slo.*`` gauges
on a metrics registry, which is how budget state reaches the serve
admin endpoint, ``repro top``, and (via the ``slo.`` ledger harvest)
``repro obs compare``'s ``--max-budget-burn`` gate.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass

__all__ = ["SLO", "SLOTracker", "SLO_NAMESPACE"]

#: Gauge namespace :meth:`SLOTracker.publish` writes and the run ledger
#: harvests into every record's metrics.
SLO_NAMESPACE = "slo."


@dataclass(frozen=True)
class SLO:
    """Latency / availability objectives over a rolling window.

    ``p99_ms`` is the per-request latency target: a request slower than
    this is *bad* even when it answered correctly.  ``availability`` is
    the fraction of requests that must be good inside ``window_s``.
    ``fast_burn_s`` / ``slow_burn_s`` are the trailing horizons burn
    rates are computed over.
    """

    p99_ms: float = 50.0
    availability: float = 0.999
    window_s: float = 3600.0
    fast_burn_s: float = 60.0
    slow_burn_s: float = 600.0

    def __post_init__(self) -> None:
        if self.p99_ms <= 0:
            raise ValueError("p99_ms must be positive")
        if not 0.0 < self.availability < 1.0:
            raise ValueError("availability must be in (0, 1)")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 0.0 < self.fast_burn_s <= self.window_s:
            raise ValueError("fast_burn_s must be in (0, window_s]")
        if not 0.0 < self.slow_burn_s <= self.window_s:
            raise ValueError("slow_burn_s must be in (0, window_s]")

    @property
    def budget_fraction(self) -> float:
        """The fraction of requests allowed to be bad (``1 - availability``)."""
        return 1.0 - self.availability

    @classmethod
    def from_env(cls, environ=None) -> "SLO":
        """Objectives from ``REPRO_SLO_P99_MS`` / ``REPRO_SLO_AVAILABILITY``
        / ``REPRO_SLO_WINDOW_S`` / ``REPRO_SLO_FAST_S`` / ``REPRO_SLO_SLOW_S``
        (unset keys keep the defaults)."""
        env = os.environ if environ is None else environ

        def _get(key, default):
            raw = env.get(key)
            if raw is None or not str(raw).strip():
                return default
            try:
                return float(raw)
            except (TypeError, ValueError):
                return default

        return cls(
            p99_ms=_get("REPRO_SLO_P99_MS", cls.p99_ms),
            availability=_get("REPRO_SLO_AVAILABILITY", cls.availability),
            window_s=_get("REPRO_SLO_WINDOW_S", cls.window_s),
            fast_burn_s=_get("REPRO_SLO_FAST_S", cls.fast_burn_s),
            slow_burn_s=_get("REPRO_SLO_SLOW_S", cls.slow_burn_s),
        )

    def as_dict(self) -> dict:
        """JSON-serializable view of the objectives."""
        return {
            "p99_ms": self.p99_ms,
            "availability": self.availability,
            "window_s": self.window_s,
            "fast_burn_s": self.fast_burn_s,
            "slow_burn_s": self.slow_burn_s,
        }


class SLOTracker:
    """Rolling-window error-budget accountant (thread-safe).

    ``clock`` is injectable (monotonic seconds) so tests drive the
    window deterministically.
    """

    def __init__(self, slo: SLO | None = None, clock=time.monotonic) -> None:
        self.slo = slo if slo is not None else SLO.from_env()
        self._clock = clock
        self._events: deque[tuple[float, bool]] = deque()
        self._lock = threading.Lock()
        # Window counts (maintained incrementally by the pruner).
        self._total = 0
        self._bad = 0
        # Lifetime tallies (never pruned).
        self._latency_breaches = 0
        self._failures = 0
        self._client_errors = 0

    # -- recording ------------------------------------------------------
    def record(
        self, latency_s: float, ok: bool = True, now: float | None = None
    ) -> bool:
        """Account one served request; returns True when it was *bad*.

        A request is bad when it failed/was shed (``ok=False``) or when
        it answered slower than the p99 target.
        """
        now = self._clock() if now is None else now
        bad = (not ok) or (latency_s * 1000.0 > self.slo.p99_ms)
        with self._lock:
            self._events.append((now, bad))
            self._total += 1
            if bad:
                self._bad += 1
                if not ok:
                    self._failures += 1
                else:
                    self._latency_breaches += 1
            self._prune_locked(now)
        return bad

    def record_client_error(self) -> None:
        """Tally a quarantined/invalid request — never budget-relevant."""
        with self._lock:
            self._client_errors += 1

    def _prune_locked(self, now: float) -> None:
        cutoff = now - self.slo.window_s
        events = self._events
        while events and events[0][0] < cutoff:
            _, bad = events.popleft()
            self._total -= 1
            if bad:
                self._bad -= 1

    # -- queries --------------------------------------------------------
    def _horizon_counts_locked(self, horizon_s: float, now: float):
        cutoff = now - horizon_s
        total = bad = 0
        for stamp, was_bad in reversed(self._events):
            if stamp < cutoff:
                break
            total += 1
            bad += was_bad
        return total, bad

    def burn_rate(
        self, horizon_s: float | None = None, now: float | None = None
    ) -> float:
        """Bad-request rate over the horizon, in budget units.

        1.0 = consuming the error budget exactly as fast as the window
        replenishes it; 0.0 = no bad requests (or no traffic at all).
        """
        now = self._clock() if now is None else now
        horizon = self.slo.window_s if horizon_s is None else horizon_s
        with self._lock:
            self._prune_locked(now)
            total, bad = self._horizon_counts_locked(horizon, now)
        if total == 0:
            return 0.0
        return (bad / total) / self.slo.budget_fraction

    def budget_consumed(self, now: float | None = None) -> float:
        """Fraction of the window's error budget already spent.

        Above 1.0 the SLO is violated for the current window.  0.0 with
        no traffic — an idle service burns nothing.
        """
        now = self._clock() if now is None else now
        with self._lock:
            self._prune_locked(now)
            total, bad = self._total, self._bad
        if total == 0:
            return 0.0
        allowed = total * self.slo.budget_fraction
        return bad / allowed

    def budget_remaining(self, now: float | None = None) -> float:
        """``1 - budget_consumed`` (negative when overdrawn)."""
        return 1.0 - self.budget_consumed(now)

    def state(self, now: float | None = None) -> dict:
        """Everything an admin endpoint wants, as one JSON-ready dict."""
        now = self._clock() if now is None else now
        with self._lock:
            self._prune_locked(now)
            total, bad = self._total, self._bad
            breaches = self._latency_breaches
            failures = self._failures
            client_errors = self._client_errors
            fast = self._horizon_counts_locked(self.slo.fast_burn_s, now)
            slow = self._horizon_counts_locked(self.slo.slow_burn_s, now)
        budget = self.slo.budget_fraction

        def _burn(counts):
            horizon_total, horizon_bad = counts
            if horizon_total == 0:
                return 0.0
            return (horizon_bad / horizon_total) / budget

        consumed = (bad / (total * budget)) if total else 0.0
        return {
            "objective": self.slo.as_dict(),
            "events": total,
            "bad_events": bad,
            "latency_breaches": breaches,
            "failures": failures,
            "client_errors": client_errors,
            "budget_consumed": consumed,
            "budget_remaining": 1.0 - consumed,
            "burn_rate_fast": _burn(fast),
            "burn_rate_slow": _burn(slow),
        }

    def publish(self, registry, now: float | None = None) -> dict:
        """Mirror the current state into ``slo.*`` gauges on ``registry``.

        The ledger harvests the ``slo.`` namespace into every record, so
        publishing right before ``record_run`` is what puts budget state
        in the ledger.  Returns the state dict it published.
        """
        state = self.state(now)
        registry.gauge("slo.events").set(state["events"])
        registry.gauge("slo.bad_events").set(state["bad_events"])
        registry.gauge("slo.latency_breaches").set(state["latency_breaches"])
        registry.gauge("slo.failures").set(state["failures"])
        registry.gauge("slo.client_errors").set(state["client_errors"])
        registry.gauge("slo.budget_consumed").set(state["budget_consumed"])
        registry.gauge("slo.budget_remaining").set(state["budget_remaining"])
        registry.gauge("slo.burn_rate_fast").set(state["burn_rate_fast"])
        registry.gauge("slo.burn_rate_slow").set(state["burn_rate_slow"])
        registry.gauge("slo.objective.p99_ms").set(state["objective"]["p99_ms"])
        registry.gauge("slo.objective.availability").set(
            state["objective"]["availability"]
        )
        return state

    def reset(self) -> None:
        """Drop all events and tallies (between benches)."""
        with self._lock:
            self._events.clear()
            self._total = self._bad = 0
            self._latency_breaches = self._failures = self._client_errors = 0
