"""Profiling driver: measure where wall time goes in the datapath.

``profile_benchmark`` trains a small model on a registered benchmark,
then drives every serving surface under an enabled metrics registry:

* the packed XNOR/popcount engine (:class:`repro.core.BitPackedUniVSA`),
  batch by batch, so the per-stage timers (DVP lookup, BiConv, encoding,
  soft-voting similarity) accumulate real distributions;
* the integer reference path (:class:`repro.core.UniVSAArtifacts`);
* the streaming runtime (decision latency, decisions/sec);
* the hardware cycle simulator, whose measured wall-time shares are
  compared against the analytic cycle model of :mod:`repro.hw.cycles`
  (the software analogue of the paper's Fig. 6 stage breakdown);
* the ``pack_bipolar`` input-validation scan, measured on/off so the
  saved time of the opt-out is recorded rather than asserted.

This module is the engine behind ``python -m repro profile``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from .export import render_stage_table, snapshot, stage_breakdown
from .registry import MetricsRegistry, using_registry

__all__ = ["ProfileReport", "profile_benchmark"]


@dataclass
class ProfileReport:
    """Everything one profiling run measured."""

    benchmark: str
    n_train: int
    n_test: int
    accuracy: float
    registry: MetricsRegistry = field(repr=False)
    packed: dict = field(repr=False, default_factory=dict)
    reference: dict = field(repr=False, default_factory=dict)
    streaming: dict = field(default_factory=dict)
    model_vs_measured: dict = field(default_factory=dict)
    validation: dict = field(default_factory=dict)
    kernels: dict = field(default_factory=dict)
    workers: int = 1
    config: object = None  # the run's UniVSAConfig (ledger provenance)

    def as_dict(self) -> dict:
        """JSON-serializable view (consumed by the CLI and the benches)."""
        return {
            "benchmark": self.benchmark,
            "n_train": self.n_train,
            "n_test": self.n_test,
            "accuracy": self.accuracy,
            "packed_stages": self.packed,
            "reference_stages": self.reference,
            "streaming": self.streaming,
            "model_vs_measured": self.model_vs_measured,
            "validation": self.validation,
            "kernels": self.kernels,
            "workers": self.workers,
            "metrics": snapshot(self.registry),
        }

    def render(self) -> str:
        """Human-readable multi-table report."""
        from repro.utils.tables import render_kv, render_table

        sections = [
            render_kv(
                {
                    "benchmark": self.benchmark,
                    "train / test samples": f"{self.n_train} / {self.n_test}",
                    "packed accuracy": f"{self.accuracy:.4f}",
                    "kernels": f"{self.kernels.get('set', '?')} "
                    f"(pack={self.kernels.get('pack', '?')}, "
                    f"popcount={self.kernels.get('popcount', '?')})",
                    "batch workers": str(self.workers),
                },
                title="profile",
            ),
            render_stage_table(
                self.packed,
                title="packed datapath — stage latency (BitPackedUniVSA)",
                strip_prefix="packed.",
            ),
            render_stage_table(
                self.reference,
                title="integer reference — stage latency (UniVSAArtifacts)",
                strip_prefix="artifacts.",
            ),
            render_kv(
                {
                    "decisions": str(int(self.streaming.get("count", 0))),
                    "decision p50": f"{self.streaming.get('p50_s', 0.0) * 1e3:.3f} ms",
                    "decision p95": f"{self.streaming.get('p95_s', 0.0) * 1e3:.3f} ms",
                    "decision p99": f"{self.streaming.get('p99_s', 0.0) * 1e3:.3f} ms",
                    "decisions/sec": f"{self.streaming.get('decisions_per_s', 0.0):.1f}",
                    "buffer occupancy": f"{self.streaming.get('buffer_occupancy', 0.0):.0f} frames",
                },
                title="streaming runtime — decision latency",
            ),
        ]
        if self.model_vs_measured:
            rows = [
                [
                    stage,
                    str(entry["modeled_cycles"]),
                    f"{entry['modeled_share'] * 100:.1f}%",
                    f"{entry['measured_share'] * 100:.1f}%",
                ]
                for stage, entry in self.model_vs_measured.items()
            ]
            sections.append(
                render_table(
                    ["stage", "modeled_cycles", "modeled_share", "measured_share"],
                    rows,
                    title="cycle model vs measured wall time (hw simulator)",
                )
            )
        if self.validation:
            sections.append(
                render_kv(
                    {
                        "pack with validation": f"{self.validation['validate_on_s'] * 1e3:.3f} ms",
                        "pack without": f"{self.validation['validate_off_s'] * 1e3:.3f} ms",
                        "saved per call": f"{self.validation['saved_s'] * 1e3:.3f} ms",
                    },
                    title="pack_bipolar validation scan (opt-out saving)",
                )
            )
        return "\n\n".join(sections)


def _measure_validation_saving(
    registry: MetricsRegistry, volume: np.ndarray, repeats: int = 3
) -> dict[str, float]:
    """Time the pack_bipolar {-1,+1} scan on a representative block."""
    from repro.vsa.bitops import pack_bipolar

    blocks = volume.reshape(volume.shape[0], -1)
    timings = {True: [], False: []}
    for _ in range(repeats):
        for validate in (True, False):
            start = perf_counter()
            pack_bipolar(blocks, validate=validate)
            timings[validate].append(perf_counter() - start)
    on = min(timings[True])
    off = min(timings[False])
    saved = max(on - off, 0.0)
    registry.gauge("bitops.pack.validate_on_s").set(on)
    registry.gauge("bitops.pack.validate_off_s").set(off)
    registry.gauge("bitops.pack.validation_saved_s").set(saved)
    return {"validate_on_s": on, "validate_off_s": off, "saved_s": saved}


def profile_benchmark(
    name: str,
    n_train: int = 120,
    n_test: int = 60,
    epochs: int = 2,
    seed: int = 0,
    batch_size: int = 16,
    hop: int | None = None,
    sim_samples: int = 4,
    registry: MetricsRegistry | None = None,
) -> ProfileReport:
    """Train a small model on ``name`` and profile every serving surface."""
    from repro.core.inference import BitPackedUniVSA
    from repro.core.pipeline import run_benchmark
    from repro.data.registry import get_benchmark
    from repro.hw.arch import HardwareSpec
    from repro.hw.cycles import stage_cycles
    from repro.hw.simulator import HardwareSimulator
    from repro.runtime.batch import resolve_workers
    from repro.runtime.stream import StreamingClassifier
    from repro.utils.trainloop import TrainConfig
    from repro.vsa.kernels import kernel_info, publish_kernel_metrics

    benchmark = get_benchmark(name)
    registry = registry if registry is not None else MetricsRegistry()
    publish_kernel_metrics(registry)
    with using_registry(registry):
        run = run_benchmark(
            name,
            train_config=TrainConfig(
                epochs=epochs,
                lr=0.008,
                seed=seed,
                balance_classes=benchmark.spec.class_balance is not None,
            ),
            n_train=n_train,
            n_test=n_test,
            seed=seed,
        )
        data = run.data
        engine = BitPackedUniVSA(run.artifacts)
        predictions = []
        for start in range(0, len(data.x_test), batch_size):
            scores = engine.scores(data.x_test[start : start + batch_size])
            predictions.append(scores.argmax(axis=1))
        accuracy = float(
            (np.concatenate(predictions) == data.y_test).mean()
        ) if len(data.x_test) else 0.0

        # Streaming runtime: replay a synthetic signal long enough to emit
        # a handful of decisions past the fill point.
        kwargs = {"hop": hop} if hop is not None else {}
        stream = StreamingClassifier(run.artifacts, data.quantizer, **kwargs)
        stream_hop = stream.hop
        rng = np.random.default_rng(seed)
        span = stream.window_span
        signal = rng.uniform(
            data.quantizer.low, data.quantizer.high, size=span + 8 * stream_hop
        )
        wall_start = perf_counter()
        decisions = stream.push(signal)
        wall = perf_counter() - wall_start
        decision_summary = registry.histogram("stream.decision").summary()
        streaming = dict(decision_summary)
        streaming["decisions_per_s"] = len(decisions) / wall if wall > 0 else 0.0
        streaming["buffer_occupancy"] = registry.gauge(
            "stream.buffer_occupancy"
        ).value

        # Hardware simulator: measured wall shares vs the cycle model.
        spec = HardwareSpec(
            config=run.artifacts.config,
            input_shape=run.artifacts.input_shape,
            n_classes=run.artifacts.n_classes,
        )
        simulator = HardwareSimulator(run.artifacts, spec)
        simulator.run(data.x_test[: max(sim_samples, 1)])
        modeled = stage_cycles(spec).as_dict()
        measured = stage_breakdown(registry, prefix="hwsim.")
        compute_stages = ("dvp", "biconv", "encode", "similarity")
        modeled_total = sum(modeled[s] for s in compute_stages)
        measured_total = sum(
            measured.get(f"hwsim.{s}", {}).get("total_s", 0.0)
            for s in compute_stages
        )
        comparison = {}
        for stage in compute_stages:
            measured_s = measured.get(f"hwsim.{stage}", {}).get("total_s", 0.0)
            comparison[stage] = {
                "modeled_cycles": int(modeled[stage]),
                "modeled_share": modeled[stage] / modeled_total if modeled_total else 0.0,
                "measured_share": measured_s / measured_total if measured_total else 0.0,
            }

        validation = _measure_validation_saving(
            registry, run.artifacts.value_volume(data.x_test[:batch_size])
        )

    return ProfileReport(
        benchmark=name,
        n_train=len(data.x_train),
        n_test=len(data.x_test),
        accuracy=accuracy,
        registry=registry,
        packed=stage_breakdown(registry, prefix="packed."),
        reference=stage_breakdown(registry, prefix="artifacts."),
        streaming=streaming,
        model_vs_measured=comparison,
        validation=validation,
        kernels=kernel_info(),
        workers=resolve_workers(),
        config=run.config,
    )
