"""Exporters: registry state as plain dicts, JSON files, and text tables.

The stage-share computation is the contract the profiler CLI and the
benchmark harness rely on: for a histogram name prefix (``"packed."``,
``"artifacts."``, ``"hwsim."``) the per-stage shares of total recorded
wall time sum to 1.0.
"""

from __future__ import annotations

import json
import os
from typing import Mapping

from .registry import MetricsRegistry, NullRegistry

__all__ = ["snapshot", "stage_breakdown", "to_json", "write_json", "render_stage_table"]


def snapshot(registry: MetricsRegistry | NullRegistry) -> dict:
    """Full registry state as a JSON-serializable dict."""
    return {
        "counters": {name: c.value for name, c in sorted(registry.counters().items())},
        "gauges": {name: g.value for name, g in sorted(registry.gauges().items())},
        "stages": {
            name: h.summary() for name, h in sorted(registry.histograms().items())
        },
    }


def _in_namespace(name: str, prefix: str) -> bool:
    """Dotted-namespace membership: ``"packed"`` (or ``"packed."``)
    matches ``packed.x`` and ``packed`` itself but never ``packed_ref.x``
    — a raw ``startswith`` would capture sibling namespaces whenever the
    trailing dot is omitted."""
    if not prefix:
        return True
    namespace = prefix.rstrip(".")
    return name == namespace or name.startswith(namespace + ".")


def stage_breakdown(
    registry: MetricsRegistry | NullRegistry, prefix: str = ""
) -> dict[str, dict[str, float]]:
    """Per-stage timing summary for histograms in the ``prefix`` namespace.

    ``prefix`` is a dotted namespace (``"packed."`` and ``"packed"`` are
    equivalent), not a raw string prefix.  Each entry carries the
    histogram ``summary()`` plus ``share``, the stage's fraction of the
    group's total recorded time; shares sum to 1.0 whenever any time was
    recorded.
    """
    groups = {
        name: h.summary()
        for name, h in sorted(registry.histograms().items())
        if _in_namespace(name, prefix)
    }
    total = sum(entry["total_s"] for entry in groups.values())
    for entry in groups.values():
        entry["share"] = entry["total_s"] / total if total > 0 else 0.0
    return groups


def to_json(registry: MetricsRegistry | NullRegistry, indent: int = 2) -> str:
    """Registry snapshot rendered as a JSON string."""
    return json.dumps(snapshot(registry), indent=indent, sort_keys=True)


def write_json(
    registry: MetricsRegistry | NullRegistry, path: str | os.PathLike
) -> None:
    """Write the registry snapshot to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(registry) + "\n")


def render_stage_table(
    breakdown: Mapping[str, Mapping[str, float]],
    title: str = "stage latency",
    strip_prefix: str = "",
) -> str:
    """Text table (stage / calls / total / share / p50 / p95 / p99)."""
    from repro.utils.tables import render_table

    rows = []
    for name, entry in sorted(
        breakdown.items(), key=lambda item: -item[1]["total_s"]
    ):
        label = name[len(strip_prefix):] if name.startswith(strip_prefix) else name
        rows.append(
            [
                label,
                str(int(entry["count"])),
                f"{entry['total_s'] * 1e3:.3f}",
                f"{entry.get('share', 0.0) * 100:.1f}%",
                f"{entry['p50_s'] * 1e6:.1f}",
                f"{entry['p95_s'] * 1e6:.1f}",
                f"{entry['p99_s'] * 1e6:.1f}",
            ]
        )
    return render_table(
        ["stage", "calls", "total_ms", "share", "p50_us", "p95_us", "p99_us"],
        rows,
        title=title,
    )
