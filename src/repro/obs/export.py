"""Exporters: registry state as plain dicts, JSON files, and text tables.

The stage-share computation is the contract the profiler CLI and the
benchmark harness rely on: for a histogram name prefix (``"packed."``,
``"artifacts."``, ``"hwsim."``) the per-stage shares of total recorded
wall time sum to 1.0.
"""

from __future__ import annotations

import json
import os
import re
from typing import Mapping

from .registry import MetricsRegistry, NullRegistry

__all__ = [
    "snapshot",
    "stage_breakdown",
    "to_json",
    "write_json",
    "render_stage_table",
    "to_prometheus",
    "record_to_prometheus",
]


def snapshot(registry: MetricsRegistry | NullRegistry) -> dict:
    """Full registry state as a JSON-serializable dict."""
    return {
        "counters": {name: c.value for name, c in sorted(registry.counters().items())},
        "gauges": {name: g.value for name, g in sorted(registry.gauges().items())},
        "stages": {
            name: h.summary() for name, h in sorted(registry.histograms().items())
        },
    }


def _in_namespace(name: str, prefix: str) -> bool:
    """Dotted-namespace membership: ``"packed"`` (or ``"packed."``)
    matches ``packed.x`` and ``packed`` itself but never ``packed_ref.x``
    — a raw ``startswith`` would capture sibling namespaces whenever the
    trailing dot is omitted."""
    if not prefix:
        return True
    namespace = prefix.rstrip(".")
    return name == namespace or name.startswith(namespace + ".")


def stage_breakdown(
    registry: MetricsRegistry | NullRegistry, prefix: str = ""
) -> dict[str, dict[str, float]]:
    """Per-stage timing summary for histograms in the ``prefix`` namespace.

    ``prefix`` is a dotted namespace (``"packed."`` and ``"packed"`` are
    equivalent), not a raw string prefix.  Each entry carries the
    histogram ``summary()`` plus ``share``, the stage's fraction of the
    group's total recorded time; shares sum to 1.0 whenever any time was
    recorded.
    """
    groups = {
        name: h.summary()
        for name, h in sorted(registry.histograms().items())
        if _in_namespace(name, prefix)
    }
    total = sum(entry["total_s"] for entry in groups.values())
    for entry in groups.values():
        entry["share"] = entry["total_s"] / total if total > 0 else 0.0
    return groups


def to_json(registry: MetricsRegistry | NullRegistry, indent: int = 2) -> str:
    """Registry snapshot rendered as a JSON string."""
    return json.dumps(snapshot(registry), indent=indent, sort_keys=True)


def write_json(
    registry: MetricsRegistry | NullRegistry, path: str | os.PathLike
) -> None:
    """Write the registry snapshot to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(registry) + "\n")


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> str:
    """Dotted instrument name -> a legal Prometheus metric name."""
    return prefix + _PROM_INVALID.sub("_", name)


def _prom_value(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _prom_summary_lines(
    metric: str, summary: Mapping[str, float]
) -> list[str]:
    """One histogram summary as a Prometheus summary-typed family."""
    lines = [f"# TYPE {metric} summary"]
    for quantile, key in (("0.5", "p50_s"), ("0.95", "p95_s"), ("0.99", "p99_s")):
        lines.append(
            f'{metric}{{quantile="{quantile}"}} '
            f"{_prom_value(summary.get(key, 0.0))}"
        )
    lines.append(f"{metric}_sum {_prom_value(summary.get('total_s', 0.0))}")
    lines.append(f"{metric}_count {_prom_value(summary.get('count', 0))}")
    return lines


def to_prometheus(
    registry: MetricsRegistry | NullRegistry, prefix: str = "repro_"
) -> str:
    """Registry state in Prometheus text exposition format.

    Counters become ``counter`` families, gauges ``gauge`` families, and
    latency histograms ``summary`` families (``_sum``/``_count`` plus
    p50/p95/p99 quantile samples, all in seconds).  Dots and other
    illegal characters in instrument names map to underscores.
    """
    lines: list[str] = []
    for name, counter in sorted(registry.counters().items()):
        metric = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(counter.value)}")
    for name, gauge in sorted(registry.gauges().items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(gauge.value)}")
    for name, hist in sorted(registry.histograms().items()):
        metric = _prom_name(name, prefix) + "_seconds"
        lines.extend(_prom_summary_lines(metric, hist.summary()))
    return "\n".join(lines) + "\n"


def record_to_prometheus(record, prefix: str = "repro_") -> str:
    """A ledger :class:`~repro.obs.ledger.RunRecord` as Prometheus text.

    Stored records no longer distinguish counters from gauges, so every
    scalar in ``record.metrics`` is exposed as a gauge; ``record.stages``
    summaries become summary families exactly like the live exposition.
    This is what ``repro obs export --format prom`` emits when scraping
    the ledger instead of a running daemon.
    """
    lines: list[str] = []
    for name in sorted(record.metrics):
        value = record.metrics[name]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    for name in sorted(record.stages):
        metric = _prom_name(name, prefix) + "_seconds"
        lines.extend(_prom_summary_lines(metric, record.stages[name]))
    return "\n".join(lines) + "\n"


def render_stage_table(
    breakdown: Mapping[str, Mapping[str, float]],
    title: str = "stage latency",
    strip_prefix: str = "",
) -> str:
    """Text table (stage / calls / total / share / p50 / p95 / p99)."""
    from repro.utils.tables import render_table

    rows = []
    for name, entry in sorted(
        breakdown.items(), key=lambda item: -item[1]["total_s"]
    ):
        label = name[len(strip_prefix):] if name.startswith(strip_prefix) else name
        rows.append(
            [
                label,
                str(int(entry["count"])),
                f"{entry['total_s'] * 1e3:.3f}",
                f"{entry.get('share', 0.0) * 100:.1f}%",
                f"{entry['p50_s'] * 1e6:.1f}",
                f"{entry['p95_s'] * 1e6:.1f}",
                f"{entry['p99_s'] * 1e6:.1f}",
            ]
        )
    return render_table(
        ["stage", "calls", "total_ms", "share", "p50_us", "p95_us", "p99_us"],
        rows,
        title=title,
    )
