"""One-call hardware report: everything Table IV prints for one design."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import UniVSAConfig

from .arch import HardwareSpec
from .cycles import latency_ms, stage_cycles
from .memory import memory_kb
from .pipeline import pipeline_schedule
from .power import estimate_power_w
from .resources import estimate_resources

__all__ = ["HardwareReport", "hardware_report"]


@dataclass(frozen=True)
class HardwareReport:
    """The Table IV row for one UniVSA design point."""

    name: str
    latency_ms: float
    power_w: float
    luts: int
    brams: int
    dsps: int
    throughput_per_s: float
    memory_kb: float
    stage_cycles: dict[str, int]
    stage_luts: dict[str, int]
    bottleneck: str

    def as_row(self) -> list[object]:
        """Row in the paper's Table IV column order."""
        return [
            self.name,
            round(self.latency_ms, 3),
            round(self.power_w, 2),
            round(self.luts / 1000, 2),
            self.brams,
            self.dsps,
            round(self.throughput_per_s / 1000, 2),
        ]


def hardware_report(
    config: UniVSAConfig,
    input_shape: tuple[int, int],
    n_classes: int,
    name: str = "univsa",
    frequency_mhz: float = 250.0,
) -> HardwareReport:
    """Full hardware evaluation of one design point."""
    spec = HardwareSpec(
        config=config,
        input_shape=input_shape,
        n_classes=n_classes,
        frequency_mhz=frequency_mhz,
    )
    resources = estimate_resources(spec)
    schedule = pipeline_schedule(spec)
    return HardwareReport(
        name=name,
        latency_ms=latency_ms(spec),
        power_w=estimate_power_w(spec, luts=resources.luts),
        luts=resources.luts,
        brams=resources.brams,
        dsps=resources.dsps,
        throughput_per_s=schedule.throughput(frequency_mhz),
        memory_kb=memory_kb(config, input_shape, n_classes),
        stage_cycles=stage_cycles(spec).as_dict(),
        stage_luts=resources.stage_luts,
        bottleneck=schedule.bottleneck,
    )
