"""Calibrated technology constants and the paper tables they come from.

The paper reports measured Vivado results on a ZU3EG (Tables III and IV).
We cannot run Vivado, so the resource/power/cycle models carry small
coefficient sets calibrated *once* against those published rows; the
calibration procedure itself ships here (:func:`fit_lut_model`,
:func:`fit_power_model`) so the fit is reproducible, and the residuals are
part of the recorded experiment output (EXPERIMENTS.md).

Calibration findings (see DESIGN.md Sec. 5):

* Table IV's throughput column is reproduced within ~2% (alpha = 3 tasks)
  by ``interval = W*L*D_K*(alpha + 1.69)`` — the conv engine paces the
  stream with ~1.7 cycles of per-iteration overhead.
* Latency is consistent with DVP + encode + similarity adding ~3 cycles
  per input feature on top of the conv time.
* LUTs follow a power law ``2.35 * (D_K*O*D_H)^0.60 * N^0.62 * D_K^0.53``
  (sub-linear exponents: the paper manages parallelism down as configs
  grow).  Max residual 24% (HAR), most rows < 3%.
* Power = 11.8 uW/LUT + 0.53 W per 1e9 switched volume bits/s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "CycleConstants",
    "CYCLE_CONSTANTS",
    "LUT_MODEL",
    "POWER_MODEL",
    "BRAM_BITS_PER_BLOCK",
    "PAPER_TABLE4",
    "PAPER_TABLE3",
    "fit_lut_model",
    "fit_power_model",
]


@dataclass(frozen=True)
class CycleConstants:
    """Small schedule constants of the cycle model."""

    dvp_cycles_per_feature: int = 1
    fifo_depth: int = 8
    conv_iteration_overhead: float = 1.69  # fitted to Table IV throughput
    stage_handoff: int = 4
    controller_overhead: int = 16


CYCLE_CONSTANTS = CycleConstants()

# LUTs ~= k * (D_K*O*D_H)^a * N^b * D_K^c   (log-space least squares on
# Table IV; see fit_lut_model below).
LUT_MODEL = {"k": math.exp(0.85434753), "a": 0.60185284, "b": 0.62050410, "c": 0.53215447}

# Power [W] = per_lut * LUTs + per_gbps * (throughput * N * D_H / 1e9)
# (non-negative least squares on Table IV; static term fitted to zero --
# the ZU3EG static power is folded into the per-LUT coefficient).
POWER_MODEL = {"static": 0.0, "per_lut": 1.17885282e-5, "per_gbps": 0.52790883}

# One ZU3EG BRAM36 block stores 36 kbit.
BRAM_BITS_PER_BLOCK = 36 * 1024

# Table IV of the paper: per-task measured hardware results.
# name -> (latency_ms, power_w, luts, brams, dsps, throughput_per_s)
PAPER_TABLE4 = {
    "eegmmi": (0.070, 0.45, 33_620, 3, 0, 17_340),
    "bci-iii-v": (0.007, 0.18, 10_100, 1, 0, 184_840),
    "chb-b": (0.100, 0.34, 13_920, 1, 0, 12_060),
    "chb-ib": (0.206, 0.21, 16_460, 1, 0, 5_300),
    "isolet": (0.044, 0.11, 7_920, 1, 0, 27_780),
    "har": (0.039, 0.10, 6_780, 1, 0, 30_850),
}

# Table III: published comparison rows (literature constants the paper
# itself cites; parenthesized values in the paper are estimates).
# name -> dict of the printed columns.
PAPER_TABLE3 = {
    "SVM [31]": {
        "fpga": "Virtex-5",
        "input": "(20,20) / -",
        "freq_mhz": 84,
        "memory_kb": 406.0,
        "latency_ms": 14.29,
        "power_w": 3.2,
        "luts": 31_850,
        "brams": 131,
        "dsps": 59,
    },
    "KNN [16]": {
        "fpga": "Stratix IV",
        "input": "64 / 2",
        "freq_mhz": 131.42,
        "memory_kb": None,
        "latency_ms": 69.12,
        "power_w": 24.0,
        "luts": 135_000,
        "brams": None,
        "dsps": 80,
    },
    "BNN [14]": {
        "fpga": "Zynq-ZU3EG",
        "input": "(3,32,32) / 10",
        "freq_mhz": 250,
        "memory_kb": None,
        "latency_ms": 0.36,
        "power_w": 4.1,
        "luts": 51_440,
        "brams": 212,
        "dsps": 126,
    },
    "QNN [13]": {
        "fpga": "Zynq-ZU3EG",
        "input": "(3,224,224) / 1000",
        "freq_mhz": 250,
        "memory_kb": 1450.0,
        "latency_ms": 24.33,
        "power_w": 5.5,
        "luts": 51_780,
        "brams": 159,
        "dsps": 360,
    },
    "LookHD [9]": {
        "fpga": "Kintex-7",
        "input": "617 / 26",
        "freq_mhz": 200,
        "memory_kb": 165.0,
        "latency_ms": None,
        "power_w": 9.52,
        "luts": 165_000,
        "brams": 175,
        "dsps": 807,
    },
    "LDC [11]": {
        "fpga": "Zynq-ZU3EG",
        "input": "784 / 10",
        "freq_mhz": 200,
        "memory_kb": 6.48,
        "latency_ms": 0.004,
        "power_w": 0.016,
        "luts": 750,
        "brams": 5,
        "dsps": 1,
    },
}

# Paper Table I configurations, duplicated here so the hw package does not
# depend on the dataset registry.
PAPER_CONFIGS = {
    "eegmmi": ((16, 64), 2, (8, 2, 3, 95, 1)),
    "bci-iii-v": ((16, 6), 3, (8, 1, 3, 151, 3)),
    "chb-b": ((23, 64), 2, (8, 2, 3, 16, 3)),
    "chb-ib": ((23, 64), 2, (4, 1, 5, 16, 1)),
    "isolet": ((16, 40), 26, (4, 4, 3, 22, 3)),
    "har": ((16, 36), 6, (8, 4, 3, 18, 3)),
}


def fit_lut_model() -> dict[str, float]:
    """Re-derive the LUT power-law coefficients from PAPER_TABLE4.

    Returns {"k", "a", "b", "c"}; the shipped LUT_MODEL values are this
    fit's output, frozen for determinism.
    """
    rows = []
    targets = []
    for name, ((w, length), _classes, (dh, _dl, dk, o, _th)) in PAPER_CONFIGS.items():
        n = w * length
        rows.append([math.log(dk * o * dh), math.log(n), math.log(dk), 1.0])
        targets.append(math.log(PAPER_TABLE4[name][2]))
    coef, *_ = np.linalg.lstsq(np.array(rows), np.array(targets), rcond=None)
    return {"k": math.exp(coef[3]), "a": coef[0], "b": coef[1], "c": coef[2]}


def fit_power_model() -> dict[str, float]:
    """Re-derive the power coefficients from PAPER_TABLE4 (NNLS)."""
    from scipy.optimize import nnls

    rows = []
    targets = []
    for name, ((w, length), _classes, (dh, _dl, _dk, _o, _th)) in PAPER_CONFIGS.items():
        latency_ms, power_w, luts, _, _, throughput = PAPER_TABLE4[name]
        n = w * length
        rows.append([1.0, luts, throughput * n * dh / 1e9])
        targets.append(power_w)
    coef, _ = nnls(np.array(rows), np.array(targets))
    return {"static": coef[0], "per_lut": coef[1], "per_gbps": coef[2]}
