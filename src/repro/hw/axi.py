"""Host-to-accelerator I/O model (the paper's AXI_HPM_LPD link).

The CPU streams each sample's W x L discretized values (one byte each at
M = 256) to the FPGA over AXI and reads back the class scores.  This
module models that transfer and answers whether the design is compute- or
I/O-bound: under streaming, input transfer of sample k+1 overlaps BiConv
of sample k, so the effective initiation interval is
max(compute_interval, transfer_cycles).
"""

from __future__ import annotations

from dataclasses import dataclass

from .arch import HardwareSpec
from .pipeline import pipeline_schedule

__all__ = ["AxiLinkConfig", "IoAnalysis", "io_analysis"]


@dataclass(frozen=True)
class AxiLinkConfig:
    """AXI link parameters (defaults: 32-bit LPD port at the fabric clock)."""

    data_width_bits: int = 32
    bus_frequency_mhz: float = 250.0
    burst_length: int = 16  # beats per burst
    burst_overhead_cycles: int = 4  # address phase + response per burst

    def __post_init__(self) -> None:
        if self.data_width_bits % 8:
            raise ValueError("data_width_bits must be byte-aligned")
        if self.burst_length < 1:
            raise ValueError("burst_length must be >= 1")


@dataclass(frozen=True)
class IoAnalysis:
    """Transfer-vs-compute balance of one design point."""

    input_bytes: int
    output_bytes: int
    transfer_cycles: int  # in fabric-clock cycles
    compute_interval: int
    effective_interval: int
    io_bound: bool

    @property
    def io_utilization(self) -> float:
        """Fraction of the steady-state interval the link is busy."""
        return self.transfer_cycles / self.effective_interval


def _burst_cycles(n_bytes: int, link: AxiLinkConfig) -> int:
    beats = -(-n_bytes * 8 // link.data_width_bits)  # ceil
    bursts = -(-beats // link.burst_length)
    return beats + bursts * link.burst_overhead_cycles


def io_analysis(spec: HardwareSpec, link: AxiLinkConfig = AxiLinkConfig()) -> IoAnalysis:
    """Model per-sample AXI traffic against the compute pipeline."""
    input_bytes = spec.n_features  # one byte per discretized value (M=256)
    # Scores: one accumulator word per (voter-summed) class.
    output_bytes = spec.n_classes * 4
    bus_cycles = _burst_cycles(input_bytes, link) + _burst_cycles(output_bytes, link)
    # Convert bus cycles to fabric cycles.
    transfer_cycles = int(round(bus_cycles * spec.frequency_mhz / link.bus_frequency_mhz))
    compute = pipeline_schedule(spec).initiation_interval
    effective = max(compute, transfer_cycles)
    return IoAnalysis(
        input_bytes=input_bytes,
        output_bytes=output_bytes,
        transfer_cycles=transfer_cycles,
        compute_interval=compute,
        effective_interval=effective,
        io_bound=transfer_cycles > compute,
    )
