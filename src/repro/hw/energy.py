"""Energy accounting: per-inference energy and battery-life estimation.

Resource-stringent devices are energy-budgeted, not just power-budgeted:
an implanted BCI runs from a ~200 mWh-class cell.  This module combines
the calibrated power model with the cycle model to answer the questions a
deployment actually asks: microjoules per inference, and hours of
continuous operation at a given inference rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from .arch import HardwareSpec
from .cycles import stage_cycles
from .pipeline import pipeline_schedule
from .power import estimate_power_w

__all__ = ["EnergyReport", "energy_report"]


@dataclass(frozen=True)
class EnergyReport:
    """Energy figures for one UniVSA hardware instance."""

    power_w: float
    energy_per_inference_uj: float  # streaming steady state
    energy_per_inference_burst_uj: float  # single-shot (full latency)
    max_inference_rate: float  # samples/s at full utilization

    def battery_hours(self, capacity_mwh: float, inferences_per_s: float) -> float:
        """Continuous runtime on a battery at a given workload.

        The duty-cycled power is the active-energy rate plus nothing else
        (static power is folded into the calibrated per-LUT coefficient,
        which scales with utilization here).
        """
        if inferences_per_s <= 0:
            raise ValueError("inferences_per_s must be positive")
        if inferences_per_s > self.max_inference_rate:
            raise ValueError(
                f"workload {inferences_per_s:.0f}/s exceeds peak rate "
                f"{self.max_inference_rate:.0f}/s"
            )
        active_power_w = (
            self.energy_per_inference_uj * 1e-6 * inferences_per_s
        )
        return capacity_mwh * 1e-3 / active_power_w if active_power_w > 0 else float("inf")


def energy_report(spec: HardwareSpec) -> EnergyReport:
    """Derive energy figures from the calibrated power + cycle models."""
    power = estimate_power_w(spec)
    schedule = pipeline_schedule(spec)
    period_s = spec.clock_period_ns() * 1e-9
    streaming_energy_j = power * schedule.initiation_interval * period_s
    burst_energy_j = power * stage_cycles(spec).total * period_s
    return EnergyReport(
        power_w=power,
        energy_per_inference_uj=streaming_energy_j * 1e6,
        energy_per_inference_burst_uj=burst_energy_j * 1e6,
        max_inference_rate=schedule.throughput(spec.frequency_mhz),
    )
