"""Hardware penalty for co-design: Eq. 6 and Eq. 7 of the paper.

    Resource ~= beta * D_K * O * D_H                          (Eq. 6)
    L_HW = lambda1 * Memory/M0 + lambda2 * Resource/R0        (Eq. 7)

The basis (M0, R0) is the paper's reference configuration
(D_H, D_L, D_K, O, Theta, M) = (4, 2, 3, 64, 1, 256); lambda1 = lambda2 =
0.005 in the evaluation.  The search objective is ``accuracy - L_HW``.
"""

from __future__ import annotations

from repro.core.config import UniVSAConfig

from .memory import memory_bits

__all__ = [
    "BASIS_CONFIG",
    "resource_units",
    "hardware_penalty",
    "codesign_objective",
]

BASIS_CONFIG = UniVSAConfig(
    d_high=4, d_low=2, kernel_size=3, out_channels=64, voters=1, levels=256
)


def resource_units(config: UniVSAConfig, beta: float = 1.0) -> float:
    """Eq. 6: Resource ~= beta * D_K * O * D_H.

    Without BiConv the datapath reduces to the encoding row over D_H.
    """
    if config.use_biconv:
        return beta * config.kernel_size * config.out_channels * config.d_high
    return beta * config.d_high


def hardware_penalty(
    config: UniVSAConfig,
    input_shape: tuple[int, int],
    n_classes: int,
    lambda1: float = 0.005,
    lambda2: float = 0.005,
) -> float:
    """Eq. 7: normalized memory + resource penalty L_HW."""
    memory = memory_bits(config, input_shape, n_classes)
    basis_memory = memory_bits(BASIS_CONFIG, input_shape, n_classes)
    resource = resource_units(config)
    basis_resource = resource_units(BASIS_CONFIG)
    return lambda1 * memory / basis_memory + lambda2 * resource / basis_resource


def codesign_objective(
    accuracy: float,
    config: UniVSAConfig,
    input_shape: tuple[int, int],
    n_classes: int,
    lambda1: float = 0.005,
    lambda2: float = 0.005,
) -> float:
    """The search objective obj = Acc - L_HW (Sec. V-A, Model Design)."""
    return accuracy - hardware_penalty(config, input_shape, n_classes, lambda1, lambda2)
