"""Structural description of the UniVSA hardware (Fig. 5 architecture).

Derives every dimension the cycle/resource/power models need from a model
configuration and input shape: the DVP lookup stream, the double-buffered
binary-convolution engine parallel over O, the encoding adder tree, and the
soft-voting similarity accumulators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import UniVSAConfig

__all__ = ["HardwareSpec"]


@dataclass(frozen=True)
class HardwareSpec:
    """All structural quantities of one UniVSA hardware instance."""

    config: UniVSAConfig
    input_shape: tuple[int, int]
    n_classes: int
    frequency_mhz: float = 250.0  # paper: 250 MHz on ZU3EG

    # ------------------------------------------------------------------
    @property
    def n_features(self) -> int:
        """N = W x L input features."""
        return self.input_shape[0] * self.input_shape[1]

    @property
    def positions(self) -> int:
        """Output positions W' x L' ('same' convolution => W x L)."""
        return self.n_features

    @property
    def alpha(self) -> int:
        """Cycles per convolution iteration: alpha = max(D_K, log2 D_H).

        One iteration streams a kernel column (D_K values) while the
        popcount tree over D_H channels needs log2(D_H) pipeline stages;
        the slower of the two paces the engine (Fig. 5, bottom right).
        """
        log_dh = max(1, math.ceil(math.log2(max(self.config.d_high, 2))))
        return max(self.config.kernel_size, log_dh)

    @property
    def conv_iterations(self) -> int:
        """W' x L' x D_K iterations (Sec. IV-A, Binary Convolution)."""
        return self.positions * self.config.kernel_size

    @property
    def conv_datapath_units(self) -> int:
        """Eq. 6 structural size: D_K x O x D_H XNOR/accumulate cells."""
        return self.config.kernel_size * self.config.out_channels * self.config.d_high

    @property
    def encoder_tree_depth(self) -> int:
        """Adder-tree depth of the encoding stage: ceil(log2 O)."""
        return max(1, math.ceil(math.log2(max(self.config.encoding_channels(), 2))))

    @property
    def similarity_units(self) -> int:
        """Parallel accumulators: Theta x C (partial parallelism, Sec. IV-A)."""
        return self.config.voters * self.n_classes

    @property
    def accumulator_width(self) -> int:
        """Bit width of similarity accumulators: ceil(log2 (W*L)) + 1."""
        return math.ceil(math.log2(max(self.positions, 2))) + 1

    @property
    def line_buffer_bits(self) -> int:
        """Conv line buffer: D_K rows of L positions x D_H channels."""
        return self.config.d_high * self.input_shape[1] * self.config.kernel_size

    def clock_period_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1000.0 / self.frequency_mhz
