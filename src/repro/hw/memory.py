"""Memory-footprint model: Eq. 5 of the paper, with per-group breakdown.

    Memory = M*(D_H + D_L) + O*D_H*D_K^2 + W*L*O + W*L*Theta*C   [bits]

The four terms are the stored vector groups V, K, F, C.  This formula
reproduces the UniVSA memory column of Table II exactly (tested).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import UniVSAConfig

__all__ = ["MemoryBreakdown", "memory_breakdown", "memory_bits", "memory_kb"]


@dataclass(frozen=True)
class MemoryBreakdown:
    """Bits per stored vector group."""

    value_bits: int  # V = V_H + V_L
    kernel_bits: int  # K
    feature_bits: int  # F
    class_bits: int  # C

    @property
    def total_bits(self) -> int:
        """Total stored bits over all vector groups."""
        return self.value_bits + self.kernel_bits + self.feature_bits + self.class_bits

    @property
    def total_kb(self) -> float:
        # The paper reports decimal kilobytes (1 KB = 1000 bytes); this
        # convention reproduces its Table II column to the printed digit.
        """Total size in decimal kilobytes (paper convention)."""
        return self.total_bits / 8000.0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view of the record."""
        return {
            "V": self.value_bits,
            "K": self.kernel_bits,
            "F": self.feature_bits,
            "C": self.class_bits,
        }


def memory_breakdown(
    config: UniVSAConfig, input_shape: tuple[int, int], n_classes: int
) -> MemoryBreakdown:
    """Eq. 5 term by term for a UniVSA design point.

    Honors the ablation switches: without DVP there is no V_L; without
    BiConv there is no K and F spans D_H channels instead of O.
    """
    w, length = input_shape
    n = w * length
    value_bits = config.levels * config.d_high
    if config.use_dvp:
        value_bits += config.levels * config.d_low
    if config.use_biconv:
        kernel_bits = config.out_channels * config.d_high * config.kernel_size**2
        feature_bits = n * config.out_channels
    else:
        kernel_bits = 0
        feature_bits = n * config.d_high
    class_bits = n * config.voters * n_classes
    return MemoryBreakdown(
        value_bits=value_bits,
        kernel_bits=kernel_bits,
        feature_bits=feature_bits,
        class_bits=class_bits,
    )


def memory_bits(
    config: UniVSAConfig, input_shape: tuple[int, int], n_classes: int
) -> int:
    """Total Eq. 5 bits."""
    return memory_breakdown(config, input_shape, n_classes).total_bits


def memory_kb(
    config: UniVSAConfig, input_shape: tuple[int, int], n_classes: int
) -> float:
    """Total Eq. 5 kilobytes (the Table II unit)."""
    return memory_breakdown(config, input_shape, n_classes).total_kb
