"""Per-stage cycle model of the UniVSA pipeline (Fig. 5 scheduling).

Stage timings, matching the micro-architecture description:

* **DVP**: sequential (one feature value looked up per cycle, Sec. IV-A)
  behind an input FIFO.
* **BiConv**: W' x L' x D_K iterations, each taking
  alpha = max(D_K, log2 D_H) cycles plus a small per-iteration pipeline
  overhead (operand fetch under double buffering).  The overhead constant
  is calibrated against the paper's Table IV throughput column (see
  :mod:`repro.hw.calibration`); the published numbers are consistent with
  ~1.7 extra cycles per iteration across all six tasks.
* **Encoding**: one output position per cycle through the XNOR + adder
  tree, plus the tree drain.
* **Similarity**: one position per cycle with Theta x C accumulators in
  parallel, plus the final compare chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from .arch import HardwareSpec
from .calibration import CYCLE_CONSTANTS

__all__ = ["StageCycles", "stage_cycles", "total_latency_cycles", "latency_ms"]


@dataclass(frozen=True)
class StageCycles:
    """Cycle counts of the four computing stages plus control."""

    dvp: int
    conv: int
    encode: int
    similarity: int
    control: int

    @property
    def total(self) -> int:
        """End-to-end latency for one (non-streamed) sample."""
        return self.dvp + self.conv + self.encode + self.similarity + self.control

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view of the record."""
        return {
            "dvp": self.dvp,
            "biconv": self.conv,
            "encode": self.encode,
            "similarity": self.similarity,
            "control": self.control,
        }


def stage_cycles(spec: HardwareSpec) -> StageCycles:
    """Cycle counts per stage for one input sample."""
    constants = CYCLE_CONSTANTS
    dvp = spec.n_features * constants.dvp_cycles_per_feature + constants.fifo_depth
    conv_per_iter = spec.alpha + constants.conv_iteration_overhead
    conv = int(round(spec.conv_iterations * conv_per_iter))
    encode = spec.positions + spec.encoder_tree_depth + constants.stage_handoff
    similarity = spec.positions + spec.accumulator_width + constants.stage_handoff
    control = constants.controller_overhead
    return StageCycles(
        dvp=int(dvp), conv=conv, encode=int(encode), similarity=int(similarity), control=control
    )


def total_latency_cycles(spec: HardwareSpec) -> int:
    """Single-sample latency in cycles (stages run back to back)."""
    return stage_cycles(spec).total


def latency_ms(spec: HardwareSpec) -> float:
    """Single-sample latency in milliseconds at the spec's clock."""
    return total_latency_cycles(spec) * spec.clock_period_ns() / 1e6
