"""Hardware model: cycle simulation, resources, power, memory, cost."""

from .arch import HardwareSpec
from .axi import AxiLinkConfig, IoAnalysis, io_analysis
from .energy import EnergyReport, energy_report
from .timeline import render_timeline
from .calibration import (
    CYCLE_CONSTANTS,
    LUT_MODEL,
    PAPER_CONFIGS,
    PAPER_TABLE3,
    PAPER_TABLE4,
    POWER_MODEL,
    fit_lut_model,
    fit_power_model,
)
from .faults import FaultReport, fault_sweep, inject_bit_flips
from .cost import BASIS_CONFIG, codesign_objective, hardware_penalty, resource_units
from .cycles import StageCycles, latency_ms, stage_cycles, total_latency_cycles
from .memory import MemoryBreakdown, memory_bits, memory_breakdown, memory_kb
from .pipeline import PipelineSchedule, pipeline_schedule, throughput_per_s
from .power import estimate_power_w
from .report import HardwareReport, hardware_report
from .rtl import RtlBundle, generate_rtl
from .resources import ResourceReport, estimate_resources, stage_lut_shares
from .simulator import HardwareSimulator, SimulationResult, StageEvent
from .verify import verify_bit_exactness

__all__ = [
    "HardwareSpec",
    "AxiLinkConfig",
    "IoAnalysis",
    "io_analysis",
    "EnergyReport",
    "energy_report",
    "render_timeline",
    "FaultReport",
    "fault_sweep",
    "inject_bit_flips",
    "CYCLE_CONSTANTS",
    "LUT_MODEL",
    "POWER_MODEL",
    "PAPER_CONFIGS",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "fit_lut_model",
    "fit_power_model",
    "BASIS_CONFIG",
    "codesign_objective",
    "hardware_penalty",
    "resource_units",
    "StageCycles",
    "stage_cycles",
    "total_latency_cycles",
    "latency_ms",
    "MemoryBreakdown",
    "memory_bits",
    "memory_breakdown",
    "memory_kb",
    "PipelineSchedule",
    "pipeline_schedule",
    "throughput_per_s",
    "estimate_power_w",
    "HardwareReport",
    "hardware_report",
    "RtlBundle",
    "generate_rtl",
    "ResourceReport",
    "estimate_resources",
    "stage_lut_shares",
    "HardwareSimulator",
    "SimulationResult",
    "StageEvent",
    "verify_bit_exactness",
]
