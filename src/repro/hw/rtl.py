"""Verilog generation for deployed UniVSA models.

The paper implements UniVSA in Verilog on a ZU3EG; this module closes the
same loop: given exported binary artifacts it emits a synthesizable-style
RTL bundle —

* memory initialization files (``.mem``, ``$readmemh`` format) for the
  value tables V_H/V_L, the importance mask, kernels K, feature vectors F
  and class vectors C (one word per O-channel / position / class row,
  matching the datapath's access pattern);
* per-stage modules: ``dvp_unit`` (table lookup + mask mux), the
  ``biconv_engine`` (XNOR + popcount parallel over O, thresholds from the
  folded BatchNorm), ``encode_unit`` (XNOR + adder tree over O),
  ``similarity_unit`` (Theta x C accumulators), and a ``univsa_top`` FSM
  wiring them behind a byte-stream input;
* a self-checking testbench with stimulus and expected-score vectors
  produced by the golden model (:class:`repro.core.UniVSAArtifacts`).

No simulator is available offline, so tests validate the bundle
structurally: deterministic output, balanced module/endmodule, width
parameters consistent with the artifact shapes, and — most importantly —
the ``.mem`` contents decode bit-exactly back to the artifact arrays and
the testbench's expected scores equal the golden model's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.export import UniVSAArtifacts

__all__ = ["RtlBundle", "generate_rtl", "bits_to_hex_words", "decode_mem_file"]


def _bits_from_bipolar(vector: np.ndarray) -> np.ndarray:
    """Bipolar {-1,+1} -> bit {0,1} arrays (+1 -> 1)."""
    return (np.asarray(vector) > 0).astype(np.uint8)


def bits_to_hex_words(bits: np.ndarray) -> str:
    """Pack a 1-D bit array (MSB first) into a hex literal string."""
    bits = np.asarray(bits, dtype=np.uint8)
    value = 0
    for bit in bits:
        value = (value << 1) | int(bit)
    width = max((len(bits) + 3) // 4, 1)
    return format(value, f"0{width}x")


def _mem_lines(rows: np.ndarray) -> str:
    """One hex word per row of a (N, bits) bit matrix ($readmemh format)."""
    return "\n".join(bits_to_hex_words(row) for row in rows) + "\n"


def decode_mem_file(text: str, width_bits: int) -> np.ndarray:
    """Inverse of :func:`_mem_lines`: hex lines -> (N, width_bits) bits."""
    rows = []
    for line in text.strip().splitlines():
        value = int(line.strip(), 16)
        bits = [(value >> (width_bits - 1 - i)) & 1 for i in range(width_bits)]
        rows.append(bits)
    return np.asarray(rows, dtype=np.uint8)


@dataclass
class RtlBundle:
    """All generated files, path -> content."""

    files: dict[str, str]
    top_module: str = "univsa_top"

    def write_to(self, directory: str | Path) -> Path:
        """Materialize the bundle on disk; returns the directory."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for name, content in self.files.items():
            (directory / name).write_text(content)
        return directory

    def verilog_files(self) -> list[str]:
        """Names of the generated Verilog sources."""
        return [n for n in self.files if n.endswith(".v")]

    def mem_files(self) -> list[str]:
        """Names of the generated $readmemh memory images."""
        return [n for n in self.files if n.endswith(".mem")]


def _dvp_unit(d_high: int, d_low: int, levels: int, has_low: bool) -> str:
    addr_bits = max(1, math.ceil(math.log2(levels)))
    low_rom = (
        f"""
  reg [{d_low - 1}:0] v_low_rom [0:{levels - 1}];
  initial $readmemh("v_low.mem", v_low_rom);
"""
        if has_low
        else ""
    )
    low_select = (
        f"""
      // Low-importance features use V_L in the low D_L channels and
      // constant +1 elsewhere (zero-cost channel padding).
      value_vector <= {{{{(DH - DL){{1'b1}}}}, v_low_rom[level]}};
"""
        if has_low
        else """
      value_vector <= v_high_rom[level];
"""
    )
    return f"""// DVP: sequential value projection (one feature per cycle, Sec. IV-A).
module dvp_unit #(
  parameter DH = {d_high},
  parameter DL = {d_low},
  parameter LEVEL_BITS = {addr_bits}
) (
  input  wire clk,
  input  wire valid_in,
  input  wire [LEVEL_BITS-1:0] level,
  input  wire importance,            // mask bit for this feature position
  output reg  [DH-1:0] value_vector,
  output reg  valid_out
);
  reg [{d_high - 1}:0] v_high_rom [0:{levels - 1}];
  initial $readmemh("v_high.mem", v_high_rom);
{low_rom}
  always @(posedge clk) begin
    valid_out <= valid_in;
    if (importance) begin
      value_vector <= v_high_rom[level];
    end else begin{low_select}    end
  end
endmodule
"""


def _biconv_engine(o: int, d_high: int, d_k: int, positions: int, acc_bits: int) -> str:
    reduction = d_high * d_k * d_k
    return f"""// BiConv: XNOR + popcount, parallel over the O output channels.
// One column of the D_K x D_K window is consumed per iteration; the
// popcount tree over DH channels is log2(DH) stages deep, giving the
// alpha = max(D_K, log2 DH) pacing of Fig. 5.
module biconv_engine #(
  parameter O = {o},
  parameter DH = {d_high},
  parameter DK = {d_k},
  parameter REDUCTION = {reduction},
  parameter ACC_BITS = {acc_bits}
) (
  input  wire clk,
  input  wire rst,
  input  wire valid_in,
  input  wire [REDUCTION-1:0] window,      // marshalled operand block
  output reg  [O-1:0] feature_bits,
  output reg  valid_out
);
  reg [REDUCTION-1:0] kernel_rom [0:O-1];
  reg signed [ACC_BITS-1:0] threshold_rom [0:O-1];
  initial $readmemh("kernel.mem", kernel_rom);
  initial $readmemh("conv_threshold.mem", threshold_rom);

  integer ch;
  reg [REDUCTION-1:0] matches;
  reg signed [ACC_BITS-1:0] acc;
  integer b;
  always @(posedge clk) begin
    if (rst) begin
      feature_bits <= {{O{{1'b0}}}};
      valid_out <= 1'b0;
    end else begin
      valid_out <= valid_in;
      for (ch = 0; ch < O; ch = ch + 1) begin
        matches = ~(window ^ kernel_rom[ch]);
        acc = 0;
        for (b = 0; b < REDUCTION; b = b + 1)
          acc = acc + {{1'b0, matches[b]}};
        // dot = 2*popcount - REDUCTION, compared against the folded
        // BatchNorm threshold (0 when training ran without BN).
        feature_bits[ch] <= ((acc <<< 1) - REDUCTION >= threshold_rom[ch]);
      end
    end
  end
endmodule
"""


def _window_marshaller(d_high: int, d_k: int, w: int, length: int) -> str:
    pad = d_k // 2
    return f"""// Window marshaller: line buffer + column mux feeding the conv engine.
// Holds D_K rows of the value volume (D_H bits per site); each request
// for output position (row, col) produces the D_H x D_K x D_K operand
// block with bipolar -1 (bit 0) border padding.
module window_marshaller #(
  parameter DH = {d_high},
  parameter DK = {d_k},
  parameter W = {w},
  parameter L = {length},
  parameter PAD = {pad}
) (
  input  wire clk,
  input  wire wr_en,
  input  wire [$clog2(W*L)-1:0] wr_addr,
  input  wire [DH-1:0] wr_data,
  input  wire [$clog2(W)-1:0] row,
  input  wire [$clog2(L)-1:0] col,
  output reg  [DH*DK*DK-1:0] window
);
  // Full-volume buffer (one bank of the top module's ping-pong pair).
  reg [DH-1:0] volume [0:W*L-1];
  always @(posedge clk) if (wr_en) volume[wr_addr] <= wr_data;

  integer dr, dc;
  integer r_idx, c_idx;
  always @(posedge clk) begin
    for (dr = 0; dr < DK; dr = dr + 1) begin
      for (dc = 0; dc < DK; dc = dc + 1) begin
        r_idx = row + dr - PAD;
        c_idx = col + dc - PAD;
        if (r_idx < 0 || r_idx >= W || c_idx < 0 || c_idx >= L)
          // -1 border padding: bit pattern 0 in the bipolar encoding.
          window[(dr*DK+dc)*DH +: DH] <= {{DH{{1'b0}}}};
        else
          window[(dr*DK+dc)*DH +: DH] <= volume[r_idx*L + c_idx];
      end
    end
  end
endmodule
"""


def _encode_unit(o: int, positions: int, tree_depth: int) -> str:
    return f"""// Encoding: s_j = sgn(sum_o F[o][j] * x[o][j]) via XNOR + adder tree.
module encode_unit #(
  parameter O = {o},
  parameter POSITIONS = {positions},
  parameter TREE_DEPTH = {tree_depth},
  parameter POS_BITS = {max(1, math.ceil(math.log2(positions)))}
) (
  input  wire clk,
  input  wire valid_in,
  input  wire [POS_BITS-1:0] position,
  input  wire [O-1:0] channel_bits,
  output reg  sample_bit,
  output reg  valid_out
);
  reg [O-1:0] feature_rom [0:POSITIONS-1];
  initial $readmemh("feature.mem", feature_rom);

  integer i;
  reg [O-1:0] matches;
  integer acc;
  always @(posedge clk) begin
    valid_out <= valid_in;
    matches = ~(channel_bits ^ feature_rom[position]);
    acc = 0;
    for (i = 0; i < O; i = i + 1)
      acc = acc + {{31'b0, matches[i]}};
    // sgn with the +1 tiebreak: dot = 2*acc - O >= 0.
    sample_bit <= ((acc << 1) >= O);
  end
endmodule
"""


def _similarity_unit(voters: int, n_classes: int, positions: int, acc_bits: int) -> str:
    rows = voters * n_classes
    return f"""// Similarity: Theta x C parallel accumulators over the sample vector.
module similarity_unit #(
  parameter VOTERS = {voters},
  parameter CLASSES = {n_classes},
  parameter POSITIONS = {positions},
  parameter ACC_BITS = {acc_bits},
  parameter POS_BITS = {max(1, math.ceil(math.log2(positions)))}
) (
  input  wire clk,
  input  wire rst,
  input  wire valid_in,
  input  wire [POS_BITS-1:0] position,
  input  wire sample_bit,
  input  wire last_position,
  output reg  signed [VOTERS*CLASSES*ACC_BITS-1:0] scores_flat,
  output reg  done
);
  // One packed row per (voter, class): POSITIONS bits of the class vector.
  reg [POSITIONS-1:0] class_rom [0:{rows - 1}];
  initial $readmemh("class.mem", class_rom);

  reg signed [ACC_BITS-1:0] acc [0:{rows - 1}];
  integer r;
  always @(posedge clk) begin
    if (rst) begin
      for (r = 0; r < {rows}; r = r + 1) acc[r] <= 0;
      done <= 1'b0;
    end else if (valid_in) begin
      for (r = 0; r < {rows}; r = r + 1) begin
        // XNOR match adds +1, mismatch adds -1 (dot-product accumulate).
        if (class_rom[r][position] == sample_bit)
          acc[r] <= acc[r] + 1;
        else
          acc[r] <= acc[r] - 1;
      end
      if (last_position) begin
        for (r = 0; r < {rows}; r = r + 1)
          scores_flat[r*ACC_BITS +: ACC_BITS] <= acc[r];
        done <= 1'b1;
      end
    end
  end
endmodule
"""


def _top_module(artifacts: UniVSAArtifacts, acc_bits: int) -> str:
    config = artifacts.config
    w, length = artifacts.input_shape
    return f"""// UniVSA top: central controller + the four computing stages (Fig. 5).
// Generated from exported artifacts; configuration
// (D_H, D_L, D_K, O, Theta) = {config.as_paper_tuple()}, input (W, L) = ({w}, {length}).
module univsa_top #(
  parameter W = {w},
  parameter L = {length},
  parameter N = {w * length},
  parameter DH = {config.d_high},
  parameter DL = {config.d_low},
  parameter DK = {config.kernel_size},
  parameter O = {config.encoding_channels()},
  parameter VOTERS = {config.voters},
  parameter CLASSES = {artifacts.n_classes},
  parameter LEVELS = {config.levels},
  parameter ACC_BITS = {acc_bits}
) (
  input  wire clk,
  input  wire rst,
  // byte stream of discretized feature values, row-major over (W, L)
  input  wire in_valid,
  input  wire [7:0] in_level,
  output wire in_ready,
  // per-class soft-voting scores (voter-summed off-chip or by the host)
  output wire signed [VOTERS*CLASSES*ACC_BITS-1:0] scores_flat,
  output wire out_valid
);
  // Importance mask ROM (one bit per feature position).
  reg mask_rom [0:N-1];
  initial $readmemh("mask.mem", mask_rom);

  // ---- control FSM -------------------------------------------------
  localparam S_LOAD = 2'd0, S_CONV = 2'd1, S_ENCODE = 2'd2, S_DONE = 2'd3;
  reg [1:0] state;
  reg [$clog2(N)-1:0] feature_index;
  assign in_ready = (state == S_LOAD);

  // ---- stage instances ---------------------------------------------
  wire [DH-1:0] value_vector;
  wire dvp_valid;
  dvp_unit #(.DH(DH), .DL(DL), .LEVEL_BITS($clog2(LEVELS))) u_dvp (
    .clk(clk),
    .valid_in(in_valid && in_ready),
    .level(in_level[$clog2(LEVELS)-1:0]),
    .importance(mask_rom[feature_index]),
    .value_vector(value_vector),
    .valid_out(dvp_valid)
  );

  // Double buffering (Sec. IV-A): DVP writes into the marshaller's
  // volume bank while the conv engine drains the previous sample.
  reg bank;

  wire [O-1:0] feature_bits;
  wire conv_valid;
  wire [DH*DK*DK-1:0] window;
  window_marshaller #(.DH(DH), .DK(DK), .W(W), .L(L)) u_marshal (
    .clk(clk),
    .wr_en(dvp_valid),
    .wr_addr(feature_index),
    .wr_data(value_vector),
    .row(feature_index / L[$clog2(W)-1:0]),
    .col(feature_index % L[$clog2(L)-1:0]),
    .window(window)
  );

  biconv_engine #(.O(O), .DH(DH), .DK(DK), .ACC_BITS(ACC_BITS)) u_conv (
    .clk(clk), .rst(rst), .valid_in(state == S_CONV),
    .window(window), .feature_bits(feature_bits), .valid_out(conv_valid)
  );

  wire sample_bit, encode_valid;
  encode_unit #(.O(O), .POSITIONS(N)) u_encode (
    .clk(clk), .valid_in(conv_valid),
    .position(feature_index), .channel_bits(feature_bits),
    .sample_bit(sample_bit), .valid_out(encode_valid)
  );

  similarity_unit #(
    .VOTERS(VOTERS), .CLASSES(CLASSES), .POSITIONS(N), .ACC_BITS(ACC_BITS)
  ) u_similarity (
    .clk(clk), .rst(rst), .valid_in(encode_valid),
    .position(feature_index), .sample_bit(sample_bit),
    .last_position(feature_index == N - 1),
    .scores_flat(scores_flat), .done(out_valid)
  );

  // ---- sequencing ---------------------------------------------------
  always @(posedge clk) begin
    if (rst) begin
      state <= S_LOAD;
      feature_index <= 0;
      bank <= 1'b0;
    end else begin
      case (state)
        S_LOAD: if (in_valid) begin
          // u_marshal captures value_vector at dvp_valid.
          if (feature_index == N - 1) begin
            feature_index <= 0;
            bank <= ~bank;
            state <= S_CONV;
          end else feature_index <= feature_index + 1;
        end
        S_CONV: if (conv_valid) begin
          if (feature_index == N - 1) begin
            feature_index <= 0;
            state <= S_DONE;
          end else feature_index <= feature_index + 1;
        end
        S_DONE: state <= S_LOAD;
        default: state <= S_LOAD;
      endcase
    end
  end
endmodule
"""


def _testbench(
    artifacts: UniVSAArtifacts, stimulus: np.ndarray, expected: np.ndarray, acc_bits: int
) -> str:
    n_samples = len(stimulus)
    n = artifacts.positions
    rows = artifacts.config.voters * artifacts.n_classes
    return f"""// Self-checking testbench: drives stimulus.mem through univsa_top and
// compares against expected.mem (golden scores from the Python model).
`timescale 1ns/1ps
module univsa_tb;
  localparam N_SAMPLES = {n_samples};
  localparam N = {n};
  localparam ROWS = {rows};
  localparam ACC_BITS = {acc_bits};

  reg clk = 0; always #2 clk = ~clk;  // 250 MHz
  reg rst = 1;
  reg in_valid = 0;
  reg [7:0] in_level;
  wire in_ready;
  wire signed [ROWS*ACC_BITS-1:0] scores_flat;
  wire out_valid;

  univsa_top dut (
    .clk(clk), .rst(rst), .in_valid(in_valid), .in_level(in_level),
    .in_ready(in_ready), .scores_flat(scores_flat), .out_valid(out_valid)
  );

  reg [7:0] stimulus [0:N_SAMPLES*N-1];
  reg signed [ACC_BITS-1:0] expected [0:N_SAMPLES*ROWS-1];
  initial $readmemh("stimulus.mem", stimulus);
  initial $readmemh("expected.mem", expected);

  integer s, f, r, errors;
  initial begin
    errors = 0;
    repeat (4) @(posedge clk);
    rst = 0;
    for (s = 0; s < N_SAMPLES; s = s + 1) begin
      for (f = 0; f < N; f = f + 1) begin
        @(posedge clk);
        in_valid = 1;
        in_level = stimulus[s*N + f];
      end
      @(posedge clk) in_valid = 0;
      wait (out_valid);
      for (r = 0; r < ROWS; r = r + 1)
        if (scores_flat[r*ACC_BITS +: ACC_BITS] !== expected[s*ROWS + r]) begin
          $display("MISMATCH sample %0d row %0d", s, r);
          errors = errors + 1;
        end
    end
    if (errors == 0) $display("PASS: %0d samples bit-exact", N_SAMPLES);
    else $display("FAIL: %0d mismatches", errors);
    $finish;
  end
endmodule
"""


def generate_rtl(
    artifacts: UniVSAArtifacts,
    stimulus_levels: np.ndarray | None = None,
) -> RtlBundle:
    """Emit the full Verilog bundle for a deployed UniVSA model.

    ``stimulus_levels`` (B, W, L) optionally drives the self-checking
    testbench; expected scores are computed with the golden model.
    Requires BiConv enabled (the paper's hardware always has it).
    """
    config = artifacts.config
    if artifacts.kernel is None:
        raise ValueError("RTL generation requires a BiConv model (kernel present)")
    positions = artifacts.positions
    acc_bits = math.ceil(math.log2(positions + 1)) + 2

    files: dict[str, str] = {}
    # ---- memory images -------------------------------------------------
    files["v_high.mem"] = _mem_lines(_bits_from_bipolar(artifacts.value_high))
    if artifacts.value_low is not None:
        files["v_low.mem"] = _mem_lines(_bits_from_bipolar(artifacts.value_low))
    files["mask.mem"] = _mem_lines(
        np.asarray(artifacts.mask, dtype=np.uint8).reshape(-1, 1)
    )
    o = artifacts.kernel.shape[0]
    files["kernel.mem"] = _mem_lines(
        _bits_from_bipolar(artifacts.kernel.reshape(o, -1))
    )
    # Thresholds as acc_bits-wide two's-complement hex.
    thresholds = np.nan_to_num(
        artifacts.conv_thresholds, posinf=2 ** (acc_bits - 1) - 1,
        neginf=-(2 ** (acc_bits - 1)),
    )
    threshold_words = [
        format(int(round(t)) & ((1 << acc_bits) - 1), f"0{(acc_bits + 3) // 4}x")
        for t in thresholds
    ]
    files["conv_threshold.mem"] = "\n".join(threshold_words) + "\n"
    files["feature.mem"] = _mem_lines(
        _bits_from_bipolar(artifacts.feature_vectors.T)  # one O-wide word/position
    )
    files["class.mem"] = _mem_lines(
        _bits_from_bipolar(
            artifacts.class_vectors.reshape(-1, positions)[:, ::-1]
            # bit index == position: position p maps to bit p (LSB-first),
            # so reverse before MSB-first hex packing.
        )
    )

    # ---- RTL ------------------------------------------------------------
    tree_depth = max(1, math.ceil(math.log2(max(config.encoding_channels(), 2))))
    files["dvp_unit.v"] = _dvp_unit(
        config.d_high, config.d_low, config.levels, artifacts.value_low is not None
    )
    w, length = artifacts.input_shape
    files["window_marshaller.v"] = _window_marshaller(
        config.d_high, config.kernel_size, w, length
    )
    files["biconv_engine.v"] = _biconv_engine(
        o, config.d_high, config.kernel_size, positions, acc_bits
    )
    files["encode_unit.v"] = _encode_unit(
        config.encoding_channels(), positions, tree_depth
    )
    files["similarity_unit.v"] = _similarity_unit(
        config.voters, artifacts.n_classes, positions, acc_bits
    )
    files["univsa_top.v"] = _top_module(artifacts, acc_bits)

    # ---- testbench vectors ----------------------------------------------
    if stimulus_levels is not None:
        stimulus_levels = np.asarray(stimulus_levels).reshape(
            (-1,) + artifacts.input_shape
        )
        expected = artifacts.scores(stimulus_levels)  # voter-summed (B, C)
        # Per-voter expected rows: recompute per voter for the testbench.
        s = artifacts.encode(stimulus_levels).astype(np.int64)
        per_voter = np.einsum("bp,vcp->bvc", s, artifacts.class_vectors.astype(np.int64))
        rows = per_voter.reshape(len(stimulus_levels), -1)
        files["stimulus.mem"] = (
            "\n".join(format(int(v), "02x") for v in stimulus_levels.reshape(-1)) + "\n"
        )
        files["expected.mem"] = (
            "\n".join(
                format(int(v) & ((1 << acc_bits) - 1), f"0{(acc_bits + 3) // 4}x")
                for v in rows.reshape(-1)
            )
            + "\n"
        )
        files["univsa_tb.v"] = _testbench(artifacts, stimulus_levels, rows, acc_bits)
        # Cross-check: voter-summed testbench rows match artifact scores.
        assert np.array_equal(per_voter.sum(axis=1), expected)
    return RtlBundle(files=files)
