"""Cross-verification of the hardware functional model.

Checks that the cycle simulator's per-stage functional outputs agree
bit-exactly with the packed XNOR/popcount engine and the integer artifact
path — the hardware-equals-software gate of DESIGN.md Sec. 6.
"""

from __future__ import annotations

import numpy as np

from repro.core.export import UniVSAArtifacts
from repro.core.inference import BitPackedUniVSA

from .arch import HardwareSpec
from .simulator import HardwareSimulator

__all__ = ["verify_bit_exactness"]


def verify_bit_exactness(
    artifacts: UniVSAArtifacts,
    levels: np.ndarray,
    n_classes: int | None = None,
    frequency_mhz: float = 250.0,
) -> bool:
    """Run all three inference paths on ``levels`` and compare exactly.

    Returns True on success; raises AssertionError with a diagnostic on
    the first mismatch.
    """
    spec = HardwareSpec(
        config=artifacts.config,
        input_shape=artifacts.input_shape,
        n_classes=n_classes or artifacts.n_classes,
        frequency_mhz=frequency_mhz,
    )
    simulator = HardwareSimulator(artifacts, spec)
    packed = BitPackedUniVSA(artifacts)

    sim_result = simulator.run(levels)
    int_scores = artifacts.scores(levels)
    packed_scores = packed.scores(levels)

    if not np.array_equal(sim_result.scores, int_scores):
        raise AssertionError("simulator scores differ from integer artifact path")
    if not np.array_equal(int_scores, packed_scores):
        raise AssertionError("packed engine scores differ from integer artifact path")
    if not np.array_equal(sim_result.predictions, artifacts.predict(levels)):
        raise AssertionError("simulator predictions differ from artifact predictions")
    return True
