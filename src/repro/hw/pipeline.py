"""Streaming-pipeline schedule (Fig. 5 bottom-right).

Under streaming inputs, the central controller overlaps DVP of sample
k+1 with BiConv of sample k (double buffering) and the encode/similarity
of sample k-1; the initiation interval is set by the slowest stage —
BiConv in every paper configuration — so throughput = f / conv_cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from .arch import HardwareSpec
from .cycles import StageCycles, stage_cycles

__all__ = ["PipelineSchedule", "pipeline_schedule", "throughput_per_s"]


@dataclass(frozen=True)
class PipelineSchedule:
    """Steady-state schedule of the streaming pipeline."""

    stages: StageCycles
    initiation_interval: int  # cycles between consecutive sample starts
    bottleneck: str

    def latency_cycles(self) -> int:
        """Single-sample fill latency (all stages end to end)."""
        return self.stages.total

    def completion_cycle(self, sample_index: int) -> int:
        """Cycle at which sample ``sample_index`` (0-based) completes."""
        return self.stages.total + sample_index * self.initiation_interval

    def throughput(self, frequency_mhz: float) -> float:
        """Samples per second at the given clock."""
        return frequency_mhz * 1e6 / self.initiation_interval


def pipeline_schedule(spec: HardwareSpec) -> PipelineSchedule:
    """Derive the steady-state schedule for one hardware instance."""
    stages = stage_cycles(spec)
    candidates = {
        "dvp": stages.dvp,
        "biconv": stages.conv,
        "encode": stages.encode,
        "similarity": stages.similarity,
    }
    bottleneck = max(candidates, key=candidates.get)
    return PipelineSchedule(
        stages=stages,
        initiation_interval=candidates[bottleneck],
        bottleneck=bottleneck,
    )


def throughput_per_s(spec: HardwareSpec) -> float:
    """Streaming throughput in samples/second."""
    return pipeline_schedule(spec).throughput(spec.frequency_mhz)
