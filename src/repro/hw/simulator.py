"""Event-driven functional + timing simulator of the UniVSA hardware.

Simulates the four modules (DVP, BiConv, Encoding, Similarity) as a
pipeline under the central controller's schedule: stage s of sample k
starts when both (a) stage s-1 of sample k has produced its buffer and
(b) the stage-s unit has finished sample k-1 (double buffering decouples
producers from consumers by exactly one sample).

Each stage also *computes its real output* via the exported artifacts'
integer path, so the simulator is simultaneously a golden functional model
(verified bit-exact against :class:`repro.core.BitPackedUniVSA`) and a
cycle-accurate schedule model (verified against the analytic
:mod:`repro.hw.cycles` and :mod:`repro.hw.pipeline`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.export import UniVSAArtifacts
from repro.obs import annotate_span, get_registry, stage_timer, trace_span

from .arch import HardwareSpec
from .cycles import stage_cycles

__all__ = ["StageEvent", "SimulationResult", "HardwareSimulator"]

_STAGE_ORDER = ("dvp", "biconv", "encode", "similarity")


@dataclass(frozen=True)
class StageEvent:
    """One stage execution: which unit ran which sample, and when."""

    stage: str
    sample: int
    start_cycle: int
    end_cycle: int

    @property
    def duration(self) -> int:
        """Cycles the event occupied its unit."""
        return self.end_cycle - self.start_cycle


@dataclass
class SimulationResult:
    """Outputs and timeline of a streaming simulation."""

    predictions: np.ndarray
    scores: np.ndarray
    events: list[StageEvent] = field(repr=False, default_factory=list)
    total_cycles: int = 0

    def events_for(self, stage: str) -> list[StageEvent]:
        """All events executed by one stage unit."""
        return [e for e in self.events if e.stage == stage]

    def sample_latency(self, sample: int) -> int:
        """Cycles from the sample's DVP start to its similarity end."""
        mine = [e for e in self.events if e.sample == sample]
        return max(e.end_cycle for e in mine) - min(e.start_cycle for e in mine)

    def initiation_intervals(self) -> list[int]:
        """Observed completion-to-completion distances between samples.

        In steady state this equals the bottleneck stage's duration (the
        pipeline's initiation interval); early samples may complete faster
        while the pipe fills.
        """
        ends = sorted(
            (e.sample, e.end_cycle) for e in self.events if e.stage == "similarity"
        )
        return [b[1] - a[1] for a, b in zip(ends, ends[1:])]

    def utilization(self, stage: str) -> float:
        """Busy fraction of a stage unit over the whole run."""
        busy = sum(e.duration for e in self.events_for(stage))
        return busy / self.total_cycles if self.total_cycles else 0.0


class HardwareSimulator:
    """Couples an exported model with a hardware spec and streams samples."""

    def __init__(self, artifacts: UniVSAArtifacts, spec: HardwareSpec) -> None:
        if artifacts.input_shape != spec.input_shape:
            raise ValueError("artifact/spec input-shape mismatch")
        if artifacts.n_classes != spec.n_classes:
            raise ValueError("artifact/spec class-count mismatch")
        self.artifacts = artifacts
        self.spec = spec
        self._durations = stage_cycles(spec).as_dict()

    def _stage_output(self, stage: str, sample_levels: np.ndarray, buffers: dict) -> None:
        """Compute the functional output of ``stage`` into ``buffers``."""
        artifacts = self.artifacts
        if stage == "dvp":
            buffers["volume"] = artifacts.value_volume(sample_levels[None])
        elif stage == "biconv":
            buffers["feature"] = artifacts.feature_map(buffers["volume"])
        elif stage == "encode":
            feature = buffers["feature"]
            flat = feature.reshape(1, feature.shape[1], artifacts.positions)
            accumulated = (
                flat.astype(np.int64) * artifacts.feature_vectors[None].astype(np.int64)
            ).sum(axis=1)
            buffers["sample_vector"] = np.where(accumulated >= 0, 1, -1).astype(np.int8)
        elif stage == "similarity":
            s = buffers["sample_vector"].astype(np.int64)
            stacked = artifacts.class_vectors.astype(np.int64).sum(axis=0)
            buffers["scores"] = s @ stacked.T
        else:  # pragma: no cover - internal
            raise ValueError(f"unknown stage {stage}")

    def run(self, levels: np.ndarray) -> SimulationResult:
        """Stream a batch of samples (B, W, L) through the pipeline."""
        levels = np.asarray(levels).reshape((-1,) + self.spec.input_shape)
        n_samples = len(levels)
        durations = self._durations
        # Pipeline recurrence: unit_free[s] tracks each stage unit;
        # sample_ready tracks when sample k's previous-stage buffer lands.
        unit_free = {stage: 0 for stage in _STAGE_ORDER}
        events: list[StageEvent] = []
        scores = np.zeros((n_samples, self.spec.n_classes), dtype=np.int64)
        registry = get_registry()
        for k in range(n_samples):
            buffers: dict = {}
            ready = 0  # input sample available immediately
            with trace_span("hwsim.sample", sample=k):
                for stage in _STAGE_ORDER:
                    start = max(ready, unit_free[stage])
                    end = start + durations[stage]
                    events.append(StageEvent(stage, k, start, end))
                    unit_free[stage] = end
                    ready = end
                    with stage_timer(f"hwsim.{stage}"):
                        # Annotate the open span with the cycle model's
                        # prediction for this very stage execution, so a
                        # rendered trace shows modeled next to measured.
                        annotate_span(
                            modeled_cycles=durations[stage],
                            start_cycle=start,
                            end_cycle=end,
                        )
                        self._stage_output(stage, levels[k], buffers)
            scores[k] = buffers["scores"][0]
        registry.counter("hwsim.samples").add(n_samples)
        # Modeled cycle counts next to the measured wall times, so an
        # exporter can compare the cycle model against this host run.
        for stage in _STAGE_ORDER:
            registry.gauge(f"hwsim.modeled_cycles.{stage}").set(durations[stage])
        total = max(e.end_cycle for e in events) + durations["control"] if events else 0
        return SimulationResult(
            predictions=scores.argmax(axis=1),
            scores=scores,
            events=events,
            total_cycles=total,
        )
