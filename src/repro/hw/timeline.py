"""ASCII rendering of pipeline schedules (the Fig. 5 Gantt view).

Turns a :class:`~repro.hw.simulator.SimulationResult` into a terminal
timeline: one row per hardware unit, one character column per time
bucket, sample indices as the fill glyphs — making the double-buffered
overlap (DVP of sample k+1 under BiConv of sample k) directly visible.
"""

from __future__ import annotations

from .simulator import SimulationResult

__all__ = ["render_timeline"]

_STAGE_ROWS = ("dvp", "biconv", "encode", "similarity")


def render_timeline(
    result: SimulationResult, width: int = 72, max_samples: int | None = None
) -> str:
    """Render the stage occupancy of a simulation as ASCII art.

    ``width`` is the number of character columns the full run is scaled
    into; ``max_samples`` optionally restricts to the first samples.
    """
    if width < 8:
        raise ValueError("width must be >= 8")
    events = result.events
    if max_samples is not None:
        events = [e for e in events if e.sample < max_samples]
    if not events:
        return "(empty timeline)"
    horizon = max(e.end_cycle for e in events)
    scale = horizon / width
    label_width = max(len(s) for s in _STAGE_ROWS) + 1
    lines = []
    for stage in _STAGE_ROWS:
        row = [" "] * width
        for event in events:
            if event.stage != stage:
                continue
            start = int(event.start_cycle / scale)
            end = max(int(event.end_cycle / scale), start + 1)
            glyph = str(event.sample % 10)
            for col in range(start, min(end, width)):
                row[col] = glyph
        lines.append(stage.ljust(label_width) + "|" + "".join(row) + "|")
    axis = " " * label_width + "+" + "-" * width + "+"
    footer = (
        " " * label_width
        + f" 0 cycles {' ' * max(width - 24, 0)}{horizon} cycles"
    )
    return "\n".join([axis] + lines + [axis, footer])
