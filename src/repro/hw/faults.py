"""Fault injection: bit flips in the stored vector memories.

Resource-stringent deployments (implanted BCIs especially) care about
robustness to memory corruption — single-event upsets in the BRAM holding
F or the LUTRAM holding V/K/C.  Binary VSA's holographic representations
degrade gracefully under such flips; this module quantifies that for a
deployed UniVSA model.

``fault_sweep`` accepts a ``predict_fn`` so the sweep can run through any
serving configuration — the default is the artifact-level integer
reference path; :func:`repro.runtime.resilience.serving_predict_fn`
routes it through the packed engines under a
:class:`~repro.runtime.resilience.ResilientBatchRunner` (what
``python -m repro fault-sweep`` measures).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.core.export import UniVSAArtifacts

__all__ = ["FaultReport", "inject_bit_flips", "fault_sweep"]

_GROUPS = ("value_high", "value_low", "kernel", "feature_vectors", "class_vectors")


def inject_bit_flips(
    artifacts: UniVSAArtifacts,
    flip_fraction: float,
    groups: tuple[str, ...] = _GROUPS,
    seed: int | np.random.Generator = 0,
) -> UniVSAArtifacts:
    """Return a copy with ``flip_fraction`` of the selected bits flipped.

    ``groups`` selects which stored memories are corrupted; groups not
    present in the artifact (e.g. ``kernel`` with BiConv off) are
    skipped.  Only the selected memories are copied — everything else
    (including the config, mask, and unselected groups) is *shared* with
    the input, so sweeping one group of a large model never deep-copies
    the rest.  ``seed`` may be an int (a fresh generator per call, so the
    same seed reproduces the same flip positions) or an
    ``np.random.Generator`` to thread one stream through many injections.
    """
    if not 0.0 <= flip_fraction <= 1.0:
        raise ValueError("flip_fraction must be in [0, 1]")
    unknown = set(groups) - set(_GROUPS)
    if unknown:
        raise ValueError(f"unknown memory groups: {sorted(unknown)}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    corrupted = copy.copy(artifacts)
    for group in groups:
        array = getattr(artifacts, group)
        if array is None:
            continue
        array = array.copy()
        n_flips = int(round(flip_fraction * array.size))
        if n_flips:
            idx = rng.choice(array.size, size=n_flips, replace=False)
            # array.flat writes through for any memory layout; reshape(-1)
            # silently returns a copy for non-contiguous arrays and the
            # flips would be lost.
            array.flat[idx] = -array.flat[idx]
        setattr(corrupted, group, array)
    return corrupted


@dataclass
class FaultReport:
    """Accuracy vs flip rate for one memory group selection.

    With ``repair_after`` the report also carries the *recovery curve*:
    per fraction, the accuracy with the same per-bit corruption applied
    to a live packed engine's resident memory
    (``resident_accuracies``), whether the integrity scrubber detected
    it (``scrub_detected``), and the accuracy after the scrubber's hot
    repair (``repaired_accuracies`` — equal to the baseline when repair
    restores the golden state, which is the claim the curve documents).
    """

    flip_fractions: list[float]
    accuracies: list[float]
    baseline_accuracy: float
    resident_accuracies: list[float] | None = None
    repaired_accuracies: list[float] | None = None
    scrub_detected: list[bool] | None = None

    def degradation(self) -> list[float]:
        """Accuracy drop vs the fault-free model, per flip rate."""
        return [self.baseline_accuracy - a for a in self.accuracies]

    def recovery(self) -> list[float] | None:
        """Accuracy recovered by the scrub+repair pass, per flip rate."""
        if self.repaired_accuracies is None:
            return None
        return [
            repaired - corrupted
            for repaired, corrupted in zip(
                self.repaired_accuracies, self.resident_accuracies
            )
        ]

    def as_dict(self) -> dict:
        """JSON-friendly view (the fault-sweep sidecar payload)."""
        out = {
            "flip_fractions": list(self.flip_fractions),
            "accuracies": list(self.accuracies),
            "baseline_accuracy": self.baseline_accuracy,
            "degradation": self.degradation(),
        }
        if self.repaired_accuracies is not None:
            out.update(
                resident_accuracies=list(self.resident_accuracies),
                repaired_accuracies=list(self.repaired_accuracies),
                scrub_detected=list(self.scrub_detected),
                recovery=self.recovery(),
            )
        return out


def fault_sweep(
    artifacts: UniVSAArtifacts,
    levels: np.ndarray,
    labels: np.ndarray,
    flip_fractions: tuple[float, ...] = (0.001, 0.01, 0.05, 0.1),
    groups: tuple[str, ...] = _GROUPS,
    seed: int = 0,
    predict_fn=None,
    repair_after: bool = False,
    engine_mode: str = "fast",
) -> FaultReport:
    """Measure accuracy under increasing memory-corruption rates.

    ``predict_fn(artifacts, levels) -> predictions`` selects the serving
    path; the default is the integer reference (``artifacts.predict``).
    An int ``seed`` reproduces the same flip positions at every fraction,
    so sweep points differ only in corruption *rate*, not location luck.

    With ``repair_after=True`` each fraction additionally runs the live
    recovery pipeline the serving layer uses: a pristine packed engine
    (``engine_mode``) gets its resident operands corrupted in place at
    the same per-bit rate (:func:`repro.runtime.integrity
    .flip_resident_bits`), accuracy is measured degraded, then the
    :class:`~repro.runtime.integrity.IntegrityScrubber` is invoked —
    detect + rebuild-from-pristine — and accuracy is re-measured.  The
    resulting recovery curve sits alongside the degradation curve in the
    report (and EXPERIMENTS).
    """
    labels = np.asarray(labels)
    if predict_fn is None:
        predict_fn = lambda model, x: model.predict(x)  # noqa: E731
    baseline = float((np.asarray(predict_fn(artifacts, levels)) == labels).mean())
    accuracies = []
    for fraction in flip_fractions:
        corrupted = inject_bit_flips(artifacts, fraction, groups=groups, seed=seed)
        predictions = np.asarray(predict_fn(corrupted, levels))
        accuracies.append(float((predictions == labels).mean()))
    report = FaultReport(
        flip_fractions=list(flip_fractions),
        accuracies=accuracies,
        baseline_accuracy=baseline,
    )
    if not repair_after:
        return report
    from repro.core.inference import BitPackedUniVSA
    from repro.runtime.integrity import IntegrityScrubber, flip_resident_bits

    resident_accuracies = []
    repaired_accuracies = []
    scrub_detected = []
    for index, fraction in enumerate(flip_fractions):
        # Resident flips can land in the artifact arrays themselves;
        # corrupt a private deep copy so the caller's model — and the
        # next fraction's engine — stay pristine.
        engine = BitPackedUniVSA(copy.deepcopy(artifacts), mode=engine_mode)
        scrubber = IntegrityScrubber(engine)
        rng = np.random.default_rng((seed, index))
        flip_resident_bits(engine, rng, rate=fraction)
        degraded = np.asarray(engine.predict(levels))
        resident_accuracies.append(float((degraded == labels).mean()))
        scrub = scrubber.scrub()
        scrub_detected.append(not scrub.clean)
        repaired = np.asarray(scrubber.engine.predict(levels))
        repaired_accuracies.append(float((repaired == labels).mean()))
    report.resident_accuracies = resident_accuracies
    report.repaired_accuracies = repaired_accuracies
    report.scrub_detected = scrub_detected
    return report
