"""Fault injection: bit flips in the stored vector memories.

Resource-stringent deployments (implanted BCIs especially) care about
robustness to memory corruption — single-event upsets in the BRAM holding
F or the LUTRAM holding V/K/C.  Binary VSA's holographic representations
degrade gracefully under such flips; this module quantifies that for a
deployed UniVSA model.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.core.export import UniVSAArtifacts

__all__ = ["FaultReport", "inject_bit_flips", "fault_sweep"]

_GROUPS = ("value_high", "value_low", "kernel", "feature_vectors", "class_vectors")


def inject_bit_flips(
    artifacts: UniVSAArtifacts,
    flip_fraction: float,
    groups: tuple[str, ...] = _GROUPS,
    seed: int = 0,
) -> UniVSAArtifacts:
    """Return a copy with ``flip_fraction`` of the selected bits flipped.

    ``groups`` selects which stored memories are corrupted; groups not
    present in the artifact (e.g. ``kernel`` with BiConv off) are skipped.
    """
    if not 0.0 <= flip_fraction <= 1.0:
        raise ValueError("flip_fraction must be in [0, 1]")
    unknown = set(groups) - set(_GROUPS)
    if unknown:
        raise ValueError(f"unknown memory groups: {sorted(unknown)}")
    corrupted = copy.deepcopy(artifacts)
    rng = np.random.default_rng(seed)
    for group in groups:
        array = getattr(corrupted, group)
        if array is None:
            continue
        n_flips = int(round(flip_fraction * array.size))
        if n_flips == 0:
            continue
        idx = rng.choice(array.size, size=n_flips, replace=False)
        # array.flat writes through for any memory layout; reshape(-1)
        # silently returns a copy for non-contiguous arrays and the
        # flips would be lost.
        array.flat[idx] = -array.flat[idx]
    return corrupted


@dataclass
class FaultReport:
    """Accuracy vs flip rate for one memory group selection."""

    flip_fractions: list[float]
    accuracies: list[float]
    baseline_accuracy: float

    def degradation(self) -> list[float]:
        """Accuracy drop vs the fault-free model, per flip rate."""
        return [self.baseline_accuracy - a for a in self.accuracies]


def fault_sweep(
    artifacts: UniVSAArtifacts,
    levels: np.ndarray,
    labels: np.ndarray,
    flip_fractions: tuple[float, ...] = (0.001, 0.01, 0.05, 0.1),
    groups: tuple[str, ...] = _GROUPS,
    seed: int = 0,
) -> FaultReport:
    """Measure accuracy under increasing memory-corruption rates."""
    labels = np.asarray(labels)
    baseline = float((artifacts.predict(levels) == labels).mean())
    accuracies = []
    for fraction in flip_fractions:
        corrupted = inject_bit_flips(artifacts, fraction, groups=groups, seed=seed)
        accuracies.append(float((corrupted.predict(levels) == labels).mean()))
    return FaultReport(
        flip_fractions=list(flip_fractions),
        accuracies=accuracies,
        baseline_accuracy=baseline,
    )
