"""Fault injection: bit flips in the stored vector memories.

Resource-stringent deployments (implanted BCIs especially) care about
robustness to memory corruption — single-event upsets in the BRAM holding
F or the LUTRAM holding V/K/C.  Binary VSA's holographic representations
degrade gracefully under such flips; this module quantifies that for a
deployed UniVSA model.

``fault_sweep`` accepts a ``predict_fn`` so the sweep can run through any
serving configuration — the default is the artifact-level integer
reference path; :func:`repro.runtime.resilience.serving_predict_fn`
routes it through the packed engines under a
:class:`~repro.runtime.resilience.ResilientBatchRunner` (what
``python -m repro fault-sweep`` measures).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.core.export import UniVSAArtifacts

__all__ = ["FaultReport", "inject_bit_flips", "fault_sweep"]

_GROUPS = ("value_high", "value_low", "kernel", "feature_vectors", "class_vectors")


def inject_bit_flips(
    artifacts: UniVSAArtifacts,
    flip_fraction: float,
    groups: tuple[str, ...] = _GROUPS,
    seed: int | np.random.Generator = 0,
) -> UniVSAArtifacts:
    """Return a copy with ``flip_fraction`` of the selected bits flipped.

    ``groups`` selects which stored memories are corrupted; groups not
    present in the artifact (e.g. ``kernel`` with BiConv off) are
    skipped.  Only the selected memories are copied — everything else
    (including the config, mask, and unselected groups) is *shared* with
    the input, so sweeping one group of a large model never deep-copies
    the rest.  ``seed`` may be an int (a fresh generator per call, so the
    same seed reproduces the same flip positions) or an
    ``np.random.Generator`` to thread one stream through many injections.
    """
    if not 0.0 <= flip_fraction <= 1.0:
        raise ValueError("flip_fraction must be in [0, 1]")
    unknown = set(groups) - set(_GROUPS)
    if unknown:
        raise ValueError(f"unknown memory groups: {sorted(unknown)}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    corrupted = copy.copy(artifacts)
    for group in groups:
        array = getattr(artifacts, group)
        if array is None:
            continue
        array = array.copy()
        n_flips = int(round(flip_fraction * array.size))
        if n_flips:
            idx = rng.choice(array.size, size=n_flips, replace=False)
            # array.flat writes through for any memory layout; reshape(-1)
            # silently returns a copy for non-contiguous arrays and the
            # flips would be lost.
            array.flat[idx] = -array.flat[idx]
        setattr(corrupted, group, array)
    return corrupted


@dataclass
class FaultReport:
    """Accuracy vs flip rate for one memory group selection."""

    flip_fractions: list[float]
    accuracies: list[float]
    baseline_accuracy: float

    def degradation(self) -> list[float]:
        """Accuracy drop vs the fault-free model, per flip rate."""
        return [self.baseline_accuracy - a for a in self.accuracies]

    def as_dict(self) -> dict:
        """JSON-friendly view (the fault-sweep sidecar payload)."""
        return {
            "flip_fractions": list(self.flip_fractions),
            "accuracies": list(self.accuracies),
            "baseline_accuracy": self.baseline_accuracy,
            "degradation": self.degradation(),
        }


def fault_sweep(
    artifacts: UniVSAArtifacts,
    levels: np.ndarray,
    labels: np.ndarray,
    flip_fractions: tuple[float, ...] = (0.001, 0.01, 0.05, 0.1),
    groups: tuple[str, ...] = _GROUPS,
    seed: int = 0,
    predict_fn=None,
) -> FaultReport:
    """Measure accuracy under increasing memory-corruption rates.

    ``predict_fn(artifacts, levels) -> predictions`` selects the serving
    path; the default is the integer reference (``artifacts.predict``).
    An int ``seed`` reproduces the same flip positions at every fraction,
    so sweep points differ only in corruption *rate*, not location luck.
    """
    labels = np.asarray(labels)
    if predict_fn is None:
        predict_fn = lambda model, x: model.predict(x)  # noqa: E731
    baseline = float((np.asarray(predict_fn(artifacts, levels)) == labels).mean())
    accuracies = []
    for fraction in flip_fractions:
        corrupted = inject_bit_flips(artifacts, fraction, groups=groups, seed=seed)
        predictions = np.asarray(predict_fn(corrupted, levels))
        accuracies.append(float((predictions == labels).mean()))
    return FaultReport(
        flip_fractions=list(flip_fractions),
        accuracies=accuracies,
        baseline_accuracy=baseline,
    )
