"""Power model calibrated against the paper's Table IV.

    P = static + per_lut * LUTs + per_gbps * switched_volume_Gbps

The switched-volume term captures toggling in the value-volume datapath:
``throughput * N * D_H`` bits enter the conv engine per second.
"""

from __future__ import annotations

from .arch import HardwareSpec
from .calibration import POWER_MODEL
from .pipeline import throughput_per_s
from .resources import estimate_resources

__all__ = ["estimate_power_w"]


def estimate_power_w(spec: HardwareSpec, luts: int | None = None) -> float:
    """Estimated on-chip power in watts.

    ``luts`` may be supplied to reuse an existing resource estimate.
    """
    if luts is None:
        luts = estimate_resources(spec).luts
    throughput = throughput_per_s(spec)
    switched_gbps = throughput * spec.n_features * spec.config.d_high / 1e9
    model = POWER_MODEL
    return model["static"] + model["per_lut"] * luts + model["per_gbps"] * switched_gbps
