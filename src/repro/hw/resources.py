"""FPGA resource model: LUTs, BRAMs, DSPs, with per-stage breakdown.

* **LUTs** follow the calibrated power law over the Eq. 6 datapath size
  and the position count (see :mod:`repro.hw.calibration`); the total is
  distributed across stages proportionally to their structural unit
  counts, which is what Fig. 6 plots.
* **BRAMs** hold the feature-vector store F (the one large sequential
  memory); one ZU3EG block is 36 kbit.  This single rule reproduces the
  BRAM column of Table IV for all six tasks.
* **DSPs** are zero: the datapath is XNOR/popcount logic only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .arch import HardwareSpec
from .calibration import BRAM_BITS_PER_BLOCK, LUT_MODEL
from .memory import memory_breakdown

__all__ = ["ResourceReport", "estimate_resources", "stage_lut_shares"]


@dataclass(frozen=True)
class ResourceReport:
    """Estimated FPGA resources for one UniVSA instance."""

    luts: int
    brams: int
    dsps: int
    stage_luts: dict[str, int]

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view of the record."""
        return {"luts": self.luts, "brams": self.brams, "dsps": self.dsps}


def _total_luts(spec: HardwareSpec) -> int:
    units = spec.conv_datapath_units if spec.config.use_biconv else (
        spec.config.d_high * spec.config.kernel_size
    )
    model = LUT_MODEL
    estimate = (
        model["k"]
        * units ** model["a"]
        * spec.n_features ** model["b"]
        * spec.config.kernel_size ** model["c"]
    )
    return int(round(estimate))


def stage_lut_shares(spec: HardwareSpec) -> dict[str, float]:
    """Relative LUT share per stage from structural unit counts.

    BiConv: the Eq. 6 datapath.  DVP: the two value tables plus FIFO.
    Encoding: XNOR row + adder tree over O.  Similarity: Theta x C
    accumulators at the position-counter width.  Controller: fixed small
    share of the total.
    """
    config = spec.config
    # Each conv cell is an XNOR + popcount-adder bit + operand mux + the
    # double-buffer register — roughly 4 LUT-equivalents per Eq. 6 unit,
    # versus ~1 per plain accumulator bit elsewhere.
    conv_units = 4 * (spec.conv_datapath_units if config.use_biconv else 0)
    dvp_units = config.d_high + (config.d_low if config.use_dvp else 0) + 16
    enc_units = config.encoding_channels() + 2 ** spec.encoder_tree_depth // 2
    sim_units = spec.similarity_units * spec.accumulator_width
    control_units = 32
    total = conv_units + dvp_units + enc_units + sim_units + control_units
    return {
        "dvp": dvp_units / total,
        "biconv": conv_units / total,
        "encode": enc_units / total,
        "similarity": sim_units / total,
        "control": control_units / total,
    }


def estimate_resources(spec: HardwareSpec) -> ResourceReport:
    """LUT/BRAM/DSP estimate with per-stage LUT breakdown."""
    total_luts = _total_luts(spec)
    shares = stage_lut_shares(spec)
    stage_luts = {stage: int(round(total_luts * share)) for stage, share in shares.items()}
    breakdown = memory_breakdown(spec.config, spec.input_shape, spec.n_classes)
    brams = max(1, math.ceil(breakdown.feature_bits / BRAM_BITS_PER_BLOCK))
    return ResourceReport(luts=total_luts, brams=brams, dsps=0, stage_luts=stage_luts)
