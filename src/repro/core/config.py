"""UniVSA model configuration (the search space of Table I)."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["UniVSAConfig"]


@dataclass(frozen=True)
class UniVSAConfig:
    """Hyperparameters of a UniVSA model.

    The tuple (d_high, d_low, kernel_size, out_channels, voters) is the
    paper's (D_H, D_L, D_K, O, Theta); ``levels`` is M.  The three
    enhancement switches implement the Fig. 4 ablation:

    * ``use_dvp`` — route low-importance features to VB_L (D_L bits);
      off = every feature uses VB_H.
    * ``use_biconv`` — binary convolution between value projection and
      encoding; off = encode the value volume directly (classic LDC view,
      with encoding channels = D_H instead of O).
    * ``voters`` — number of parallel similarity layers (1 = no soft
      voting).
    """

    d_high: int = 8  # D_H
    d_low: int = 2  # D_L
    kernel_size: int = 3  # D_K
    out_channels: int = 64  # O
    voters: int = 1  # Theta
    levels: int = 256  # M
    high_fraction: float = 0.5  # share of windows routed to VB_H
    hidden: int = 16  # ValueBox MLP width
    use_dvp: bool = True
    use_biconv: bool = True
    use_batchnorm: bool = False  # optional BN before conv binarization

    def __post_init__(self) -> None:
        if self.d_high < 1 or self.d_low < 1:
            raise ValueError("d_high and d_low must be positive")
        if self.d_low > self.d_high:
            raise ValueError("d_low must not exceed d_high (VB_L is the cheap box)")
        if self.kernel_size < 1 or self.kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd and positive")
        if self.out_channels < 1:
            raise ValueError("out_channels must be positive")
        if self.voters < 1:
            raise ValueError("voters must be >= 1")
        if self.levels < 2:
            raise ValueError("levels must be >= 2")
        if not 0.0 < self.high_fraction <= 1.0:
            raise ValueError("high_fraction must be in (0, 1]")

    @classmethod
    def from_paper_tuple(
        cls, config: tuple[int, int, int, int, int], **overrides: object
    ) -> "UniVSAConfig":
        """Build from a Table I tuple (D_H, D_L, D_K, O, Theta)."""
        d_high, d_low, kernel_size, out_channels, voters = config
        return cls(
            d_high=d_high,
            d_low=d_low,
            kernel_size=kernel_size,
            out_channels=out_channels,
            voters=voters,
            **overrides,
        )

    def as_paper_tuple(self) -> tuple[int, int, int, int, int]:
        """The (D_H, D_L, D_K, O, Theta) tuple of Table I."""
        return (self.d_high, self.d_low, self.kernel_size, self.out_channels, self.voters)

    def encoding_channels(self) -> int:
        """Channels seen by the encoding layer: O with BiConv, D_H without."""
        return self.out_channels if self.use_biconv else self.d_high

    def with_ablation(
        self, use_dvp: bool, use_biconv: bool, voters: int
    ) -> "UniVSAConfig":
        """Variant with the three Fig. 4 enhancement switches set."""
        return replace(self, use_dvp=use_dvp, use_biconv=use_biconv, voters=voters)
