"""Training entry points for UniVSA models."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features import importance_mask
from repro.utils.trainloop import TrainConfig, TrainHistory, fit_classifier

from .config import UniVSAConfig
from .export import UniVSAArtifacts, extract_artifacts
from .model import UniVSAModel

__all__ = ["UniVSAResult", "train_univsa", "build_mask"]


@dataclass
class UniVSAResult:
    """Trained graph, deployed artifacts, and the training history."""

    model: UniVSAModel
    artifacts: UniVSAArtifacts
    history: TrainHistory
    mask: np.ndarray


def build_mask(
    x_train: np.ndarray,
    y_train: np.ndarray,
    config: UniVSAConfig,
    method: str = "mi",
    seed: int = 0,
) -> np.ndarray:
    """Importance mask for DVP (all-ones when DVP is disabled)."""
    x_train = np.asarray(x_train)
    if not config.use_dvp:
        return np.ones(x_train.shape[1:], dtype=np.int8)
    return importance_mask(
        x_train.astype(np.float64),
        np.asarray(y_train),
        high_fraction=config.high_fraction,
        method=method,
        seed=seed,
    )


def train_univsa(
    x_train: np.ndarray,
    y_train: np.ndarray,
    n_classes: int,
    config: UniVSAConfig = UniVSAConfig(),
    mask: np.ndarray | None = None,
    mask_method: str = "mi",
    train_config: TrainConfig = TrainConfig(),
) -> UniVSAResult:
    """Train a UniVSA classifier on discretized samples (B, W, L).

    When ``mask`` is None and DVP is enabled, the importance mask is built
    from the training split with ``mask_method`` ("mi" or "wrapper").
    """
    x_train = np.asarray(x_train)
    if x_train.ndim != 3:
        raise ValueError("x_train must be (samples, W, L) integer levels")
    y_train = np.asarray(y_train)
    if mask is None:
        mask = build_mask(x_train, y_train, config, method=mask_method, seed=train_config.seed)
    model = UniVSAModel(
        input_shape=x_train.shape[1:],
        n_classes=n_classes,
        config=config,
        mask=mask,
        seed=train_config.seed,
    )
    history = fit_classifier(
        model, x_train, y_train, train_config, preprocess=model.preprocess
    )
    return UniVSAResult(
        model=model,
        artifacts=extract_artifacts(model),
        history=history,
        mask=mask,
    )
