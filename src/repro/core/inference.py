"""Bit-packed XNOR/popcount inference engine for deployed UniVSA models.

This is the software twin of the FPGA datapath: every stage operates on
uint64-packed bipolar words exactly as the hardware's XNOR arrays and
popcount adder trees do.

* **BiConv**: each output pixel's operand block (D_H x D_K x D_K bipolar
  values, borders padded with -1) is matched against the packed kernel;
  the accumulation is ``2 * popcount(~(x ^ k)) - n_bits``, compared
  against the per-channel threshold.
* **Encoding**: reduction over the O channel axis per position.
* **Similarity**: reduction over the W*L position axis per class and voter.

The engine has two modes:

* ``mode="fast"`` (default) never materializes the (B, P, C*K*K) int8
  operand block.  The per-level ValueBox rows are packed **once** at
  construction (channel-major, byte granular), so the DVP stage is a
  packed gather; conv operand words are then assembled from those bytes
  with a sliding window view — a byte shuffle, not a 64-lane
  multiply-accumulate — and the conv match loop runs over bounded batch
  tiles so peak memory is O(tile), not O(batch).  The feature map stays
  a packed bit tensor end to end.
* ``mode="legacy"`` preserves the seed engine's per-call block packing;
  it exists as the baseline for ``python -m repro bench-throughput`` and
  as a second implementation the property tests cross-check.

Bit-exact equivalence between both modes, the integer path
(`UniVSAArtifacts`), and the trained graph is enforced by tests — this
engine doubles as the golden model for the cycle simulator in
:mod:`repro.hw.simulator`.

Every stage runs under a :func:`repro.obs.stage_timer` (``packed.dvp``,
``packed.biconv``, ``packed.encode``, ``packed.similarity``) plus a
``packed.samples`` counter; with the default null registry the
instrumentation is a no-op branch.  ``scores()`` opens a
``packed.classify`` trace root, so with a tracer active one call becomes
a full span tree and the soft-vote margins land in the
``quality.soft_vote_margin`` histogram.  The internal stages pack with
``validate=False`` — their inputs are bipolar by construction, and the
domain scan would otherwise dominate small-batch latency.
"""

from __future__ import annotations

import os

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.obs import annotate_span, get_registry, stage_timer, trace_span
from repro.vsa.bitops import pack_bipolar, xnor_popcount
from repro.vsa.kernels import WORD_BITS, get_kernels

from .export import UniVSAArtifacts, record_soft_vote_margins

__all__ = ["BitPackedUniVSA"]

#: Default budget for the conv match intermediates of one batch tile.
_DEFAULT_CONV_TILE_MB = 64.0


def _pack_bytes(vectors: np.ndarray) -> np.ndarray:
    """Bipolar/boolean (..., D) -> bytes (..., ceil(D/8)), little bit order."""
    return np.packbits(np.asarray(vectors) > 0, axis=-1, bitorder="little")


def _bytes_to_words(data: np.ndarray) -> np.ndarray:
    """Bytes (..., n) -> uint64 words (..., ceil(n/8)), little-endian."""
    n_bytes = data.shape[-1]
    n_words = -(-n_bytes // 8)
    if n_bytes != n_words * 8:
        padded = np.zeros(data.shape[:-1] + (n_words * 8,), dtype=np.uint8)
        padded[..., :n_bytes] = data
        data = padded
    words = np.ascontiguousarray(data).view(np.dtype("<u8"))
    return words.astype(np.uint64, copy=False)


def _matches_against_inverted(words: np.ndarray, inverted: np.ndarray, dim: int) -> np.ndarray:
    """XNOR match count against a pre-inverted operand.

    ``popcount(~(a ^ b)) == popcount(a ^ ~b)``; pre-inverting the static
    side (kernel / feature / class words) once at construction saves an
    invert pass over the large broadcast intermediate on every call.
    Padding bits (0 in ``words``, 1 in ``inverted``) XOR to 1 and are
    subtracted, exactly as in :func:`repro.vsa.bitops.xnor_popcount`.
    """
    counts = get_kernels().popcount8(words ^ inverted)
    pad_bits = inverted.shape[-1] * WORD_BITS - dim
    return counts.sum(axis=-1, dtype=np.int64) - pad_bits


class BitPackedUniVSA:
    """Packed-word inference over exported UniVSA artifacts.

    ``mode`` selects the stage pipeline (``"fast"`` or ``"legacy"``, env
    default ``REPRO_ENGINE``); ``conv_tile_mb`` bounds the conv stage's
    match intermediates per batch tile (env ``REPRO_CONV_TILE_MB``).
    """

    def __init__(
        self,
        artifacts: UniVSAArtifacts,
        mode: str | None = None,
        conv_tile_mb: float | None = None,
    ) -> None:
        if mode is None:
            mode = os.environ.get("REPRO_ENGINE", "fast").strip().lower()
        if mode not in ("fast", "legacy"):
            raise ValueError(f"unknown engine mode {mode!r}; expected 'fast' or 'legacy'")
        if conv_tile_mb is None:
            conv_tile_mb = float(
                os.environ.get("REPRO_CONV_TILE_MB", _DEFAULT_CONV_TILE_MB)
            )
        self.mode = mode
        self.conv_tile_mb = conv_tile_mb
        self.artifacts = artifacts
        self.input_shape = artifacts.input_shape
        self.positions = artifacts.positions
        config = artifacts.config

        if artifacts.kernel is not None:
            o = artifacts.kernel.shape[0]
            self._kernel_packed, self._conv_bits = pack_bipolar(
                artifacts.kernel.reshape(o, -1)
            )
            self._thresholds = artifacts.conv_thresholds
            self._flips = artifacts.conv_flips
        else:
            self._kernel_packed = None

        # F packed along the channel axis, one word-vector per position.
        channels = config.encoding_channels()
        self._feature_packed, self._enc_bits = pack_bipolar(
            artifacts.feature_vectors.T  # (P, channels)
        )
        # C packed along the position axis per (voter, class).
        self._class_packed, self._sim_bits = pack_bipolar(artifacts.class_vectors)
        self._channels = channels

        if mode == "fast":
            self._init_fast()

    # ------------------------------------------------------------------
    # fast-mode precomputation: packed ValueBox rows + operand-order kernel
    # ------------------------------------------------------------------
    def _init_fast(self) -> None:
        artifacts = self.artifacts
        # Per-level ValueBox rows packed channel-major at byte granularity
        # (memoized here so every DVP lookup is a packed gather).
        self._value_bytes_high = _pack_bytes(artifacts.value_high)
        if artifacts.value_low is not None:
            d_high = artifacts.value_high.shape[1]
            d_low = artifacts.value_low.shape[1]
            low = np.ones((artifacts.value_low.shape[0], d_high), dtype=np.int8)
            low[:, :d_low] = artifacts.value_low
            self._value_bytes_low = _pack_bytes(low)
            self._mask_bool = artifacts.mask.astype(bool)
        else:
            self._value_bytes_low = None
        self._volume_channels = artifacts.value_high.shape[1]

        # Pre-inverted static operands (see _matches_against_inverted).
        self._feature_inv = ~self._feature_packed
        self._class_inv = ~self._class_packed

        if artifacts.kernel is not None:
            # Kernel words in conv *operand order*: for each tap (kh, kw)
            # the channel bits padded to whole bytes, concatenated —
            # exactly the layout the window byte-assembly produces.  The
            # match count over all C*K*K true bits is order-independent,
            # so the accumulation is bit-exact vs the legacy block order.
            kernel = artifacts.kernel  # (O, C, k, k)
            o, c, k, _ = kernel.shape
            operand = kernel.transpose(0, 2, 3, 1)  # (O, kh, kw, C)
            taps = _pack_bytes(operand)  # (O, k, k, nb)
            self._kernel_operand_inv = ~_bytes_to_words(taps.reshape(o, -1))
            # Thresholds rewritten in raw-match space: with m the match
            # count over the n = C*K*K true bits and p the padding bits
            # (which always match), the accumulation 2m - n crosses a
            # float threshold t exactly when the integer raw count m + p
            # crosses ceil/floor((t + n)/2) + p — so the threshold
            # compare runs directly on the uint16 match accumulator.
            n_bits = c * k * k
            pad_bits = self._kernel_operand_inv.shape[-1] * WORD_BITS - n_bits
            half = (np.asarray(self._thresholds, dtype=np.float64) + n_bits) / 2.0
            self._conv_match_hi = np.ceil(half).astype(np.int64) + pad_bits
            self._conv_match_lo = np.floor(half).astype(np.int64) + pad_bits

    # ------------------------------------------------------------------
    # fast-mode stages
    # ------------------------------------------------------------------
    def _dvp_bytes(self, levels: np.ndarray) -> np.ndarray:
        """Packed DVP gather: levels (B, W, L) -> channel bytes (B, W, L, nb)."""
        levels = np.asarray(levels).reshape((-1,) + self.input_shape)
        volume = self._value_bytes_high[levels]
        if self._value_bytes_low is not None:
            volume = np.where(
                self._mask_bool[None, :, :, None],
                volume,
                self._value_bytes_low[levels],
            )
        return volume

    def _conv_tile(self, n_positions: int, out_channels: int) -> int:
        """Batch-tile size keeping the conv match intermediates bounded."""
        # Per sample the match loop holds an XOR word plane (8 B), its
        # uint8 counts, and the uint16 accumulator per (position, channel).
        per_sample = n_positions * out_channels * 11
        budget = max(0.0, self.conv_tile_mb) * (1 << 20)
        return max(1, int(budget // max(per_sample, 1)))

    @stage_timer("packed.biconv")
    def _conv_stage_fast(self, volume_bytes: np.ndarray) -> np.ndarray:
        """Packed BiConv: channel bytes (B, W, L, nb) -> fires (B, P, O) bool."""
        kernel = self.artifacts.kernel
        o, _, k, _ = kernel.shape
        b, h, w, nb = volume_bytes.shape
        pad = k // 2
        # Zero bytes are the all -1 channel vector — the border padding.
        padded = np.pad(volume_bytes, ((0, 0), (pad, pad), (pad, pad), (0, 0)))
        windows = sliding_window_view(padded, (k, k), axis=(1, 2))  # (B,H,W,nb,k,k)
        operand = windows.transpose(0, 1, 2, 4, 5, 3).reshape(b, h * w, k * k * nb)
        words = _bytes_to_words(operand)  # (B, P, Wc)
        kernel_inv = self._kernel_operand_inv  # (O, Wc)
        n_words = kernel_inv.shape[-1]
        popcount8 = get_kernels().popcount8
        flips = self._flips[None, None, :]
        fires = np.empty((b, h * w, o), dtype=bool)
        tile = self._conv_tile(h * w, o)
        for start in range(0, b, tile):
            stop = min(start + tile, b)
            # Accumulate raw XNOR matches word by word with the output
            # channel axis innermost — large contiguous ufunc inner loops
            # instead of a length-W_c broadcast reduction.
            acc = np.zeros((stop - start, h * w, o), dtype=np.uint16)
            for wi in range(n_words):
                acc += popcount8(
                    words[start:stop, :, wi, None] ^ kernel_inv[None, None, :, wi]
                )
            fires[start:stop] = np.where(
                flips, acc <= self._conv_match_lo, acc >= self._conv_match_hi
            )
        return fires

    @stage_timer("packed.encode")
    def _encode_stage_fast(self, feature_words: np.ndarray) -> np.ndarray:
        """Packed encoding: feature words (B, P, Wf) -> bipolar s (B, P)."""
        matches = _matches_against_inverted(
            feature_words, self._feature_inv[None], self._enc_bits
        )
        accumulated = 2 * matches - self._enc_bits
        return np.where(accumulated >= 0, 1, -1).astype(np.int8)

    @stage_timer("packed.similarity")
    def _similarity_stage_fast(self, s: np.ndarray) -> np.ndarray:
        """Packed soft voting: s (B, P) -> scores (B, n_classes)."""
        packed = _bytes_to_words(_pack_bytes(s))
        matches = _matches_against_inverted(
            packed[:, None, None, :], self._class_inv[None], self._sim_bits
        )  # (B, Theta, C)
        dots = 2 * matches - self._sim_bits
        return dots.sum(axis=1)

    def _encode_fast(self, levels: np.ndarray) -> np.ndarray:
        with stage_timer("packed.dvp"):
            volume_bytes = self._dvp_bytes(levels)
        get_registry().counter("packed.samples").add(volume_bytes.shape[0])
        if self._kernel_packed is not None:
            fires = self._conv_stage_fast(volume_bytes)
            feature_words = _bytes_to_words(_pack_bytes(fires))
        else:
            b = volume_bytes.shape[0]
            feature_words = _bytes_to_words(
                volume_bytes.reshape(b, self.positions, -1)
            )
        return self._encode_stage_fast(feature_words)

    # ------------------------------------------------------------------
    # legacy stages (the seed engine, kept as baseline and cross-check)
    # ------------------------------------------------------------------
    @stage_timer("packed.biconv")
    def _conv_stage(self, volume: np.ndarray) -> np.ndarray:
        """Packed BiConv: volume (B, D_H, W, L) int8 -> bipolar (B, O, W, L)."""
        kernel = self.artifacts.kernel
        b, c, h, w = volume.shape
        k = kernel.shape[2]
        pad = k // 2
        padded = np.pad(
            volume, ((0, 0), (0, 0), (pad, pad), (pad, pad)), constant_values=-1
        )
        windows = sliding_window_view(padded, (k, k), axis=(2, 3))  # (B,C,H,W,k,k)
        blocks = windows.transpose(0, 2, 3, 1, 4, 5).reshape(b, h * w, c * k * k)
        packed, dim = pack_bipolar(blocks, validate=False)
        matches = xnor_popcount(
            packed[:, :, None, :], self._kernel_packed[None, None, :, :], dim
        )  # (B, P, O)
        accumulated = 2 * matches - dim
        thresholds = self._thresholds[None, None, :]
        flips = self._flips[None, None, :]
        fires = np.where(flips, accumulated <= thresholds, accumulated >= thresholds)
        bipolar = np.where(fires, 1, -1).astype(np.int8)
        return bipolar.transpose(0, 2, 1).reshape(b, -1, h, w)

    @stage_timer("packed.encode")
    def _encode_stage(self, feature: np.ndarray) -> np.ndarray:
        """Packed encoding: (B, channels, W, L) -> bipolar s (B, P)."""
        b = feature.shape[0]
        flat = feature.reshape(b, self._channels, self.positions)
        packed, dim = pack_bipolar(flat.transpose(0, 2, 1), validate=False)  # (B, P, words)
        matches = xnor_popcount(packed, self._feature_packed[None], dim)
        accumulated = 2 * matches - dim
        return np.where(accumulated >= 0, 1, -1).astype(np.int8)

    @stage_timer("packed.similarity")
    def _similarity_stage(self, s: np.ndarray) -> np.ndarray:
        """Packed soft voting: s (B, P) -> scores (B, n_classes)."""
        packed, dim = pack_bipolar(s, validate=False)
        matches = xnor_popcount(
            packed[:, None, None, :], self._class_packed[None], dim
        )  # (B, Theta, C)
        dots = 2 * matches - dim
        return dots.sum(axis=1)

    def _encode_legacy(self, levels: np.ndarray) -> np.ndarray:
        with stage_timer("packed.dvp"):
            volume = self.artifacts.value_volume(levels)
        get_registry().counter("packed.samples").add(volume.shape[0])
        if self._kernel_packed is not None:
            feature = self._conv_stage(volume)
        else:
            feature = volume
        return self._encode_stage(feature)

    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        """Quantizer levels the ValueBox covers — valid inputs are [0, n)."""
        return self.artifacts.value_high.shape[0]

    def sibling(self, mode: str, conv_tile_mb: float | None = None) -> "BitPackedUniVSA":
        """An engine over the *same* artifacts in a different mode.

        The resilience layer's degradation ladder uses this to build the
        seed-exact ``legacy`` fallback engine without re-extracting or
        copying artifacts; ``REPRO_ENGINE`` parity tests guarantee the
        sibling is bit-exact with this engine.
        """
        return BitPackedUniVSA(
            self.artifacts,
            mode=mode,
            conv_tile_mb=self.conv_tile_mb if conv_tile_mb is None else conv_tile_mb,
        )

    def encode(self, levels: np.ndarray) -> np.ndarray:
        """Levels (B, W, L) -> bipolar sample vectors (B, W*L)."""
        if self.mode == "fast":
            return self._encode_fast(levels)
        return self._encode_legacy(levels)

    def scores(self, levels: np.ndarray) -> np.ndarray:
        """Soft-voting class scores (B, n_classes)."""
        with trace_span("packed.classify"):
            s = self.encode(levels)
            if self.mode == "fast":
                scores = self._similarity_stage_fast(s)
            else:
                scores = self._similarity_stage(s)
            record_soft_vote_margins(scores)
            annotate_span(batch=scores.shape[0])
            return scores

    def predict(self, levels: np.ndarray) -> np.ndarray:
        """Predicted labels via the packed datapath."""
        return self.scores(levels).argmax(axis=1)

    def score(self, levels: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(levels) == np.asarray(y)).mean())
