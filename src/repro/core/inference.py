"""Bit-packed XNOR/popcount inference engine for deployed UniVSA models.

This is the software twin of the FPGA datapath: every stage operates on
uint64-packed bipolar words exactly as the hardware's XNOR arrays and
popcount adder trees do.

* **BiConv**: each output pixel's operand block (D_H x D_K x D_K bipolar
  values, borders padded with -1) is packed along the reduction axis; the
  accumulation is ``2 * popcount(~(x ^ k)) - n_bits``, compared against the
  per-channel threshold.
* **Encoding**: reduction over the O channel axis per position.
* **Similarity**: reduction over the W*L position axis per class and voter.

Bit-exact equivalence with the integer path (`UniVSAArtifacts`) and the
trained graph is enforced by tests — this engine doubles as the golden
model for the cycle simulator in :mod:`repro.hw.simulator`.

Every stage runs under a :func:`repro.obs.stage_timer` (``packed.dvp``,
``packed.biconv``, ``packed.encode``, ``packed.similarity``) plus a
``packed.samples`` counter; with the default null registry the
instrumentation is a no-op branch.  ``scores()`` opens a
``packed.classify`` trace root, so with a tracer active one call becomes
a full span tree and the soft-vote margins land in the
``quality.soft_vote_margin`` histogram.  The internal stages pack with
``validate=False`` — their inputs are bipolar by construction, and the
domain scan would otherwise dominate small-batch latency.
"""

from __future__ import annotations

import numpy as np

from repro.obs import annotate_span, get_registry, stage_timer, trace_span
from repro.vsa.bitops import pack_bipolar, xnor_popcount

from .export import UniVSAArtifacts, record_soft_vote_margins

__all__ = ["BitPackedUniVSA"]


class BitPackedUniVSA:
    """Packed-word inference over exported UniVSA artifacts."""

    def __init__(self, artifacts: UniVSAArtifacts) -> None:
        self.artifacts = artifacts
        self.input_shape = artifacts.input_shape
        self.positions = artifacts.positions
        config = artifacts.config

        if artifacts.kernel is not None:
            o = artifacts.kernel.shape[0]
            self._kernel_packed, self._conv_bits = pack_bipolar(
                artifacts.kernel.reshape(o, -1)
            )
            self._thresholds = artifacts.conv_thresholds
            self._flips = artifacts.conv_flips
        else:
            self._kernel_packed = None

        # F packed along the channel axis, one word-vector per position.
        channels = config.encoding_channels()
        self._feature_packed, self._enc_bits = pack_bipolar(
            artifacts.feature_vectors.T  # (P, channels)
        )
        # C packed along the position axis per (voter, class).
        self._class_packed, self._sim_bits = pack_bipolar(artifacts.class_vectors)
        self._channels = channels

    # ------------------------------------------------------------------
    @stage_timer("packed.biconv")
    def _conv_stage(self, volume: np.ndarray) -> np.ndarray:
        """Packed BiConv: volume (B, D_H, W, L) int8 -> bipolar (B, O, W, L)."""
        kernel = self.artifacts.kernel
        b, c, h, w = volume.shape
        k = kernel.shape[2]
        pad = k // 2
        padded = np.pad(
            volume, ((0, 0), (0, 0), (pad, pad), (pad, pad)), constant_values=-1
        )
        strides = padded.strides
        windows = np.lib.stride_tricks.as_strided(
            padded,
            shape=(b, c, h, w, k, k),
            strides=(
                strides[0],
                strides[1],
                strides[2],
                strides[3],
                strides[2],
                strides[3],
            ),
            writeable=False,
        )
        blocks = windows.transpose(0, 2, 3, 1, 4, 5).reshape(b, h * w, c * k * k)
        packed, dim = pack_bipolar(blocks, validate=False)
        matches = xnor_popcount(
            packed[:, :, None, :], self._kernel_packed[None, None, :, :], dim
        )  # (B, P, O)
        accumulated = 2 * matches - dim
        thresholds = self._thresholds[None, None, :]
        flips = self._flips[None, None, :]
        fires = np.where(flips, accumulated <= thresholds, accumulated >= thresholds)
        bipolar = np.where(fires, 1, -1).astype(np.int8)
        return bipolar.transpose(0, 2, 1).reshape(b, -1, h, w)

    @stage_timer("packed.encode")
    def _encode_stage(self, feature: np.ndarray) -> np.ndarray:
        """Packed encoding: (B, channels, W, L) -> bipolar s (B, P)."""
        b = feature.shape[0]
        flat = feature.reshape(b, self._channels, self.positions)
        packed, dim = pack_bipolar(flat.transpose(0, 2, 1), validate=False)  # (B, P, words)
        matches = xnor_popcount(packed, self._feature_packed[None], dim)
        accumulated = 2 * matches - dim
        return np.where(accumulated >= 0, 1, -1).astype(np.int8)

    @stage_timer("packed.similarity")
    def _similarity_stage(self, s: np.ndarray) -> np.ndarray:
        """Packed soft voting: s (B, P) -> scores (B, n_classes)."""
        packed, dim = pack_bipolar(s, validate=False)
        matches = xnor_popcount(
            packed[:, None, None, :], self._class_packed[None], dim
        )  # (B, Theta, C)
        dots = 2 * matches - dim
        return dots.sum(axis=1)

    # ------------------------------------------------------------------
    def encode(self, levels: np.ndarray) -> np.ndarray:
        """Levels (B, W, L) -> bipolar sample vectors (B, W*L)."""
        with stage_timer("packed.dvp"):
            volume = self.artifacts.value_volume(levels)
        get_registry().counter("packed.samples").add(volume.shape[0])
        if self._kernel_packed is not None:
            feature = self._conv_stage(volume)
        else:
            feature = volume
        return self._encode_stage(feature)

    def scores(self, levels: np.ndarray) -> np.ndarray:
        """Soft-voting class scores (B, n_classes)."""
        with trace_span("packed.classify"):
            scores = self._similarity_stage(self.encode(levels))
            record_soft_vote_margins(scores)
            annotate_span(batch=scores.shape[0])
            return scores

    def predict(self, levels: np.ndarray) -> np.ndarray:
        """Predicted labels via the packed datapath."""
        return self.scores(levels).argmax(axis=1)

    def score(self, levels: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(levels) == np.asarray(y)).mean())
