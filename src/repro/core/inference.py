"""Bit-packed XNOR/popcount inference engine for deployed UniVSA models.

This is the software twin of the FPGA datapath: every stage operates on
uint64-packed bipolar words exactly as the hardware's XNOR arrays and
popcount adder trees do.

* **BiConv**: each output pixel's operand block (D_H x D_K x D_K bipolar
  values, borders padded with -1) is matched against the packed kernel;
  the accumulation is ``2 * popcount(~(x ^ k)) - n_bits``, compared
  against the per-channel threshold.
* **Encoding**: reduction over the O channel axis per position.
* **Similarity**: reduction over the W*L position axis per class and voter.

The engine has three modes:

* ``mode="fast"`` (default) never materializes the (B, P, C*K*K) int8
  operand block.  The per-level ValueBox rows are packed **once** at
  construction (channel-major, byte granular), so the DVP stage is a
  packed gather; conv operand words are then assembled from those bytes
  with a sliding window view — a byte shuffle, not a 64-lane
  multiply-accumulate — and the conv match loop runs over bounded batch
  tiles so peak memory is O(tile), not O(batch).  The feature map stays
  a packed bit tensor end to end.
* ``mode="fused"`` runs the **whole** pipeline — DVP gather, biconv
  match, encode, similarity — one batch tile at a time, so every
  intermediate of a tile is still cache-resident when the next stage
  consumes it (`conv_tile_mb` defaults down to a cache-sized budget).
  The conv match itself goes through the active kernel set's
  ``match_builder`` — per-tap 256-entry XOR-popcount byte LUTs on the
  fast set — and the threshold compare collapses to a single integer
  comparison in XOR-count space (see ``_init_fused``).  Bit-exact with
  the other modes by construction and by the property suite.
* ``mode="legacy"`` preserves the seed engine's per-call block packing;
  it exists as the baseline for ``python -m repro bench-throughput`` and
  as a second implementation the property tests cross-check.

``traffic_model()`` exposes the analytic bytes-moved / popcount-ops per
sample of the selected mode — the roofline numbers the throughput bench
publishes as ``packed.traffic.*`` gauges.

Bit-exact equivalence between both modes, the integer path
(`UniVSAArtifacts`), and the trained graph is enforced by tests — this
engine doubles as the golden model for the cycle simulator in
:mod:`repro.hw.simulator`.

Every stage runs under a :func:`repro.obs.stage_timer` (``packed.dvp``,
``packed.biconv``, ``packed.encode``, ``packed.similarity``) plus a
``packed.samples`` counter; with the default null registry the
instrumentation is a no-op branch.  ``scores()`` opens a
``packed.classify`` trace root, so with a tracer active one call becomes
a full span tree and the soft-vote margins land in the
``quality.soft_vote_margin`` histogram.  The internal stages pack with
``validate=False`` — their inputs are bipolar by construction, and the
domain scan would otherwise dominate small-batch latency.
"""

from __future__ import annotations

import math
import os

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.obs import annotate_span, get_registry, stage_timer, trace_span
from repro.vsa.bitops import pack_bipolar, xnor_popcount
from repro.vsa.kernels import WORD_BITS, get_kernels

from .export import UniVSAArtifacts, record_soft_vote_margins

__all__ = ["BitPackedUniVSA"]

#: Default budget for the conv match intermediates of one batch tile.
_DEFAULT_CONV_TILE_MB = 64.0

#: Fused-mode default: the whole point of fusion is cache-resident
#: intermediates, so the tile budget defaults to L2-cache scale rather
#: than the fast mode's working-set bound.
_DEFAULT_FUSED_TILE_MB = 2.0

_ENGINE_MODES = ("fast", "fused", "legacy")


def _resolve_conv_tile_mb(value, mode: str) -> float:
    """Validate the conv tile budget, loudly.

    A zero, negative, non-finite, or non-numeric budget used to be
    silently clamped into a degenerate tile size; now it is a
    configuration error naming its source (argument or
    ``REPRO_CONV_TILE_MB``).
    """
    if value is None:
        raw = os.environ.get("REPRO_CONV_TILE_MB")
        if raw is None or not raw.strip():
            return _DEFAULT_FUSED_TILE_MB if mode == "fused" else _DEFAULT_CONV_TILE_MB
        source = f"REPRO_CONV_TILE_MB={raw.strip()!r}"
        value = raw
    else:
        source = f"conv_tile_mb={value!r}"
    try:
        budget = float(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} is not a number; expected a positive tile budget in MB"
        ) from None
    if not math.isfinite(budget) or budget <= 0.0:
        raise ValueError(f"{source} must be a positive, finite number of MB")
    return budget


def _pack_bytes(vectors: np.ndarray) -> np.ndarray:
    """Bipolar/boolean (..., D) -> bytes (..., ceil(D/8)), little bit order."""
    return np.packbits(np.asarray(vectors) > 0, axis=-1, bitorder="little")


def _bytes_to_words(data: np.ndarray) -> np.ndarray:
    """Bytes (..., n) -> uint64 words (..., ceil(n/8)), little-endian."""
    n_bytes = data.shape[-1]
    n_words = -(-n_bytes // 8)
    if n_bytes != n_words * 8:
        padded = np.zeros(data.shape[:-1] + (n_words * 8,), dtype=np.uint8)
        padded[..., :n_bytes] = data
        data = padded
    words = np.ascontiguousarray(data).view(np.dtype("<u8"))
    return words.astype(np.uint64, copy=False)


def _matches_against_inverted(words: np.ndarray, inverted: np.ndarray, dim: int) -> np.ndarray:
    """XNOR match count against a pre-inverted operand.

    ``popcount(~(a ^ b)) == popcount(a ^ ~b)``; pre-inverting the static
    side (kernel / feature / class words) once at construction saves an
    invert pass over the large broadcast intermediate on every call.
    Padding bits (0 in ``words``, 1 in ``inverted``) XOR to 1 and are
    subtracted, exactly as in :func:`repro.vsa.bitops.xnor_popcount`.
    """
    counts = get_kernels().popcount8(words ^ inverted)
    pad_bits = inverted.shape[-1] * WORD_BITS - dim
    return counts.sum(axis=-1, dtype=np.int64) - pad_bits


class BitPackedUniVSA:
    """Packed-word inference over exported UniVSA artifacts.

    ``mode`` selects the stage pipeline (``"fast"``, ``"fused"`` or
    ``"legacy"``, env default ``REPRO_ENGINE``); ``conv_tile_mb`` bounds
    the per-tile intermediates (env ``REPRO_CONV_TILE_MB``; must be a
    positive finite number — anything else raises at construction).
    """

    def __init__(
        self,
        artifacts: UniVSAArtifacts,
        mode: str | None = None,
        conv_tile_mb: float | None = None,
    ) -> None:
        if mode is None:
            mode = os.environ.get("REPRO_ENGINE", "fast").strip().lower()
        if mode not in _ENGINE_MODES:
            raise ValueError(
                f"unknown engine mode {mode!r}; expected one of {_ENGINE_MODES}"
            )
        self.mode = mode
        self.conv_tile_mb = _resolve_conv_tile_mb(conv_tile_mb, mode)
        self.artifacts = artifacts
        self.input_shape = artifacts.input_shape
        self.positions = artifacts.positions
        config = artifacts.config

        if artifacts.kernel is not None:
            o = artifacts.kernel.shape[0]
            self._kernel_packed, self._conv_bits = pack_bipolar(
                artifacts.kernel.reshape(o, -1)
            )
            self._thresholds = artifacts.conv_thresholds
            self._flips = artifacts.conv_flips
        else:
            self._kernel_packed = None

        # F packed along the channel axis, one word-vector per position.
        channels = config.encoding_channels()
        self._feature_packed, self._enc_bits = pack_bipolar(
            artifacts.feature_vectors.T  # (P, channels)
        )
        # C packed along the position axis per (voter, class).
        self._class_packed, self._sim_bits = pack_bipolar(artifacts.class_vectors)
        self._channels = channels

        if mode in ("fast", "fused"):
            self._init_fast()
        if mode == "fused":
            self._init_fused()

    # ------------------------------------------------------------------
    # fast-mode precomputation: packed ValueBox rows + operand-order kernel
    # ------------------------------------------------------------------
    def _init_fast(self) -> None:
        artifacts = self.artifacts
        # Per-level ValueBox rows packed channel-major at byte granularity
        # (memoized here so every DVP lookup is a packed gather).
        self._value_bytes_high = _pack_bytes(artifacts.value_high)
        if artifacts.value_low is not None:
            d_high = artifacts.value_high.shape[1]
            d_low = artifacts.value_low.shape[1]
            low = np.ones((artifacts.value_low.shape[0], d_high), dtype=np.int8)
            low[:, :d_low] = artifacts.value_low
            self._value_bytes_low = _pack_bytes(low)
            self._mask_bool = artifacts.mask.astype(bool)
        else:
            self._value_bytes_low = None
        self._volume_channels = artifacts.value_high.shape[1]

        # Pre-inverted static operands (see _matches_against_inverted).
        self._feature_inv = ~self._feature_packed
        self._class_inv = ~self._class_packed

        if artifacts.kernel is not None:
            # Kernel words in conv *operand order*: for each tap (kh, kw)
            # the channel bits padded to whole bytes, concatenated —
            # exactly the layout the window byte-assembly produces.  The
            # match count over all C*K*K true bits is order-independent,
            # so the accumulation is bit-exact vs the legacy block order.
            kernel = artifacts.kernel  # (O, C, k, k)
            o, c, k, _ = kernel.shape
            operand = kernel.transpose(0, 2, 3, 1)  # (O, kh, kw, C)
            taps = _pack_bytes(operand)  # (O, k, k, nb)
            self._kernel_operand_inv = ~_bytes_to_words(taps.reshape(o, -1))
            # Thresholds rewritten in raw-match space: with m the match
            # count over the n = C*K*K true bits and p the padding bits
            # (which always match), the accumulation 2m - n crosses a
            # float threshold t exactly when the integer raw count m + p
            # crosses ceil/floor((t + n)/2) + p — so the threshold
            # compare runs directly on the uint16 match accumulator.
            n_bits = c * k * k
            pad_bits = self._kernel_operand_inv.shape[-1] * WORD_BITS - n_bits
            half = (np.asarray(self._thresholds, dtype=np.float64) + n_bits) / 2.0
            self._conv_match_hi = np.ceil(half).astype(np.int64) + pad_bits
            self._conv_match_lo = np.floor(half).astype(np.int64) + pad_bits

    # ------------------------------------------------------------------
    # fused-mode precomputation: byte-level kernel taps + XOR-space bounds
    # ------------------------------------------------------------------
    def _init_fused(self) -> None:
        """Build the fused conv matcher on top of the fast-mode state.

        The matcher comes from the active kernel set's ``match_builder``
        over the kernel tap bytes in operand order, returning XOR bit
        counts ``x`` instead of raw matches.  With ``n`` true bits the
        accumulation is ``n - 2x``, so the threshold compare becomes a
        *single* integer comparison: ``acc >= t  <=>  x <= floor((n-t)/2)``
        and (flipped channels) ``acc <= t  <=>  x >= ceil((n-t)/2)``.
        Folding the flip into ``bound = xor_lo - 1`` and XOR-ing the
        comparison result with the flip mask avoids materializing two
        boolean planes per tile.  Byte padding bits are zero on both the
        operand and the tap side, so they add no XOR counts.
        """
        artifacts = self.artifacts
        if artifacts.kernel is None:
            self._fused_matcher = None
            return
        kernel = artifacts.kernel  # (O, C, k, k)
        o, c, k, _ = kernel.shape
        taps = _pack_bytes(kernel.transpose(0, 2, 3, 1))  # (O, k, k, nb)
        self._kernel_tap_bytes = np.ascontiguousarray(taps.reshape(o, -1))
        n_bits = c * k * k
        half = (n_bits - np.asarray(self._thresholds, dtype=np.float64)) / 2.0
        xor_hi = np.floor(half).astype(np.int64)
        xor_lo = np.ceil(half).astype(np.int64)
        flips = np.asarray(self._flips).astype(bool)
        self._fused_bound = np.where(flips, xor_lo - 1, xor_hi)
        self._fused_flip = flips
        self._fused_matcher = get_kernels().match_builder(self._kernel_tap_bytes)
        self._init_cc_conv()

    def _init_cc_conv(self) -> None:
        """Attach the compiled conv backend when available.

        The compiled kernel computes the *fires* plane directly from the
        padded DVP byte volume — same tap tables, same XOR-space bounds,
        bit-exact with the NumPy matcher path (re-encoded as an unsigned
        inclusive window; see :mod:`repro.vsa.kernels_cc`).  The legacy
        kernel set is the reference configuration, so it keeps the pure
        NumPy path; anything else opts in unless ``REPRO_CC`` disables
        the backend or the build fails, in which case the engine silently
        keeps the matcher and ``kernel_info()`` records the reason.
        """
        self._cc_conv = None
        if self.artifacts.kernel is None or get_kernels().name == "legacy":
            return
        from repro.vsa.kernels_cc import build_conv_fires

        kernel = self.artifacts.kernel
        k = kernel.shape[2]
        nb = self._kernel_tap_bytes.shape[-1] // (k * k)
        self._cc_conv = build_conv_fires(
            self._kernel_tap_bytes, self._fused_bound, self._fused_flip, k, nb
        )

    @property
    def conv_backend(self) -> str:
        """Which BiConv implementation the fused path dispatches to."""
        if getattr(self, "_cc_conv", None) is not None:
            return "cc"
        return "numpy"

    def _fused_tile(self) -> int:
        """Batch-tile size keeping one tile's *entire* pipeline in budget."""
        kernel = self.artifacts.kernel
        p = self.positions
        if kernel is None:
            per_sample = p * 16
        else:
            o, _, k, _ = kernel.shape
            nb = self._kernel_tap_bytes.shape[-1] // (k * k)
            # operand bytes + uint16 XOR counts + the match gather's uint8
            # plane + the fires plane, per (position, out-channel).
            per_sample = p * (o * 4 + k * k * nb + 16)
        budget = self.conv_tile_mb * (1 << 20)
        return max(1, int(budget // max(per_sample, 1)))

    def _scores_fused(self, levels: np.ndarray) -> np.ndarray:
        """The single-pass pipeline: every stage per tile, then the next tile."""
        levels = np.asarray(levels).reshape((-1,) + self.input_shape)
        b = levels.shape[0]
        registry = get_registry()
        registry.counter("packed.samples").add(b)
        n_classes = self._class_inv.shape[1]
        out = np.empty((b, n_classes), dtype=np.int64)
        kernel = self.artifacts.kernel
        if kernel is not None:
            k = kernel.shape[2]
            pad = k // 2
        tile = self._fused_tile()
        h, w = self.input_shape
        n_tiles = 0
        for start in range(0, b, tile):
            stop = min(start + tile, b)
            n_tiles += 1
            with stage_timer("packed.dvp"):
                volume_bytes = self._dvp_bytes(levels[start:stop])
            if kernel is not None:
                with stage_timer("packed.biconv"):
                    padded = np.pad(
                        volume_bytes, ((0, 0), (pad, pad), (pad, pad), (0, 0))
                    )
                    if self._cc_conv is not None:
                        fires = self._cc_conv(padded)  # (T, P, O) uint8 0/1
                    else:
                        windows = sliding_window_view(padded, (k, k), axis=(1, 2))
                        operand = windows.transpose(0, 1, 2, 4, 5, 3).reshape(
                            stop - start, h * w, -1
                        )
                        counts = self._fused_matcher(operand)  # (T, P, O) XOR bits
                        fires = (counts <= self._fused_bound) ^ self._fused_flip
                feature_words = _bytes_to_words(_pack_bytes(fires))
            else:
                feature_words = _bytes_to_words(
                    volume_bytes.reshape(stop - start, self.positions, -1)
                )
            with stage_timer("packed.encode"):
                matches = _matches_against_inverted(
                    feature_words, self._feature_inv[None], self._enc_bits
                )
                s = np.where(2 * matches - self._enc_bits >= 0, 1, -1).astype(np.int8)
            with stage_timer("packed.similarity"):
                packed = _bytes_to_words(_pack_bytes(s))
                sims = _matches_against_inverted(
                    packed[:, None, None, :], self._class_inv[None], self._sim_bits
                )
                out[start:stop] = (2 * sims - self._sim_bits).sum(axis=1)
        registry.counter("packed.fused.tiles").add(n_tiles)
        registry.gauge("packed.fused.tile_size").set(tile)
        return out

    # ------------------------------------------------------------------
    # fast-mode stages
    # ------------------------------------------------------------------
    def _dvp_bytes(self, levels: np.ndarray) -> np.ndarray:
        """Packed DVP gather: levels (B, W, L) -> channel bytes (B, W, L, nb)."""
        levels = np.asarray(levels).reshape((-1,) + self.input_shape)
        volume = self._value_bytes_high[levels]
        if self._value_bytes_low is not None:
            volume = np.where(
                self._mask_bool[None, :, :, None],
                volume,
                self._value_bytes_low[levels],
            )
        return volume

    def _conv_tile(self, n_positions: int, out_channels: int) -> int:
        """Batch-tile size keeping the conv match intermediates bounded."""
        # Per sample the match loop holds an XOR word plane (8 B), its
        # uint8 counts, and the uint16 accumulator per (position, channel).
        per_sample = n_positions * out_channels * 11
        budget = max(0.0, self.conv_tile_mb) * (1 << 20)
        return max(1, int(budget // max(per_sample, 1)))

    @stage_timer("packed.biconv")
    def _conv_stage_fast(self, volume_bytes: np.ndarray) -> np.ndarray:
        """Packed BiConv: channel bytes (B, W, L, nb) -> fires (B, P, O) bool."""
        kernel = self.artifacts.kernel
        o, _, k, _ = kernel.shape
        b, h, w, nb = volume_bytes.shape
        pad = k // 2
        # Zero bytes are the all -1 channel vector — the border padding.
        padded = np.pad(volume_bytes, ((0, 0), (pad, pad), (pad, pad), (0, 0)))
        windows = sliding_window_view(padded, (k, k), axis=(1, 2))  # (B,H,W,nb,k,k)
        operand = windows.transpose(0, 1, 2, 4, 5, 3).reshape(b, h * w, k * k * nb)
        words = _bytes_to_words(operand)  # (B, P, Wc)
        kernel_inv = self._kernel_operand_inv  # (O, Wc)
        n_words = kernel_inv.shape[-1]
        popcount8 = get_kernels().popcount8
        flips = self._flips[None, None, :]
        fires = np.empty((b, h * w, o), dtype=bool)
        tile = self._conv_tile(h * w, o)
        for start in range(0, b, tile):
            stop = min(start + tile, b)
            # Accumulate raw XNOR matches word by word with the output
            # channel axis innermost — large contiguous ufunc inner loops
            # instead of a length-W_c broadcast reduction.
            acc = np.zeros((stop - start, h * w, o), dtype=np.uint16)
            for wi in range(n_words):
                acc += popcount8(
                    words[start:stop, :, wi, None] ^ kernel_inv[None, None, :, wi]
                )
            fires[start:stop] = np.where(
                flips, acc <= self._conv_match_lo, acc >= self._conv_match_hi
            )
        return fires

    @stage_timer("packed.encode")
    def _encode_stage_fast(self, feature_words: np.ndarray) -> np.ndarray:
        """Packed encoding: feature words (B, P, Wf) -> bipolar s (B, P)."""
        matches = _matches_against_inverted(
            feature_words, self._feature_inv[None], self._enc_bits
        )
        accumulated = 2 * matches - self._enc_bits
        return np.where(accumulated >= 0, 1, -1).astype(np.int8)

    @stage_timer("packed.similarity")
    def _similarity_stage_fast(self, s: np.ndarray) -> np.ndarray:
        """Packed soft voting: s (B, P) -> scores (B, n_classes)."""
        packed = _bytes_to_words(_pack_bytes(s))
        matches = _matches_against_inverted(
            packed[:, None, None, :], self._class_inv[None], self._sim_bits
        )  # (B, Theta, C)
        dots = 2 * matches - self._sim_bits
        return dots.sum(axis=1)

    def _encode_fast(self, levels: np.ndarray) -> np.ndarray:
        with stage_timer("packed.dvp"):
            volume_bytes = self._dvp_bytes(levels)
        get_registry().counter("packed.samples").add(volume_bytes.shape[0])
        if self._kernel_packed is not None:
            fires = self._conv_stage_fast(volume_bytes)
            feature_words = _bytes_to_words(_pack_bytes(fires))
        else:
            b = volume_bytes.shape[0]
            feature_words = _bytes_to_words(
                volume_bytes.reshape(b, self.positions, -1)
            )
        return self._encode_stage_fast(feature_words)

    # ------------------------------------------------------------------
    # legacy stages (the seed engine, kept as baseline and cross-check)
    # ------------------------------------------------------------------
    @stage_timer("packed.biconv")
    def _conv_stage(self, volume: np.ndarray) -> np.ndarray:
        """Packed BiConv: volume (B, D_H, W, L) int8 -> bipolar (B, O, W, L)."""
        kernel = self.artifacts.kernel
        b, c, h, w = volume.shape
        k = kernel.shape[2]
        pad = k // 2
        padded = np.pad(
            volume, ((0, 0), (0, 0), (pad, pad), (pad, pad)), constant_values=-1
        )
        windows = sliding_window_view(padded, (k, k), axis=(2, 3))  # (B,C,H,W,k,k)
        blocks = windows.transpose(0, 2, 3, 1, 4, 5).reshape(b, h * w, c * k * k)
        packed, dim = pack_bipolar(blocks, validate=False)
        matches = xnor_popcount(
            packed[:, :, None, :], self._kernel_packed[None, None, :, :], dim
        )  # (B, P, O)
        accumulated = 2 * matches - dim
        thresholds = self._thresholds[None, None, :]
        flips = self._flips[None, None, :]
        fires = np.where(flips, accumulated <= thresholds, accumulated >= thresholds)
        bipolar = np.where(fires, 1, -1).astype(np.int8)
        return bipolar.transpose(0, 2, 1).reshape(b, -1, h, w)

    @stage_timer("packed.encode")
    def _encode_stage(self, feature: np.ndarray) -> np.ndarray:
        """Packed encoding: (B, channels, W, L) -> bipolar s (B, P)."""
        b = feature.shape[0]
        flat = feature.reshape(b, self._channels, self.positions)
        packed, dim = pack_bipolar(flat.transpose(0, 2, 1), validate=False)  # (B, P, words)
        matches = xnor_popcount(packed, self._feature_packed[None], dim)
        accumulated = 2 * matches - dim
        return np.where(accumulated >= 0, 1, -1).astype(np.int8)

    @stage_timer("packed.similarity")
    def _similarity_stage(self, s: np.ndarray) -> np.ndarray:
        """Packed soft voting: s (B, P) -> scores (B, n_classes)."""
        packed, dim = pack_bipolar(s, validate=False)
        matches = xnor_popcount(
            packed[:, None, None, :], self._class_packed[None], dim
        )  # (B, Theta, C)
        dots = 2 * matches - dim
        return dots.sum(axis=1)

    def _encode_legacy(self, levels: np.ndarray) -> np.ndarray:
        with stage_timer("packed.dvp"):
            volume = self.artifacts.value_volume(levels)
        get_registry().counter("packed.samples").add(volume.shape[0])
        if self._kernel_packed is not None:
            feature = self._conv_stage(volume)
        else:
            feature = volume
        return self._encode_stage(feature)

    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        """Quantizer levels the ValueBox covers — valid inputs are [0, n)."""
        return self.artifacts.value_high.shape[0]

    def resident_operands(self) -> dict:
        """Every array inference reads at serve time, by stable name.

        Covers both the source artifact arrays and the mode's derived
        packed operands (value-volume bytes, conv operand words, packed
        feature/class vectors, thresholds, fused taps/bounds).  This is
        the scrub surface of :class:`repro.runtime.integrity
        .IntegrityScrubber`: golden digests are taken over exactly this
        dict at build time and re-checked on every scrub pass, so a bit
        flip in any resident memory is detectable — and a rebuilt engine
        reproduces the same dict bit for bit (construction is
        deterministic given the artifacts).
        """
        operands: dict = {}
        for name in (
            "mask",
            "value_high",
            "value_low",
            "kernel",
            "feature_vectors",
            "class_vectors",
            "conv_thresholds",
            "conv_flips",
        ):
            array = getattr(self.artifacts, name, None)
            if isinstance(array, np.ndarray):
                operands[f"artifacts.{name}"] = array
        for attr in (
            "_kernel_packed",
            "_thresholds",
            "_flips",
            "_feature_packed",
            "_class_packed",
            "_value_bytes_high",
            "_value_bytes_low",
            "_mask_bool",
            "_feature_inv",
            "_class_inv",
            "_kernel_operand_inv",
            "_conv_match_hi",
            "_conv_match_lo",
            "_kernel_tap_bytes",
            "_fused_bound",
            "_fused_flip",
        ):
            array = getattr(self, attr, None)
            if isinstance(array, np.ndarray):
                operands[f"engine.{attr.lstrip('_')}"] = array
        return operands

    #: Small integer attributes shipped alongside the operand arrays so a
    #: reconstructed engine needs no recomputation at all.
    _OPERAND_SCALARS = (
        "_conv_bits",
        "_enc_bits",
        "_sim_bits",
        "_channels",
        "_volume_channels",
    )

    def operand_state(self) -> tuple[dict[str, np.ndarray], dict]:
        """The engine's full resident state as ``(arrays, meta)``.

        ``arrays`` is exactly :meth:`resident_operands` — every ndarray
        inference reads at serve time, artifact and derived alike.
        ``meta`` carries the non-array remainder (mode, tile budget,
        config, packed-bit dimensions).  Together they are sufficient for
        :meth:`from_operand_state` to rebuild a bit-identical engine with
        **zero** recomputation, which is what lets a worker attach an
        :class:`repro.runtime.shm.OperandPlane` instead of unpickling and
        re-deriving the operands per process.
        """
        meta = {
            "mode": self.mode,
            "conv_tile_mb": self.conv_tile_mb,
            "input_shape": tuple(self.input_shape),
            "config": self.artifacts.config,
            "artifacts_metadata": dict(self.artifacts.metadata),
            "scalars": {
                name: getattr(self, name)
                for name in self._OPERAND_SCALARS
                if hasattr(self, name)
            },
        }
        return dict(self.resident_operands()), meta

    @classmethod
    def from_operand_state(
        cls, arrays: dict[str, np.ndarray], meta: dict
    ) -> "BitPackedUniVSA":
        """Reconstruct an engine around externally-owned operand views.

        The inverse of :meth:`operand_state`: artifact arrays and derived
        packed operands are adopted as-is (typically read-only zero-copy
        views of a shared-memory plane), so construction does no packing,
        inverting, or threshold folding.  Only the fused matcher closure
        and the optional compiled conv backend are (re)built — both are
        pure functions of the adopted tap bytes and bounds.  Bit-exact
        with a from-artifacts construction by the property suite.
        """
        def _artifact(name: str):
            return arrays.get(f"artifacts.{name}")

        artifacts = UniVSAArtifacts(
            config=meta["config"],
            input_shape=tuple(meta["input_shape"]),
            mask=_artifact("mask"),
            value_high=_artifact("value_high"),
            value_low=_artifact("value_low"),
            kernel=_artifact("kernel"),
            feature_vectors=_artifact("feature_vectors"),
            class_vectors=_artifact("class_vectors"),
            conv_thresholds=_artifact("conv_thresholds"),
            conv_flips=_artifact("conv_flips"),
            metadata=dict(meta.get("artifacts_metadata", {})),
        )
        self = cls.__new__(cls)
        self.mode = meta["mode"]
        self.conv_tile_mb = float(meta["conv_tile_mb"])
        self.artifacts = artifacts
        self.input_shape = artifacts.input_shape
        self.positions = artifacts.positions
        self._kernel_packed = None
        self._value_bytes_low = None
        for name, value in meta.get("scalars", {}).items():
            setattr(self, name, value)
        for key, array in arrays.items():
            if key.startswith("engine."):
                setattr(self, "_" + key[len("engine.") :], array)
        if self.mode == "fused":
            if artifacts.kernel is not None:
                self._fused_matcher = get_kernels().match_builder(
                    self._kernel_tap_bytes
                )
                self._init_cc_conv()
            else:
                self._fused_matcher = None
                self._cc_conv = None
        return self

    def sibling(self, mode: str, conv_tile_mb: float | None = None) -> "BitPackedUniVSA":
        """An engine over the *same* artifacts in a different mode.

        The resilience layer's degradation ladder uses this to build the
        seed-exact ``legacy`` fallback engine without re-extracting or
        copying artifacts; ``REPRO_ENGINE`` parity tests guarantee the
        sibling is bit-exact with this engine.
        """
        return BitPackedUniVSA(
            self.artifacts,
            mode=mode,
            conv_tile_mb=self.conv_tile_mb if conv_tile_mb is None else conv_tile_mb,
        )

    def traffic_model(self, batch: int = 256) -> dict:
        """Analytic memory-traffic / op-count model of this mode (roofline).

        Per-sample estimates of what the stage pipeline *touches* in
        intermediate arrays (reads + writes at ufunc granularity, bytes),
        how many 64-bit popcount ops and byte-LUT lookups it issues, and
        the peak intermediate footprint one scheduling unit holds (a
        conv/fused tile, or the whole ``batch`` in legacy mode).  The
        footprint is the roofline's x-axis: a pipeline whose tile
        footprint fits in cache pays DRAM only for its inputs, one that
        does not pays DRAM for every intermediate pass.
        """
        p = self.positions
        theta, n_classes = self._class_packed.shape[:2]
        ws = self._class_packed.shape[-1]
        wf = self._feature_packed.shape[-1]
        kernel = self.artifacts.kernel
        # Encode + similarity: XOR/popcount against the feature words,
        # then pack + XOR/popcount against the class words (per sample).
        tail_bytes = p * wf * 18 + p * 2 + theta * n_classes * ws * 18
        tail_pops = p * wf + theta * n_classes * ws
        if kernel is None:
            model = {
                "bytes_per_sample": float(tail_bytes),
                "popcounts_per_sample": float(tail_pops),
                "lut_lookups_per_sample": 0.0,
                "tile_samples": int(batch),
                "peak_intermediate_mb": batch * p * 18 / (1 << 20),
            }
        else:
            o, c, k, _ = kernel.shape
            nb = -(-c // 8)
            block_bytes = k * k * nb  # packed conv operand bytes per position
            wc = -(-block_bytes // 8)
            if self.mode == "fused":
                # Gather-accumulate: 1 operand byte read + O table-row
                # gathers + O uint16 accumulator read-modify-writes per
                # block byte; no XOR word plane exists at all.
                conv_bytes = 2 * p * block_bytes + p * block_bytes * (1 + 5 * o)
                conv_pops = 0
                lut = p * o * block_bytes
                tile = self._fused_tile()
                peak = tile * p * (o * 4 + block_bytes + 16)
            elif self.mode == "fast":
                # Word loop: per (position, channel, word) an 8-byte XOR
                # temp is written and re-read, popcounted to a uint8, and
                # accumulated into a uint16.
                conv_bytes = 2 * p * block_bytes + p * o * wc * 22
                conv_pops = p * o * wc
                lut = 0
                tile = self._conv_tile(p, o)
                peak = tile * p * o * 11
            else:
                # Legacy materializes the int8 operand block and packs it
                # per call, then runs the same word-loop match broadcast.
                conv_bytes = 2 * p * c * k * k + p * wc * 16 + p * o * wc * 24
                conv_pops = p * o * wc
                lut = 0
                tile = int(batch)
                peak = batch * p * (c * k * k + o * wc * 17)
            model = {
                "bytes_per_sample": float(conv_bytes + tail_bytes),
                "popcounts_per_sample": float(conv_pops + tail_pops),
                "lut_lookups_per_sample": float(lut),
                "tile_samples": int(tile),
                "peak_intermediate_mb": peak / (1 << 20),
            }
        model["mode"] = self.mode
        return model

    def publish_traffic_metrics(self, registry=None, batch: int = 256) -> None:
        """Record the traffic model as ``packed.traffic.*`` gauges."""
        if registry is None:
            registry = get_registry()
        model = self.traffic_model(batch=batch)
        registry.gauge("packed.traffic.bytes_per_sample").set(
            model["bytes_per_sample"]
        )
        registry.gauge("packed.traffic.popcounts_per_sample").set(
            model["popcounts_per_sample"]
        )
        registry.gauge("packed.traffic.lut_lookups_per_sample").set(
            model["lut_lookups_per_sample"]
        )
        registry.gauge("packed.traffic.peak_intermediate_mb").set(
            model["peak_intermediate_mb"]
        )

    def encode(self, levels: np.ndarray) -> np.ndarray:
        """Levels (B, W, L) -> bipolar sample vectors (B, W*L).

        Fused mode reuses the fast encode path here: fusion is a
        *schedule* over bit-identical stages, and a caller asking for
        the intermediate representation wants the whole batch anyway.
        """
        if self.mode in ("fast", "fused"):
            return self._encode_fast(levels)
        return self._encode_legacy(levels)

    def scores(self, levels: np.ndarray) -> np.ndarray:
        """Soft-voting class scores (B, n_classes)."""
        with trace_span("packed.classify"):
            if self.mode == "fused":
                scores = self._scores_fused(levels)
            elif self.mode == "fast":
                scores = self._similarity_stage_fast(self.encode(levels))
            else:
                scores = self._similarity_stage(self.encode(levels))
            record_soft_vote_margins(scores)
            annotate_span(batch=scores.shape[0])
            return scores

    def predict(self, levels: np.ndarray) -> np.ndarray:
        """Predicted labels via the packed datapath."""
        return self.scores(levels).argmax(axis=1)

    def score(self, levels: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(levels) == np.asarray(y)).mean())
