"""Extraction of the deployed pure-binary UniVSA model.

After LDC-style training only the binary artifacts are kept (Sec. II-C):
value tables V_H/V_L, the importance mask, the binary kernel K, feature
vectors F, and class vectors C.  Inference is integer/bitwise only; if the
model trained with BatchNorm before conv binarization, the BN folds into
per-channel integer thresholds (the FINN-style trick), preserving
bit-exactness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import MARGIN_HISTOGRAM, annotate_span, get_registry, stage_timer, trace_span
from repro.vsa.hypervector import sign_bipolar

from .config import UniVSAConfig
from .model import UniVSAModel

__all__ = ["UniVSAArtifacts", "extract_artifacts", "record_soft_vote_margins"]


def record_soft_vote_margins(scores: np.ndarray) -> None:
    """Record per-sample top1−top2 soft-vote score gaps.

    The gap is the decision's confidence margin; its distribution is what
    the run ledger summarizes.  Lands in the ``quality.soft_vote_margin``
    histogram — outside the stage namespaces, so stage shares stay pure
    wall time.  No-op (beyond one branch) under the null registry.
    """
    registry = get_registry()
    if not registry.enabled or scores.shape[-1] < 2:
        return
    part = np.partition(scores, scores.shape[-1] - 2, axis=-1)
    margins = part[..., -1] - part[..., -2]
    histogram = registry.histogram(MARGIN_HISTOGRAM)
    for value in np.ravel(margins):
        histogram.observe(float(value))


def _int_conv2d_same(
    volume: np.ndarray, kernel: np.ndarray, pad_value: int = -1
) -> np.ndarray:
    """Integer 'same' convolution with bipolar border padding.

    volume (B, C, H, W) int8, kernel (O, C, k, k) int8 -> (B, O, H, W) int64
    accumulations.  This is the arithmetic the hardware conv engine
    produces before thresholding.
    """
    b, c, h, w = volume.shape
    o, _, k, _ = kernel.shape
    pad = k // 2
    padded = np.pad(
        volume, ((0, 0), (0, 0), (pad, pad), (pad, pad)), constant_values=pad_value
    ).astype(np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, (k, k), axis=(2, 3)
    )  # (B, C, H, W, k, k), read-only — no writeable-aliasing foot-gun
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(b, h * w, c * k * k)
    out = cols @ kernel.reshape(o, -1).astype(np.int64).T  # (B, P, O)
    return out.transpose(0, 2, 1).reshape(b, o, h, w)


@dataclass
class UniVSAArtifacts:
    """The deployed binary UniVSA model and its integer inference path."""

    config: UniVSAConfig
    input_shape: tuple[int, int]
    mask: np.ndarray  # (W, L) int8
    value_high: np.ndarray  # V_H: (M, D_H) int8
    value_low: np.ndarray | None  # V_L: (M, D_L) int8, None when DVP off
    kernel: np.ndarray | None  # K: (O, D_H, D_K, D_K) int8, None when BiConv off
    feature_vectors: np.ndarray  # F: (channels, W*L) int8
    class_vectors: np.ndarray  # C: (Theta, n_classes, W*L) int8
    conv_thresholds: np.ndarray | None = None  # per-channel fold of BN (O,)
    conv_flips: np.ndarray | None = None  # per-channel comparison flips (O,)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kernel is not None and self.conv_thresholds is None:
            self.conv_thresholds = np.zeros(self.kernel.shape[0])
            self.conv_flips = np.zeros(self.kernel.shape[0], dtype=bool)

    # ------------------------------------------------------------------
    @property
    def positions(self) -> int:
        """Output positions (W x L)."""
        return self.input_shape[0] * self.input_shape[1]

    @property
    def n_classes(self) -> int:
        """Number of classes."""
        return self.class_vectors.shape[1]

    # ------------------------------------------------------------------
    # inference stages (integer arithmetic only)
    # ------------------------------------------------------------------
    @stage_timer("artifacts.dvp")
    def value_volume(self, levels: np.ndarray) -> np.ndarray:
        """DVP lookup: levels (B, W, L) -> bipolar volume (B, D_H, W, L)."""
        levels = np.asarray(levels).reshape((-1,) + self.input_shape)
        high = self.value_high[levels]  # (B, W, L, D_H)
        if self.value_low is None:
            volume = high
        else:
            d_high = self.value_high.shape[1]
            d_low = self.value_low.shape[1]
            low = np.ones(levels.shape + (d_high,), dtype=np.int8)
            low[..., :d_low] = self.value_low[levels]
            select = self.mask.astype(bool)[None, :, :, None]
            volume = np.where(select, high, low)
        return volume.transpose(0, 3, 1, 2)

    @stage_timer("artifacts.biconv")
    def feature_map(self, volume: np.ndarray) -> np.ndarray:
        """BiConv + threshold binarization: -> (B, channels, W, L) int8."""
        if self.kernel is None:
            return volume
        accumulated = _int_conv2d_same(volume, self.kernel)
        thresholds = self.conv_thresholds.reshape(1, -1, 1, 1)
        flips = self.conv_flips.reshape(1, -1, 1, 1)
        fires = np.where(flips, accumulated <= thresholds, accumulated >= thresholds)
        return np.where(fires, 1, -1).astype(np.int8)

    def encode(self, levels: np.ndarray) -> np.ndarray:
        """Full encoding: levels -> bipolar sample vectors (B, W*L)."""
        feature = self.feature_map(self.value_volume(levels))
        get_registry().counter("artifacts.samples").add(feature.shape[0])
        with stage_timer("artifacts.encode"):
            batch = feature.shape[0]
            flat = feature.reshape(
                batch, feature.shape[1], self.positions
            ).astype(np.int64)
            accumulated = (
                flat * self.feature_vectors[None].astype(np.int64)
            ).sum(axis=1)
            return sign_bipolar(accumulated)

    def scores(self, levels: np.ndarray) -> np.ndarray:
        """Soft-voting similarity scores (B, n_classes), Eq. 4 numerator."""
        with trace_span("artifacts.classify"):
            s = self.encode(levels).astype(np.int64)
            with stage_timer("artifacts.similarity"):
                # sum_theta C^theta s  ==  (sum_theta C^theta) s
                stacked = self.class_vectors.astype(np.int64).sum(axis=0)  # (C, P)
                scores = s @ stacked.T
            record_soft_vote_margins(scores)
            annotate_span(batch=scores.shape[0])
            return scores

    def predict(self, levels: np.ndarray) -> np.ndarray:
        """Predicted labels (Eq. 4 argmax)."""
        return self.scores(levels).argmax(axis=1)

    def score(self, levels: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(levels) == np.asarray(y)).mean())

    # ------------------------------------------------------------------
    def memory_footprint_bits(self, include_mask: bool = False) -> int:
        """Deployed model size per Eq. 5 (mask excluded, as in the paper)."""
        total = self.value_high.size
        if self.value_low is not None:
            total += self.value_low.size
        if self.kernel is not None:
            total += self.kernel.size
        total += self.feature_vectors.size
        total += self.class_vectors.size
        if include_mask:
            total += self.mask.size
        return int(total)

    def save(self, path):
        """Persist all artifacts to a checksummed ``.npz``, atomically.

        The archive embeds a versioned integrity manifest (per-array
        sha256, config hash) and is written temp-file + fsync + rename,
        so a crash mid-save leaves any previous archive intact rather
        than a torn zip.  Returns the final path (``.npz`` appended when
        missing, matching ``np.savez``).  See
        :mod:`repro.runtime.integrity` for the format.
        """
        # Function-level import: core stays importable without the
        # runtime package in the loop at module-import time.
        from repro.runtime.integrity import save_archive

        arrays = {
            "mask": self.mask,
            "value_high": self.value_high,
            "feature_vectors": self.feature_vectors,
            "class_vectors": self.class_vectors,
            "input_shape": np.array(self.input_shape),
            "paper_tuple": np.array(self.config.as_paper_tuple()),
            "levels": np.array(self.config.levels),
            "flags": np.array(
                [self.config.use_dvp, self.config.use_biconv, self.config.use_batchnorm]
            ),
        }
        if self.value_low is not None:
            arrays["value_low"] = self.value_low
        if self.kernel is not None:
            arrays["kernel"] = self.kernel
            arrays["conv_thresholds"] = self.conv_thresholds
            arrays["conv_flips"] = self.conv_flips
        return save_archive(path, arrays, config=self.config)

    @classmethod
    def load(cls, path, verify: bool = True) -> "UniVSAArtifacts":
        """Load artifacts saved by :meth:`save`.

        Every array is digest-verified against the embedded manifest;
        damage raises :class:`repro.runtime.integrity
        .ArtifactCorruptionError` naming the bad array (a torn/truncated
        archive raises it with ``array=None``).  ``verify=False`` skips
        the checks — the escape hatch for forensics and for pre-manifest
        archives.
        """
        from repro.runtime.integrity import load_archive_arrays

        archive = load_archive_arrays(path, verify=verify)
        flags = archive["flags"]
        config = UniVSAConfig.from_paper_tuple(
            tuple(int(v) for v in archive["paper_tuple"]),
            levels=int(archive["levels"]),
            use_dvp=bool(flags[0]),
            use_biconv=bool(flags[1]),
            use_batchnorm=bool(flags[2]),
        )
        return cls(
            config=config,
            input_shape=tuple(int(v) for v in archive["input_shape"]),
            mask=archive["mask"],
            value_high=archive["value_high"],
            value_low=archive.get("value_low"),
            kernel=archive.get("kernel"),
            feature_vectors=archive["feature_vectors"],
            class_vectors=archive["class_vectors"],
            conv_thresholds=archive.get("conv_thresholds"),
            conv_flips=archive.get("conv_flips"),
        )


def extract_artifacts(model: UniVSAModel) -> UniVSAArtifacts:
    """Read out the deployed binary model from a trained UniVSA graph."""
    config = model.config
    value_high = model.vb_high.lookup_table(config.levels)
    value_low = model.vb_low.lookup_table(config.levels) if model.vb_low else None
    kernel = model.conv.binary_weight() if model.conv is not None else None
    thresholds = None
    flips = None
    if model.conv_bn is not None:
        thresholds, flips = model.conv_bn.fold_thresholds()
    return UniVSAArtifacts(
        config=config,
        input_shape=model.input_shape,
        mask=np.array(model._buffers["mask"], copy=True),
        value_high=value_high,
        value_low=value_low,
        kernel=kernel,
        feature_vectors=model.encoder.binary_weight(),
        class_vectors=model.voting.binary_weights(),
        conv_thresholds=thresholds,
        conv_flips=flips,
    )
