"""End-to-end convenience API: data -> train -> export -> hardware report.

This is the one-stop entry point the examples and benchmark harness use:

    result = run_benchmark("isolet")
    print(result.accuracy, result.hardware.latency_ms)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.registry import BenchmarkData, get_benchmark, load
from repro.hw.report import HardwareReport, hardware_report
from repro.utils.trainloop import TrainConfig

from .config import UniVSAConfig
from .export import UniVSAArtifacts
from .train import UniVSAResult, train_univsa

__all__ = ["BenchmarkRun", "run_benchmark", "evaluate_artifacts"]


@dataclass
class BenchmarkRun:
    """Everything produced by one end-to-end benchmark run."""

    name: str
    config: UniVSAConfig
    data: BenchmarkData
    training: UniVSAResult
    accuracy: float
    train_accuracy: float
    hardware: HardwareReport

    @property
    def artifacts(self) -> UniVSAArtifacts:
        """The deployed binary artifacts of this run."""
        return self.training.artifacts

    @property
    def memory_kb(self) -> float:
        """Deployed model size in (decimal) kilobytes."""
        return self.hardware.memory_kb


def run_benchmark(
    name: str,
    config: UniVSAConfig | None = None,
    train_config: TrainConfig | None = None,
    n_train: int | None = None,
    n_test: int | None = None,
    seed: int = 0,
    mask_method: str = "mi",
    frequency_mhz: float = 250.0,
) -> BenchmarkRun:
    """Train and evaluate UniVSA on a registered benchmark.

    ``config`` defaults to the paper's searched Table I configuration for
    the task; ``train_config`` defaults to a laptop-scale recipe.
    """
    benchmark = get_benchmark(name)
    if config is None:
        # The DVP mask fraction follows the task's informative share (what a
        # wrapper feature selection would find on the real data).
        config = UniVSAConfig.from_paper_tuple(
            benchmark.paper_config,
            levels=benchmark.levels,
            high_fraction=min(benchmark.spec.informative_fraction, 1.0),
        )
    if train_config is None:
        train_config = TrainConfig(
            epochs=20,
            lr=0.008,
            seed=seed,
            balance_classes=benchmark.spec.class_balance is not None,
        )
    data = load(name, n_train=n_train, n_test=n_test, seed=seed)
    training = train_univsa(
        data.x_train,
        data.y_train,
        n_classes=benchmark.n_classes,
        config=config,
        mask_method=mask_method,
        train_config=train_config,
    )
    accuracy = training.artifacts.score(data.x_test, data.y_test)
    train_accuracy = training.artifacts.score(data.x_train, data.y_train)
    hardware = hardware_report(
        config,
        benchmark.input_shape,
        benchmark.n_classes,
        name=name,
        frequency_mhz=frequency_mhz,
    )
    return BenchmarkRun(
        name=name,
        config=config,
        data=data,
        training=training,
        accuracy=accuracy,
        train_accuracy=train_accuracy,
        hardware=hardware,
    )


def evaluate_artifacts(
    artifacts: UniVSAArtifacts, x: np.ndarray, y: np.ndarray
) -> dict[str, float]:
    """Accuracy + memory summary of a deployed model."""
    return {
        "accuracy": artifacts.score(x, y),
        "memory_kb": artifacts.memory_footprint_bits() / 8000.0,
    }
