"""UniVSA core: the paper's primary contribution.

Public API:

* :class:`UniVSAConfig` — the (D_H, D_L, D_K, O, Theta) design point;
* :func:`train_univsa` — LDC-style training of the full pipeline;
* :class:`UniVSAArtifacts` — the deployed pure-binary model;
* :class:`BitPackedUniVSA` — XNOR/popcount inference (hardware twin).
"""

from .adapt import AdaptationReport, adapt_class_vectors
from .config import UniVSAConfig
from .export import UniVSAArtifacts, extract_artifacts
from .inference import BitPackedUniVSA
from .model import ChannelEncodingLayer, SoftVotingHead, UniVSAModel
from .train import UniVSAResult, build_mask, train_univsa

__all__ = [
    "AdaptationReport",
    "adapt_class_vectors",
    "UniVSAConfig",
    "UniVSAModel",
    "ChannelEncodingLayer",
    "SoftVotingHead",
    "UniVSAArtifacts",
    "extract_artifacts",
    "BitPackedUniVSA",
    "UniVSAResult",
    "build_mask",
    "train_univsa",
]
