"""On-device adaptation of deployed UniVSA models.

The binary artifacts can be updated without the training stack: the
classic HDC mistake-driven rule keeps integer class accumulators and adds
or subtracts the (binary) sample encoding of misclassified samples, then
re-binarizes.  This is the standard VSA online-learning recipe ([9]'s
retraining, LeHDC's motivation) applied to the UniVSA artifact format —
the encoding path (V, K, F) stays frozen, only C adapts, so the hardware
similarity memory is the only thing rewritten on device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.vsa.hypervector import sign_bipolar

from .export import UniVSAArtifacts

__all__ = ["AdaptationReport", "adapt_class_vectors"]


@dataclass
class AdaptationReport:
    """What an adaptation pass did."""

    epochs_run: int
    updates: int
    accuracy_before: float
    accuracy_after: float


def adapt_class_vectors(
    artifacts: UniVSAArtifacts,
    levels: np.ndarray,
    labels: np.ndarray,
    epochs: int = 5,
    margin: int = 0,
    seed: int = 0,
) -> AdaptationReport:
    """Mistake-driven update of the class vectors, in place.

    For every sample whose predicted class wins by less than ``margin``
    over the true class, the sample encoding is added to the true class
    accumulator and subtracted from the winner, per voter.  Accumulators
    are initialized from the current (scaled) class vectors, so repeated
    adaptation is stable.
    """
    levels = np.asarray(levels).reshape((-1,) + artifacts.input_shape)
    labels = np.asarray(labels)
    if len(levels) != len(labels):
        raise ValueError("levels/labels length mismatch")
    if epochs < 1:
        raise ValueError("epochs must be >= 1")

    encodings = artifacts.encode(levels).astype(np.int64)  # (B, P)
    voters, n_classes, positions = artifacts.class_vectors.shape
    # Warm-start accumulators at a magnitude comparable to a few updates.
    accumulators = artifacts.class_vectors.astype(np.int64) * 3

    def scores_of(enc: np.ndarray) -> np.ndarray:
        stacked = sign_bipolar(accumulators).astype(np.int64).sum(axis=0)
        return enc @ stacked.T

    before = float((scores_of(encodings).argmax(axis=1) == labels).mean())
    rng = np.random.default_rng(seed)
    updates = 0
    epochs_run = 0
    for _ in range(epochs):
        epochs_run += 1
        changed = 0
        for i in rng.permutation(len(encodings)):
            s = encodings[i]
            scores = scores_of(s[None])[0]
            true = labels[i]
            winner = int(scores.argmax())
            if winner == true and scores[winner] - np.partition(scores, -2)[-2] > margin:
                continue
            if winner != true or margin > 0:
                accumulators[:, true] += s
                if winner != true:
                    accumulators[:, winner] -= s
                changed += 1
        updates += changed
        if changed == 0:
            break
    artifacts.class_vectors = sign_bipolar(accumulators).astype(np.int8)
    after = float((artifacts.predict(levels) == labels).mean())
    return AdaptationReport(
        epochs_run=epochs_run,
        updates=updates,
        accuracy_before=before,
        accuracy_after=after,
    )
