"""The trainable UniVSA model (Fig. 3 pipeline).

Stage order, matching the paper:

1. **DVP** — each discretized feature value goes through VB_H (D_H bits) or
   VB_L (D_L bits) depending on the importance mask; VB_L outputs are
   placed in the first D_L channels and the remaining channels are tied to
   the constant +1 (a zero-cost pad in hardware).  The result is the value
   volume (B, D_H, W, L).
2. **BiConv** — binary convolution (O, D_H, D_K, D_K) over the volume with
   bipolar -1 border padding, binarized (optionally through BatchNorm,
   which folds to per-channel integer thresholds at export).
3. **Encoding** — binary feature vectors F of shape (O, W*L); the sample
   vector is s_j = sgn(sum_o F[o, j] * conv[o, j]), dimension W*L.
4. **Soft voting** — Theta parallel binary similarity layers averaged into
   class logits (Eq. 4).
"""

from __future__ import annotations

import numpy as np

from repro.ldc.model import ValueBox, normalize_levels
from repro.nn import BatchNorm2d, BinaryConv2d, BinaryLinear, Module, Parameter, Tensor, no_grad
from repro.nn import functional as F
from repro.nn.init import uniform_symmetric
from repro.nn.tensor import stack

from .config import UniVSAConfig

__all__ = ["ChannelEncodingLayer", "SoftVotingHead", "UniVSAModel"]


class ChannelEncodingLayer(Module):
    """Encoding over conv channels: s_j = sgn(sum_o F[o, j] * x[o, j]).

    Unlike LDC (one feature vector per input feature), F here indexes the
    *channel position* of the BiConv output (Sec. III-A.3), so the weight
    has shape (channels, positions) and the sample vector has dimension
    ``positions`` (= W * L).
    """

    def __init__(self, channels: int, positions: int, rng=None) -> None:
        super().__init__()
        self.channels = channels
        self.positions = positions
        self.weight = Parameter(uniform_symmetric((channels, positions), rng=rng), binary=True)

    def forward(self, x: Tensor) -> Tensor:
        """x (B, channels, positions) bipolar -> (B, positions) bipolar."""
        f = self.weight.sign_ste()
        accumulated = (x * f.reshape(1, self.channels, self.positions)).sum(axis=1)
        return (accumulated * (1.0 / np.sqrt(self.channels))).sign_ste()

    def binary_weight(self) -> np.ndarray:
        """Deployed feature vectors F (channels, positions) in {-1, +1}."""
        return np.where(self.weight.data >= 0.0, 1, -1).astype(np.int8)


class SoftVotingHead(Module):
    """Theta parallel binary similarity layers, averaged (Eq. 4)."""

    def __init__(self, dim: int, n_classes: int, voters: int, rng=None) -> None:
        super().__init__()
        self.voters = voters
        self.heads = [BinaryLinear(dim, n_classes, rng=rng) for _ in range(voters)]
        for i, head in enumerate(self.heads):
            setattr(self, f"head{i}", head)
        self.logit_scale = 8.0 / dim

    def forward(self, s: Tensor) -> Tensor:
        """s (B, dim) bipolar -> averaged logits (B, C)."""
        outputs = [head(s) for head in self.heads]
        if len(outputs) == 1:
            return outputs[0] * self.logit_scale
        return stack(outputs, axis=0).mean(axis=0) * self.logit_scale

    def binary_weights(self) -> np.ndarray:
        """Deployed class vectors C (voters, n_classes, dim) in {-1, +1}."""
        return np.stack([head.binary_weight() for head in self.heads])


class UniVSAModel(Module):
    """End-to-end trainable UniVSA graph.

    ``mask`` is the (W, L) importance mask from
    :func:`repro.features.importance_mask`; None means all-high (DVP
    disabled or mask deferred).
    """

    def __init__(
        self,
        input_shape: tuple[int, int],
        n_classes: int,
        config: UniVSAConfig = UniVSAConfig(),
        mask: np.ndarray | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.input_shape = tuple(input_shape)
        self.n_classes = n_classes
        self.config = config
        w, length = self.input_shape
        self.positions = w * length

        if mask is None or not config.use_dvp:
            mask = np.ones(self.input_shape, dtype=np.int8)
        mask = np.asarray(mask, dtype=np.int8)
        if mask.shape != self.input_shape:
            raise ValueError(f"mask shape {mask.shape} != input shape {self.input_shape}")
        self.register_buffer("mask", mask)

        self.vb_high = ValueBox(config.d_high, hidden=config.hidden, rng=rng)
        self.vb_low = (
            ValueBox(config.d_low, hidden=config.hidden, rng=rng)
            if config.use_dvp
            else None
        )
        if config.use_biconv:
            self.conv = BinaryConv2d(
                config.d_high,
                config.out_channels,
                config.kernel_size,
                stride=1,
                padding=0,  # padding applied manually with bipolar -1
                rng=rng,
            )
            self.conv_bn = BatchNorm2d(config.out_channels) if config.use_batchnorm else None
        else:
            self.conv = None
            self.conv_bn = None
        self.encoder = ChannelEncodingLayer(config.encoding_channels(), self.positions, rng=rng)
        self.voting = SoftVotingHead(self.positions, n_classes, config.voters, rng=rng)

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def preprocess(self, levels: np.ndarray) -> np.ndarray:
        """Integer levels (B, W, L) -> normalized float input."""
        levels = np.asarray(levels).reshape((-1,) + self.input_shape)
        return normalize_levels(levels, self.config.levels)

    def value_volume(self, x: Tensor) -> Tensor:
        """DVP stage: (B, W, L) values -> (B, D_H, W, L) bipolar volume."""
        batch = x.shape[0]
        w, length = self.input_shape
        flat = x.reshape(batch * w * length, 1)
        high = self.vb_high(flat).reshape(batch, w, length, self.config.d_high)
        if self.vb_low is None:
            volume = high
        else:
            low = self.vb_low(flat).reshape(batch, w, length, self.config.d_low)
            pad_width = self.config.d_high - self.config.d_low
            if pad_width:
                ones = Tensor(np.ones((batch, w, length, pad_width), dtype=np.float32))
                from repro.nn.tensor import concat

                low = concat([low, ones], axis=3)
            mask = Tensor(
                self._buffers["mask"].astype(np.float32).reshape(1, w, length, 1)
            )
            volume = high * mask + low * (1.0 - mask)
        return volume.transpose(0, 3, 1, 2)

    def feature_map(self, volume: Tensor) -> Tensor:
        """BiConv stage: value volume -> (B, channels, W, L) bipolar map."""
        if self.conv is None:
            return volume
        padding = self.config.kernel_size // 2
        padded = F.pad2d(volume, padding, value=-1.0)
        accumulated = self.conv(padded)
        if self.conv_bn is not None:
            accumulated = self.conv_bn(accumulated)
        reduction = self.config.d_high * self.config.kernel_size**2
        return (accumulated * (1.0 / np.sqrt(reduction))).sign_ste()

    def forward(self, x: Tensor) -> Tensor:
        """Normalized values (B, W, L) -> class logits (B, C)."""
        volume = self.value_volume(x)
        feature = self.feature_map(volume)
        batch = feature.shape[0]
        channels = self.config.encoding_channels()
        sample_vectors = self.encoder(feature.reshape(batch, channels, self.positions))
        return self.voting(sample_vectors)

    def encode(self, levels: np.ndarray) -> np.ndarray:
        """Discretized samples -> bipolar sample vectors (B, W*L)."""
        self.eval()
        with no_grad():
            x = Tensor(self.preprocess(levels))
            volume = self.value_volume(x)
            feature = self.feature_map(volume)
            batch = feature.shape[0]
            channels = self.config.encoding_channels()
            s = self.encoder(feature.reshape(batch, channels, self.positions))
        return s.data.astype(np.int8)

    def predict(self, levels: np.ndarray) -> np.ndarray:
        """Predicted labels straight from the trained graph."""
        self.eval()
        with no_grad():
            logits = self.forward(Tensor(self.preprocess(levels)))
        return logits.data.argmax(axis=1)
