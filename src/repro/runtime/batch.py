"""Parallel batch execution over the packed inference engine.

:class:`BatchRunner` shards a large batch of quantized level frames
across a worker pool and runs :class:`repro.core.BitPackedUniVSA` on
each shard, preserving input order in the assembled output.  Threads are
the default — the bit kernels are NumPy ufunc loops that release the GIL,
so shards genuinely overlap — with a process-pool option for workloads
that want memory isolation: each worker process rebuilds the engine
**once** from the pickled artifacts in its initializer (zero-copy via
fork where available), not per task.

Process pools hand shards off through :mod:`multiprocessing.shared_memory`
by default (``shm=None`` → ``REPRO_SHM``, see
:func:`repro.runtime.shm.resolve_shm`): the batch's level array is
materialized in one parent-owned segment per call and workers attach
zero-copy views by name + span, so the pool pipe carries descriptors
instead of pickled sample arrays.  The segment is disposed in a
``finally`` — its lifetime is exactly the batch's — and
``batch.shm.{segments,bytes_shared}`` / worker-side ``batch.shm.attach``
counters account for the handoff (vs ``batch.bytes_pickled`` on the
non-shm path).

Observability rides on the existing substrate:

* every shard runs under ``stage_timer("batch.shard")``, so with a
  tracer active each shard becomes a span tree rooted at ``batch.shard``
  with the usual ``packed.classify`` subtree below it (thread mode; a
  process worker's spans live in its own process, so process mode
  observes shard wall time from the parent instead);
* ``batch.samples`` / ``batch.shards`` counters and a ``batch.workers``
  gauge record what the pool actually did;
* a ``batch.run`` trace root around the whole call is annotated with
  batch size, shard count, and worker count.

``python -m repro bench-throughput`` builds on this runner to measure
samples/sec (see :mod:`repro.runtime.throughput`).
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from time import perf_counter

import numpy as np

from repro.obs import annotate_span, get_registry, stage_timer, trace_span
from repro.obs.telemetry import (
    drain_pool,
    drain_worker_delta,
    install_worker_telemetry,
    merge_delta,
    worker_telemetry_installed,
)

from .shm import SharedArray, attach_view, resolve_shm

__all__ = ["BatchRunner", "WorkerPool", "resolve_workers"]


def resolve_workers(workers: int | None = None) -> int:
    """Worker count: explicit > ``REPRO_WORKERS`` > ``os.cpu_count()``."""
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# process-pool plumbing (module level so spawn contexts can pickle it)
# ---------------------------------------------------------------------------
_WORKER_ENGINE = None


def _process_worker_init(
    artifacts, mode: str, conv_tile_mb: float, telemetry: bool = False
) -> None:
    global _WORKER_ENGINE
    from repro.core.inference import BitPackedUniVSA

    _WORKER_ENGINE = BitPackedUniVSA(artifacts, mode=mode, conv_tile_mb=conv_tile_mb)
    # Telemetry installs *after* engine construction so one-time init
    # work stays out of the harvested deltas — merged process-run totals
    # must match what a serial run records.
    install_worker_telemetry(telemetry)
    if worker_telemetry_installed():
        from repro.vsa.kernels import publish_kernel_metrics

        publish_kernel_metrics(get_registry())


def _process_worker_scores(levels: np.ndarray) -> tuple[np.ndarray, float, dict | None]:
    start = perf_counter()
    scores = _WORKER_ENGINE.scores(levels)
    return scores, perf_counter() - start, drain_worker_delta()


def _process_worker_scores_shm(
    descriptor: tuple, span_start: int, span_stop: int
) -> tuple[np.ndarray, float, dict | None]:
    """Shm variant: attach the parent's segment, score a zero-copy slice."""
    start = perf_counter()
    levels = attach_view(descriptor, span_start, span_stop)
    get_registry().counter("batch.shm.attach").add(1)
    scores = _WORKER_ENGINE.scores(levels)
    return scores, perf_counter() - start, drain_worker_delta()


class WorkerPool:
    """Lazily-built executor with crash replacement.

    Wraps a zero-argument ``factory`` returning a fresh
    :class:`concurrent.futures.Executor`.  The executor is built on first
    :meth:`ensure`, discarded wholesale by :meth:`replace` (the recovery
    path after a crashed process worker poisons its pool — see
    :meth:`BatchRunner._replace_pool`), and torn down by :meth:`close`.
    Shared by :class:`BatchRunner` and the co-design search engine
    (:mod:`repro.search.engine`), so both layers get the same pool
    lifecycle and recovery semantics.
    """

    def __init__(self, factory) -> None:
        self._factory = factory
        self._executor: Executor | None = None

    @property
    def executor(self) -> Executor | None:
        """The live executor, or ``None`` before first use / after close."""
        return self._executor

    def ensure(self) -> Executor:
        """Build the executor on first use; return the live one after."""
        if self._executor is None:
            self._executor = self._factory()
        return self._executor

    def replace(self) -> Executor:
        """Discard the (possibly broken) executor and build a fresh one.

        ``shutdown`` on a broken pool only reaps what is left; it never
        blocks on lost work, so replacement is safe mid-batch.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        return self.ensure()

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class BatchRunner:
    """Order-preserving sharded execution of packed inference.

    Parameters
    ----------
    engine:
        A :class:`repro.core.BitPackedUniVSA` (any mode).
    shard_size:
        Samples per shard; ``None`` splits the batch into about
        ``2 x workers`` shards (load balancing without tiny shards).
    workers:
        Pool size; ``None`` resolves via :func:`resolve_workers`.
    executor:
        ``"thread"`` (default) or ``"process"``.  Process mode ships the
        engine's artifacts to each worker once via the pool initializer;
        with a fork start method the packed tables are shared
        copy-on-write rather than pickled.
    mp_context:
        Optional ``multiprocessing`` context for process mode.
    shm:
        Zero-copy shard handoff through shared memory (process executors
        only).  ``None`` defers to ``REPRO_SHM`` (default on); thread
        executors ignore it entirely.
    """

    def __init__(
        self,
        engine,
        shard_size: int | None = None,
        workers: int | None = None,
        executor: str = "thread",
        mp_context=None,
        shm: bool | None = None,
    ) -> None:
        if executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; expected 'thread' or 'process'"
            )
        self.engine = engine
        self.workers = resolve_workers(workers)
        self.shard_size = shard_size
        self.executor_kind = executor
        self.use_shm = resolve_shm(shm, executor)
        self._mp_context = mp_context
        self._workerpool = WorkerPool(self._make_pool)

    @property
    def _pool(self) -> Executor | None:
        return self._workerpool.executor

    # ------------------------------------------------------------------
    def effective_shard_size(self, n: int) -> int:
        """The shard size a batch of ``n`` samples actually runs with.

        Explicit ``shard_size`` wins; otherwise the batch splits into
        about ``2 x workers`` shards.  The divisor is capped at ``n`` so
        a degenerate batch (``n < workers``) yields ``n`` single-sample
        shards instead of phantom empty ones.
        """
        if n <= 0:
            return 0
        size = self.shard_size
        if size is None:
            size = -(-n // max(1, min(self.workers * 2, n)))
        return max(1, int(size))

    def _shards(self, n: int) -> list[tuple[int, int]]:
        """(start, stop) spans covering ``range(n)`` in order."""
        size = self.effective_shard_size(n)
        if size <= 0:
            return []
        return [(start, min(start + size, n)) for start in range(0, n, size)]

    def _share_batch(self, levels: np.ndarray, registry) -> SharedArray:
        """Materialize ``levels`` in a fresh parent-owned shm segment."""
        shared = SharedArray(levels)
        registry.counter("batch.shm.segments").add(1)
        registry.counter("batch.shm.bytes_shared").add(shared.nbytes)
        return shared

    def _pool_initializer(self):
        """(initializer, initargs) for process pools; overridable seam.

        The trailing initarg is the telemetry switch: workers install a
        recording registry only when the parent registry is enabled at
        pool-build time, so observability-off runs keep the
        zero-overhead path end to end.  Re-evaluated whenever the pool
        is (re)built, including crash replacement.
        """
        return _process_worker_init, (
            self.engine.artifacts,
            self.engine.mode,
            self.engine.conv_tile_mb,
            get_registry().enabled,
        )

    def _make_pool(self) -> Executor:
        """Build a fresh worker pool (also the rebuild path after a crash)."""
        if self.executor_kind == "thread":
            return ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-batch"
            )
        import multiprocessing as mp

        context = self._mp_context
        if context is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else None
            context = mp.get_context(method)
        initializer, initargs = self._pool_initializer()
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=initializer,
            initargs=initargs,
        )

    def _ensure_pool(self) -> Executor:
        return self._workerpool.ensure()

    def _replace_pool(self) -> Executor:
        """Discard the (possibly broken) pool and spin up a fresh one.

        A crashed process worker poisons the whole ``ProcessPoolExecutor``
        — every pending future raises ``BrokenProcessPool`` — so recovery
        is a pool replacement, not a worker restart.
        """
        return self._workerpool.replace()

    def replace_engine(self, engine) -> None:
        """Hot-swap a rebuilt engine (the integrity repair path).

        A live pool is rebuilt so process workers re-initialize from the
        new engine's artifacts; a never-used pool stays lazy.  Callers
        serialize this against in-flight batches (the serve layer runs
        both on its single batch-executor thread).
        """
        self.engine = engine
        if self._workerpool.executor is not None:
            self._replace_pool()

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        Process pools are drained first: workers hold metric residue
        recorded since their last shipped delta (e.g. a final task whose
        result the parent already collected), and close is the last
        chance to merge it.
        """
        executor = self._workerpool.executor
        if executor is not None and self.executor_kind == "process":
            drain_pool(executor, get_registry(), self.workers)
        self._workerpool.close()

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _run_shard(self, index: int, levels: np.ndarray) -> np.ndarray:
        """One shard in a worker thread: timed span + packed scores."""
        with stage_timer("batch.shard"):
            annotate_span(shard=index, samples=len(levels))
            return self.engine.scores(levels)

    def scores(self, levels: np.ndarray) -> np.ndarray:
        """Soft-voting class scores (B, n_classes), order preserved."""
        levels = np.asarray(levels)
        n = levels.shape[0]
        spans = self._shards(n)
        registry = get_registry()
        with trace_span("batch.run"):
            annotate_span(
                batch=n,
                shards=len(spans),
                workers=self.workers,
                executor=self.executor_kind,
            )
            registry.gauge("batch.workers").set(self.workers)
            registry.counter("batch.samples").add(n)
            registry.counter("batch.shards").add(len(spans))
            if not spans:
                return self.engine.scores(levels)
            if len(spans) == 1 or (
                self.workers == 1 and self.executor_kind == "thread"
            ):
                parts = [
                    self._run_shard(i, levels[a:b]) for i, (a, b) in enumerate(spans)
                ]
                return np.concatenate(parts, axis=0)
            pool = self._ensure_pool()
            futures: list = []
            shared: SharedArray | None = None
            try:
                if self.executor_kind == "thread":
                    futures = [
                        pool.submit(self._run_shard, i, levels[a:b])
                        for i, (a, b) in enumerate(spans)
                    ]
                    parts = [f.result() for f in futures]
                else:
                    if self.use_shm:
                        # One copy into the segment; every shard ships a
                        # ~100-byte descriptor instead of its samples.
                        shared = self._share_batch(levels, registry)
                        descriptor = shared.descriptor()
                        futures = [
                            pool.submit(_process_worker_scores_shm, descriptor, a, b)
                            for a, b in spans
                        ]
                    else:
                        registry.counter("batch.bytes_pickled").add(levels.nbytes)
                        futures = [
                            pool.submit(_process_worker_scores, levels[a:b])
                            for a, b in spans
                        ]
                    parts = []
                    shard_hist = registry.histogram("batch.shard")
                    for future in futures:
                        scores, duration, delta = future.result()
                        shard_hist.observe(duration)
                        merge_delta(registry, delta)
                        parts.append(scores)
            except BaseException:
                # A shard failed while its siblings keep running (or sit
                # queued).  Cancel whatever has not started so the pool
                # drains now instead of grinding through doomed shards —
                # under serve load that idle time is the next batch's.
                for future in futures:
                    future.cancel()
                raise
            finally:
                if shared is not None:
                    # The segment's lifetime is exactly the batch's; a
                    # cancelled shard never ran, a failed one already
                    # returned — nobody reads it after this point.
                    shared.dispose()
            return np.concatenate(parts, axis=0)

    def predict(self, levels: np.ndarray) -> np.ndarray:
        """Predicted labels, order preserved."""
        return self.scores(levels).argmax(axis=1)

    def score(self, levels: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy over the sharded batch."""
        return float((self.predict(levels) == np.asarray(y)).mean())
