"""Parallel batch execution over the packed inference engine.

:class:`BatchRunner` shards a large batch of quantized level frames
across a worker pool and runs :class:`repro.core.BitPackedUniVSA` on
each shard, preserving input order in the assembled output.  Threads are
the default — the bit kernels are NumPy ufunc loops that release the GIL,
so shards genuinely overlap — with a process-pool option for workloads
that want memory isolation.

Process mode is zero-copy in **both** directions by default
(``shm=None`` → ``REPRO_SHM``, see :func:`repro.runtime.shm.resolve_shm`):

* the **request plane** materializes the batch's level array in one
  parent-owned segment per call (reused across same-shape batches via a
  :class:`~repro.runtime.shm.SegmentArena`); workers attach zero-copy
  views by name + span;
* the **result plane** is a parent-allocated ``(B, n_classes)`` segment
  workers *write* at their span offset — the return leg of the pipe
  carries ``(span, wall, telemetry_delta)`` instead of a pickled score
  array (``batch.bytes_pickled_return`` stays 0 in shm mode; the
  non-shm path counts every returned array there);
* the **operand plane** (``REPRO_OPERAND_PLANE``, default on) serializes
  the engine's resident read-only operands into one parent-owned segment
  at pool spin-up; worker initializers attach and reconstruct zero-copy
  views (:meth:`BitPackedUniVSA.from_operand_state`) instead of
  rebuilding the engine from pickled artifacts, and
  :meth:`BatchRunner.replace_engine` repairs become a re-publish plus a
  generation bump that workers detect per shard — no pool rebuild.

Segments are disposed (or arena-pooled) in a ``finally`` — their
lifetime is exactly the batch's — and ``batch.shm.{segments,
bytes_shared,reused,plane_bytes}`` / worker-side ``batch.shm.attach``
counters account for the handoff (vs ``batch.bytes_pickled`` /
``batch.bytes_pickled_return`` on the non-shm path).

Observability rides on the existing substrate:

* every shard runs under ``stage_timer("batch.shard")``, so with a
  tracer active each shard becomes a span tree rooted at ``batch.shard``
  with the usual ``packed.classify`` subtree below it (thread mode; a
  process worker's spans live in its own process, so process mode
  observes shard wall time from the parent instead);
* ``batch.samples`` / ``batch.shards`` counters and a ``batch.workers``
  gauge record what the pool actually did;
* a ``batch.run`` trace root around the whole call is annotated with
  batch size, shard count, and worker count.

``python -m repro bench-throughput`` builds on this runner to measure
samples/sec (see :mod:`repro.runtime.throughput`).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from time import perf_counter

import numpy as np

from repro.obs import annotate_span, get_registry, stage_timer, trace_span
from repro.obs.telemetry import (
    drain_pool,
    drain_worker_delta,
    install_worker_telemetry,
    merge_delta,
    worker_telemetry_installed,
)

from .shm import (
    OperandPlane,
    SegmentArena,
    SharedArray,
    attach_plane,
    attach_view,
    resolve_shm,
)

__all__ = ["BatchRunner", "WorkerPool", "resolve_operand_plane", "resolve_workers"]


def resolve_workers(workers: int | None = None) -> int:
    """Worker count: explicit > ``REPRO_WORKERS`` > ``os.cpu_count()``."""
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def resolve_operand_plane(executor_kind: str) -> bool:
    """Whether process workers bootstrap from a shared operand plane.

    ``REPRO_OPERAND_PLANE`` (default on) — only meaningful for process
    executors; threads share the parent's engine object already.
    """
    if executor_kind != "process":
        return False
    env = os.environ.get("REPRO_OPERAND_PLANE", "1").strip().lower()
    return env not in ("0", "false", "no", "off")


def _active_plan(engine):
    """The cached execution plan for *engine*, or None.

    Swallows every resolution error: a stale or malformed plan file
    must degrade to "no plan" rather than break runner construction.
    """
    if not (os.environ.get("REPRO_PLAN") or "").strip():
        return None
    from repro.runtime.plan import cached_plan_for

    try:
        return cached_plan_for(engine)
    except (OSError, ValueError, TypeError, KeyError):
        return None


# ---------------------------------------------------------------------------
# process-pool plumbing (module level so spawn contexts can pickle it)
# ---------------------------------------------------------------------------
_WORKER_ENGINE = None
_WORKER_PLANE_KEY: tuple | None = None


def _attach_plane_engine(plane_descriptor: tuple):
    """Reconstruct an engine over zero-copy views of an operand plane.

    Shared by this module's workers and the resilient runner's (each
    keeps its own module-global engine slot).  The counter is gated on
    the initializer telemetry flag so observability-off pools never
    touch a registry.
    """
    from repro.core.inference import BitPackedUniVSA

    arrays, meta = attach_plane(plane_descriptor)
    engine = BitPackedUniVSA.from_operand_state(arrays, meta)
    if worker_telemetry_installed():
        get_registry().counter("batch.shm.plane_attach").add(1)
    return engine


def _worker_attach_engine(plane_descriptor: tuple) -> None:
    """(Re)build the worker engine from an operand plane descriptor."""
    global _WORKER_ENGINE, _WORKER_PLANE_KEY
    _WORKER_ENGINE = _attach_plane_engine(plane_descriptor)
    _WORKER_PLANE_KEY = tuple(plane_descriptor)


def _ensure_worker_engine(plane_descriptor: tuple | None) -> None:
    """Detect a generation bump: re-attach when the descriptor changed."""
    if plane_descriptor is None:
        return
    if tuple(plane_descriptor) != _WORKER_PLANE_KEY:
        _worker_attach_engine(plane_descriptor)


def _process_worker_init(source, telemetry: bool = False) -> None:
    """Pool initializer.

    ``source`` is ``("plane", descriptor)`` — attach the parent-owned
    operand plane and reconstruct zero-copy views — or
    ``("artifacts", (artifacts, mode, conv_tile_mb))`` — the pickled
    fallback that rebuilds the engine from scratch.
    """
    global _WORKER_ENGINE, _WORKER_PLANE_KEY
    kind, payload = source
    if kind == "plane":
        _worker_attach_engine(payload)
    else:
        from repro.core.inference import BitPackedUniVSA

        artifacts, mode, conv_tile_mb = payload
        _WORKER_ENGINE = BitPackedUniVSA(
            artifacts, mode=mode, conv_tile_mb=conv_tile_mb
        )
        _WORKER_PLANE_KEY = None
    # Telemetry installs *after* engine construction so one-time init
    # work stays out of the harvested deltas — merged process-run totals
    # must match what a serial run records.
    install_worker_telemetry(telemetry)
    if worker_telemetry_installed():
        from repro.vsa.kernels import publish_kernel_metrics

        publish_kernel_metrics(get_registry())


def _process_worker_scores(levels: np.ndarray) -> tuple[np.ndarray, float, dict | None]:
    start = perf_counter()
    scores = _WORKER_ENGINE.scores(levels)
    return scores, perf_counter() - start, drain_worker_delta()


def _process_worker_scores_shm(
    descriptor: tuple,
    span_start: int,
    span_stop: int,
    out_descriptor: tuple | None = None,
    plane: tuple | None = None,
) -> tuple[object, float, dict | None]:
    """Shm variant: attach the parent's segment, score a zero-copy slice.

    With an ``out_descriptor`` the scores are written in place at the
    span offset of the parent's result plane and only the span itself is
    returned — nothing array-shaped crosses the pipe in either
    direction.  ``plane`` carries the operand-plane descriptor so a
    generation bump (``replace_engine`` repair) is detected per shard.

    Worker-side counters are gated on the initializer telemetry flag —
    with telemetry off this path, like the by-value one, must not touch
    any registry (the fork-inherited parent registry included).
    """
    start = perf_counter()
    _ensure_worker_engine(plane)
    levels = attach_view(descriptor, span_start, span_stop)
    if worker_telemetry_installed():
        get_registry().counter("batch.shm.attach").add(1)
    scores = _WORKER_ENGINE.scores(levels)
    if out_descriptor is not None:
        out = attach_view(out_descriptor, span_start, span_stop, writable=True)
        out[...] = scores
        payload: object = (span_start, span_stop)
    else:
        payload = scores
    return payload, perf_counter() - start, drain_worker_delta()


class WorkerPool:
    """Lazily-built executor with crash replacement.

    Wraps a zero-argument ``factory`` returning a fresh
    :class:`concurrent.futures.Executor`.  The executor is built on first
    :meth:`ensure`, discarded wholesale by :meth:`replace` (the recovery
    path after a crashed process worker poisons its pool — see
    :meth:`BatchRunner._replace_pool`), and torn down by :meth:`close`.
    Shared by :class:`BatchRunner` and the co-design search engine
    (:mod:`repro.search.engine`), so both layers get the same pool
    lifecycle and recovery semantics.

    All lifecycle transitions are serialized by an internal lock:
    pipelined serving runs several batches concurrently through one
    runner, and two collectors recovering from the same crashed pool
    must end up sharing one replacement instead of leaking an executor.
    """

    def __init__(self, factory) -> None:
        self._factory = factory
        self._executor: Executor | None = None
        self._lock = threading.Lock()

    @property
    def executor(self) -> Executor | None:
        """The live executor, or ``None`` before first use / after close."""
        return self._executor

    def ensure(self) -> Executor:
        """Build the executor on first use; return the live one after."""
        with self._lock:
            if self._executor is None:
                self._executor = self._factory()
            return self._executor

    def replace(self, stale: Executor | None = None) -> Executor:
        """Discard the (possibly broken) executor and build a fresh one.

        ``shutdown`` on a broken pool only reaps what is left; it never
        blocks on lost work, so replacement is safe mid-batch.  Passing
        the ``stale`` executor the caller saw break makes concurrent
        recoveries idempotent: if another thread already swapped it out,
        the live replacement is returned instead of being discarded too.
        """
        with self._lock:
            if (
                stale is not None
                and self._executor is not None
                and self._executor is not stale
            ):
                return self._executor
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
            self._executor = self._factory()
            return self._executor

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class BatchRunner:
    """Order-preserving sharded execution of packed inference.

    Parameters
    ----------
    engine:
        A :class:`repro.core.BitPackedUniVSA` (any mode).
    shard_size:
        Samples per shard; ``None`` splits the batch into about
        ``2 x workers`` shards (load balancing without tiny shards; a
        single worker gets a single shard — splitting work one process
        must run serially anyway only adds handoff overhead).
    workers:
        Pool size; ``None`` resolves via :func:`resolve_workers`.
    executor:
        ``"thread"`` (default) or ``"process"``.  Process mode bootstraps
        each worker once via the pool initializer — from the shared
        operand plane when enabled, else from pickled artifacts (with a
        fork start method the packed tables are then shared
        copy-on-write).
    mp_context:
        Optional ``multiprocessing`` context for process mode.
    shm:
        Zero-copy shard handoff through shared memory (process executors
        only).  ``None`` defers to ``REPRO_SHM`` (default on); thread
        executors ignore it entirely.
    """

    def __init__(
        self,
        engine,
        shard_size: int | None = None,
        workers: int | None = None,
        executor: str = "thread",
        mp_context=None,
        shm: bool | None = None,
    ) -> None:
        if executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; expected 'thread' or 'process'"
            )
        self.engine = engine
        # A calibrated plan (REPRO_PLAN) fills in only the knobs the
        # caller left unset — explicit arguments always win, so a plan
        # can never silently override a deliberate configuration.
        if shard_size is None and workers is None:
            plan = _active_plan(engine)
            if plan is not None and plan.executor == executor:
                workers = plan.workers
                shard_size = plan.shard_size
                if shm is None and executor == "process":
                    shm = plan.use_shm
        self.workers = resolve_workers(workers)
        self.shard_size = shard_size
        self.executor_kind = executor
        self.use_shm = resolve_shm(shm, executor)
        self.use_plane = resolve_operand_plane(executor)
        self._mp_context = mp_context
        self._workerpool = WorkerPool(self._make_pool)
        self._plane: OperandPlane | None = None
        self._plane_generation = 0
        self._arena = SegmentArena()

    @property
    def _pool(self) -> Executor | None:
        return self._workerpool.executor

    # ------------------------------------------------------------------
    def effective_shard_size(self, n: int) -> int:
        """The shard size a batch of ``n`` samples actually runs with.

        Explicit ``shard_size`` wins; otherwise the batch splits into
        about ``2 x workers`` shards.  The divisor is capped at ``n`` so
        a degenerate batch (``n < workers``) yields ``n`` single-sample
        shards instead of phantom empty ones.  A single-worker *thread*
        runner gets one shard — inline execution is equivalent and there
        is nobody to balance load against — but a single-worker process
        runner keeps the 2-shard split: collapsing it to one shard would
        take the inline shortcut and silently skip the pool, and with it
        the isolation and zero-copy handoff the caller asked for.
        """
        if n <= 0:
            return 0
        size = self.shard_size
        if size is None:
            one_shard = self.workers == 1 and self.executor_kind == "thread"
            target = 1 if one_shard else self.workers * 2
            size = -(-n // max(1, min(target, n)))
        return max(1, int(size))

    def _shards(self, n: int) -> list[tuple[int, int]]:
        """(start, stop) spans covering ``range(n)`` in order."""
        size = self.effective_shard_size(n)
        if size <= 0:
            return []
        return [(start, min(start + size, n)) for start in range(0, n, size)]

    def _share_batch(self, levels: np.ndarray, registry) -> SharedArray:
        """Materialize ``levels`` in a parent-owned shm segment (arena)."""
        shared = self._arena.acquire(levels)
        registry.counter("batch.shm.segments").add(1)
        registry.counter("batch.shm.bytes_shared").add(shared.nbytes)
        return shared

    def _share_output(self, n: int, registry) -> SharedArray:
        """The result plane: one ``(n, n_classes)`` segment per batch."""
        n_classes = self.engine.artifacts.n_classes
        out = self._arena.acquire_empty((n, n_classes), np.int64)
        registry.counter("batch.shm.segments").add(1)
        registry.counter("batch.shm.bytes_shared").add(out.nbytes)
        return out

    # ------------------------------------------------------------------
    # operand plane lifecycle (parent-owned, generation-tagged)
    # ------------------------------------------------------------------
    def _publish_plane(self) -> OperandPlane:
        """Publish the current engine's operands as a fresh plane."""
        arrays, meta = self.engine.operand_state()
        self._plane_generation += 1
        plane = OperandPlane(arrays, meta, generation=self._plane_generation)
        registry = get_registry()
        registry.counter("batch.shm.plane_published").add(1)
        registry.counter("batch.shm.plane_bytes").add(plane.nbytes)
        registry.gauge("batch.shm.plane_generation").set(self._plane_generation)
        return plane

    def _ensure_plane(self) -> OperandPlane | None:
        if not self.use_plane:
            return None
        if self._plane is None:
            try:
                self._plane = self._publish_plane()
            except Exception:
                # No shm plane on this platform — fall back to pickled
                # artifacts for the life of this runner.
                self.use_plane = False
                return None
        return self._plane

    def _plane_descriptor(self) -> tuple | None:
        return self._plane.descriptor() if self._plane is not None else None

    def _pool_initializer(self):
        """(initializer, initargs) for process pools; overridable seam.

        The trailing initarg is the telemetry switch: workers install a
        recording registry only when the parent registry is enabled at
        pool-build time, so observability-off runs keep the
        zero-overhead path end to end.  Re-evaluated whenever the pool
        is (re)built, including crash replacement.
        """
        plane = self._ensure_plane()
        if plane is not None:
            source = ("plane", plane.descriptor())
        else:
            source = (
                "artifacts",
                (self.engine.artifacts, self.engine.mode, self.engine.conv_tile_mb),
            )
        return _process_worker_init, (source, get_registry().enabled)

    def _make_pool(self) -> Executor:
        """Build a fresh worker pool (also the rebuild path after a crash)."""
        if self.executor_kind == "thread":
            return ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-batch"
            )
        import multiprocessing as mp

        context = self._mp_context
        if context is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else None
            context = mp.get_context(method)
        initializer, initargs = self._pool_initializer()
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=initializer,
            initargs=initargs,
        )

    def _ensure_pool(self) -> Executor:
        return self._workerpool.ensure()

    def _replace_pool(self, stale: Executor | None = None) -> Executor:
        """Discard the (possibly broken) pool and spin up a fresh one.

        A crashed process worker poisons the whole ``ProcessPoolExecutor``
        — every pending future raises ``BrokenProcessPool`` — so recovery
        is a pool replacement, not a worker restart.  ``stale`` makes
        concurrent recoveries idempotent (see :meth:`WorkerPool.replace`).
        """
        return self._workerpool.replace(stale)

    def replace_engine(self, engine) -> None:
        """Hot-swap a rebuilt engine (the integrity repair path).

        With a live operand plane the swap is a re-publish plus a
        generation bump: workers see the new descriptor on their next
        shard and re-attach — no pool rebuild, no worker restart.
        Without a plane, a live process pool is rebuilt so workers
        re-initialize from the new engine's artifacts; a never-used pool
        stays lazy.  Callers serialize this against in-flight batches
        (the serve layer drains its pipeline to a barrier first).
        """
        self.engine = engine
        if self._plane is not None:
            old, self._plane = self._plane, None
            self._plane = self._publish_plane()
            old.dispose()
            if self.use_shm:
                # Shm shards carry the plane descriptor, so live workers
                # notice the generation bump on their next task.
                return
            # By-value shards carry no descriptor — rebuild the pool so
            # worker initializers attach the republished plane.
        if self._workerpool.executor is not None:
            self._replace_pool()

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        Process pools are drained first: workers hold metric residue
        recorded since their last shipped delta (e.g. a final task whose
        result the parent already collected), and close is the last
        chance to merge it.  Parent-owned segments (operand plane, arena
        pool) are disposed here — nothing may outlive the runner.
        """
        executor = self._workerpool.executor
        if executor is not None and self.executor_kind == "process":
            drain_pool(executor, get_registry(), self.workers)
        self._workerpool.close()
        if self._plane is not None:
            self._plane.dispose()
            self._plane = None
        self._arena.drain()

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _run_shard(self, index: int, levels: np.ndarray) -> np.ndarray:
        """One shard in a worker thread: timed span + packed scores."""
        with stage_timer("batch.shard"):
            annotate_span(shard=index, samples=len(levels))
            return self.engine.scores(levels)

    def scores(self, levels: np.ndarray) -> np.ndarray:
        """Soft-voting class scores (B, n_classes), order preserved."""
        levels = np.asarray(levels)
        n = levels.shape[0]
        spans = self._shards(n)
        registry = get_registry()
        with trace_span("batch.run"):
            annotate_span(
                batch=n,
                shards=len(spans),
                workers=self.workers,
                executor=self.executor_kind,
            )
            registry.gauge("batch.workers").set(self.workers)
            registry.counter("batch.samples").add(n)
            registry.counter("batch.shards").add(len(spans))
            if not spans:
                return self.engine.scores(levels)
            if len(spans) == 1 or (
                self.workers == 1 and self.executor_kind == "thread"
            ):
                parts = [
                    self._run_shard(i, levels[a:b]) for i, (a, b) in enumerate(spans)
                ]
                return np.concatenate(parts, axis=0)
            pool = self._ensure_pool()
            futures: list = []
            shared: SharedArray | None = None
            out_shared: SharedArray | None = None
            try:
                if self.executor_kind == "thread":
                    futures = [
                        pool.submit(self._run_shard, i, levels[a:b])
                        for i, (a, b) in enumerate(spans)
                    ]
                    parts = [f.result() for f in futures]
                    result = np.concatenate(parts, axis=0)
                else:
                    plane = self._plane_descriptor()
                    if self.use_shm:
                        # One copy into the request segment; every shard
                        # ships a ~100-byte descriptor instead of its
                        # samples, and writes its scores into the result
                        # plane at its span offset.
                        shared = self._share_batch(levels, registry)
                        out_shared = self._share_output(n, registry)
                        descriptor = shared.descriptor()
                        out_descriptor = out_shared.descriptor()
                        futures = [
                            pool.submit(
                                _process_worker_scores_shm,
                                descriptor,
                                a,
                                b,
                                out_descriptor,
                                plane,
                            )
                            for a, b in spans
                        ]
                        # The zero-copy contract, measured not asserted.
                        registry.counter("batch.bytes_pickled_return").add(0)
                    else:
                        registry.counter("batch.bytes_pickled").add(levels.nbytes)
                        futures = [
                            pool.submit(_process_worker_scores, levels[a:b])
                            for a, b in spans
                        ]
                    shard_hist = registry.histogram("batch.shard")
                    out_view = (
                        out_shared.view() if out_shared is not None else None
                    )
                    parts = []
                    for future in futures:
                        payload, duration, delta = future.result()
                        shard_hist.observe(duration)
                        merge_delta(registry, delta)
                        if out_view is not None:
                            a, b = payload
                            parts.append(out_view[a:b])
                        else:
                            registry.counter("batch.bytes_pickled_return").add(
                                payload.nbytes
                            )
                            parts.append(payload)
                    # Concatenate (copies) before the segments go back to
                    # the arena — parts may alias the result plane.
                    result = np.concatenate(parts, axis=0)
            except BaseException:
                # A shard failed while its siblings keep running (or sit
                # queued).  Cancel whatever has not started so the pool
                # drains now instead of grinding through doomed shards —
                # under serve load that idle time is the next batch's.
                for future in futures:
                    future.cancel()
                # Destroy the segments instead of pooling them: a dying
                # pool's sibling worker may still be mid-write, and the
                # arena must never reissue a name a zombie could touch.
                self._arena.discard(shared)
                self._arena.discard(out_shared)
                raise
            finally:
                # Segment lifetime is exactly the batch's; hand both
                # planes back to the arena for the next same-shape batch
                # (no-op for segments the except path already destroyed).
                self._arena.release(shared)
                self._arena.release(out_shared)
            return result

    def predict(self, levels: np.ndarray) -> np.ndarray:
        """Predicted labels, order preserved."""
        return self.scores(levels).argmax(axis=1)

    def score(self, levels: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy over the sharded batch."""
        return float((self.predict(levels) == np.asarray(y)).mean())
