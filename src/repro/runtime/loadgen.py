"""Open-loop load generation for the micro-batching serve front end.

``repro serve-bench`` is the "millions of users" measurement: an
open-loop generator (arrivals fire on a clock, never gated on previous
completions — the methodology that exposes coordinated omission) drives
a :class:`~repro.runtime.serve.MicroBatchServer` with Poisson or bursty
(on/off-modulated Poisson) arrival traces at configurable offered load
and client count, and reports the latency/goodput curve: p50 / p99 /
p99.9 request latency and goodput (ok-answers per second) per offered
load, against a sequential one-sample-per-call inline baseline measured
on the same engine.  Every ``ok`` answer is verified bit-identical to
inline inference on the same sample, so a goodput number from a wrong
answer cannot be reported.  The CLI appends a ``task="serve"`` ledger
record that ``repro obs compare`` gates against a committed baseline.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.obs import MetricsRegistry, using_registry
from repro.vsa.kernels import kernel_info

from .chaos import ChaosSpec
from .resilience import ResilientBatchRunner, RetryPolicy
from .serve import MicroBatchServer, ServePolicy

__all__ = [
    "poisson_arrivals",
    "bursty_arrivals",
    "client_arrivals",
    "run_open_loop",
    "LoadPoint",
    "ServeBenchReport",
    "bench_serve",
]


# ---------------------------------------------------------------------------
# arrival traces
# ---------------------------------------------------------------------------
def poisson_arrivals(rate_hz: float, duration_s: float, seed=0) -> np.ndarray:
    """Sorted arrival times of a Poisson process over ``[0, duration_s)``."""
    if rate_hz <= 0.0 or duration_s <= 0.0:
        return np.zeros(0, dtype=float)
    rng = np.random.default_rng(seed)
    block = max(16, int(rate_hz * duration_s * 1.2) + 1)
    chunks: list[np.ndarray] = []
    t = 0.0
    while t < duration_s:
        gaps = rng.exponential(1.0 / rate_hz, size=block)
        times = t + np.cumsum(gaps)
        chunks.append(times)
        t = float(times[-1])
    arrivals = np.concatenate(chunks)
    return arrivals[arrivals < duration_s]


def bursty_arrivals(
    rate_hz: float,
    duration_s: float,
    burst_factor: float = 8.0,
    burst_fraction: float = 0.15,
    cycle_s: float = 0.25,
    seed=0,
) -> np.ndarray:
    """On/off-modulated Poisson arrivals (a Markov-modulated process).

    Quiet and burst phases alternate with exponential lengths (a full
    quiet+burst cycle averages ``cycle_s``); bursts run at
    ``burst_factor`` times the quiet rate and cover ``burst_fraction`` of
    the time, with the quiet rate scaled so the long-run mean stays
    ``rate_hz``.  This is the trace that stresses queue depth and
    deadline flushes in a way a plain Poisson stream cannot.
    """
    if rate_hz <= 0.0 or duration_s <= 0.0:
        return np.zeros(0, dtype=float)
    if burst_factor < 1.0:
        raise ValueError("burst_factor must be >= 1")
    if not 0.0 < burst_fraction < 1.0:
        raise ValueError("burst_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    quiet_rate = rate_hz / (1.0 - burst_fraction + burst_fraction * burst_factor)
    burst_rate = quiet_rate * burst_factor
    out: list[float] = []
    t = 0.0
    in_burst = False
    while t < duration_s:
        mean_len = cycle_s * (burst_fraction if in_burst else 1.0 - burst_fraction)
        end = min(t + rng.exponential(mean_len), duration_s)
        rate = burst_rate if in_burst else quiet_rate
        tick = t
        while True:
            tick += rng.exponential(1.0 / rate)
            if tick >= end:
                break
            out.append(tick)
        t = end
        in_burst = not in_burst
    return np.asarray(out, dtype=float)


def client_arrivals(
    rate_hz: float,
    duration_s: float,
    clients: int = 1,
    trace: str = "poisson",
    seed=0,
    **trace_kwargs,
) -> np.ndarray:
    """Merge ``clients`` independent arrival streams totalling ``rate_hz``.

    Each client contributes an independent ``trace`` stream at
    ``rate_hz / clients`` with its own derived seed; the merged timeline
    is what the server sees.
    """
    clients = max(1, int(clients))
    makers = {"poisson": poisson_arrivals, "bursty": bursty_arrivals}
    if trace not in makers:
        raise ValueError(f"unknown trace {trace!r}; expected one of {sorted(makers)}")
    streams = [
        makers[trace](rate_hz / clients, duration_s, seed=(seed, c), **trace_kwargs)
        for c in range(clients)
    ]
    return np.sort(np.concatenate(streams)) if streams else np.zeros(0)


# ---------------------------------------------------------------------------
# the open loop
# ---------------------------------------------------------------------------
async def run_open_loop(
    server: MicroBatchServer, samples: np.ndarray, arrivals: np.ndarray
):
    """Fire ``samples[k % len(samples)]`` at each arrival time; returns
    ``(responses, wall_s)`` with responses in arrival order.

    Open loop: the schedule never waits on completions, so queueing
    delay shows up as measured latency instead of silently throttling
    the offered load (coordinated omission).  Arrivals the clock has
    already passed are fired immediately (catch-up).
    """
    loop = asyncio.get_running_loop()
    n_bank = len(samples)
    start = loop.time()
    tasks = []
    for k, at in enumerate(np.asarray(arrivals, dtype=float)):
        delay = start + float(at) - loop.time()
        if delay > 0.0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.create_task(server.submit(samples[k % n_bank])))
    responses = list(await asyncio.gather(*tasks)) if tasks else []
    return responses, loop.time() - start


# ---------------------------------------------------------------------------
# reports
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LoadPoint:
    """One offered-load point of the latency/goodput curve."""

    label: str
    offered_per_s: float
    duration_s: float
    wall_s: float
    sent: int
    accepted: int
    rejected: int
    answered: int  # status == "ok"
    quarantined: int
    failed: int
    goodput_per_s: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    max_ms: float
    mean_batch: float
    mismatches: int
    accuracy: float

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "offered_per_s": self.offered_per_s,
            "duration_s": self.duration_s,
            "wall_s": self.wall_s,
            "sent": self.sent,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "answered": self.answered,
            "quarantined": self.quarantined,
            "failed": self.failed,
            "goodput_per_s": self.goodput_per_s,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "max_ms": self.max_ms,
            "mean_batch": self.mean_batch,
            "mismatches": self.mismatches,
            "accuracy": self.accuracy,
        }


def summarize_point(
    label: str,
    offered_per_s: float,
    duration_s: float,
    responses,
    wall_s: float,
    reference_labels: np.ndarray,
    true_labels: np.ndarray,
) -> LoadPoint:
    """Fold one run's responses (arrival order) into a :class:`LoadPoint`."""
    n_bank = len(reference_labels)
    statuses = [r.status for r in responses]
    ok = [r for r in responses if r.status == "ok"]
    latencies = np.array([r.latency_s for r in ok], dtype=float) * 1e3

    def pct(q: float) -> float:
        return float(np.percentile(latencies, q)) if latencies.size else 0.0

    mismatches = sum(
        1
        for k, r in enumerate(responses)
        if r.status == "ok" and r.label != int(reference_labels[k % n_bank])
    )
    correct = [
        r.label == int(true_labels[k % n_bank])
        for k, r in enumerate(responses)
        if r.status == "ok"
    ]
    wall = max(wall_s, 1e-9)
    return LoadPoint(
        label=label,
        offered_per_s=offered_per_s,
        duration_s=duration_s,
        wall_s=wall_s,
        sent=len(responses),
        accepted=sum(1 for s in statuses if s != "rejected"),
        rejected=statuses.count("rejected"),
        answered=len(ok),
        quarantined=statuses.count("quarantined"),
        failed=statuses.count("failed"),
        goodput_per_s=len(ok) / wall,
        p50_ms=pct(50),
        p99_ms=pct(99),
        p999_ms=pct(99.9),
        max_ms=float(latencies.max()) if latencies.size else 0.0,
        mean_batch=float(np.mean([r.batch_size for r in ok])) if ok else 0.0,
        mismatches=mismatches,
        accuracy=float(np.mean(correct)) if correct else 0.0,
    )


@dataclass
class ServeBenchReport:
    """Everything one serve-bench sweep measured."""

    benchmark: str
    trace: str
    clients: int
    duration_s: float
    policy: ServePolicy
    workers: int
    shard_size: int | None
    executor: str
    inline_per_s: float
    inline_p50_ms: float
    inline_p99_ms: float
    unbatched_per_s: float
    points: list[LoadPoint]
    kernels: dict
    config: object = None
    registry: MetricsRegistry | None = field(default=None, repr=False)
    chaos: dict = field(default_factory=dict)

    @property
    def best(self) -> LoadPoint | None:
        """The point with the highest goodput."""
        return max(self.points, key=lambda p: p.goodput_per_s, default=None)

    @property
    def goodput_vs_inline(self) -> float:
        """Best goodput over the raw one-sample-per-call engine rate."""
        best = self.best
        if best is None or self.inline_per_s <= 0.0:
            return 0.0
        return best.goodput_per_s / self.inline_per_s

    @property
    def goodput_vs_unbatched(self) -> float:
        """Best goodput over the no-batching server (``max_batch=1``
        through the identical submission/executor/runner machinery) — the
        controlled comparison where micro-batching is the only variable."""
        best = self.best
        if best is None or self.unbatched_per_s <= 0.0:
            return 0.0
        return best.goodput_per_s / self.unbatched_per_s

    @property
    def mismatches(self) -> int:
        return sum(p.mismatches for p in self.points)

    def ledger_metrics(self) -> dict[str, float]:
        """The flat metric dict one ``task="serve"`` ledger record carries."""
        best = self.best
        metrics: dict[str, float] = {
            "inline_per_s": self.inline_per_s,
            "unbatched_per_s": self.unbatched_per_s,
            "inline_p99_ms": self.inline_p99_ms,
            "deadline_ms": self.policy.deadline_ms,
            "max_batch": float(self.policy.max_batch),
            "clients": float(self.clients),
            "workers": float(self.workers),
            "serve_mismatches": float(self.mismatches),
        }
        if best is not None:
            metrics.update(
                serve_goodput_per_s=best.goodput_per_s,
                goodput_vs_inline=self.goodput_vs_inline,
                goodput_vs_unbatched=self.goodput_vs_unbatched,
                serve_p50_ms=best.p50_ms,
                serve_p99_ms=best.p99_ms,
                serve_p999_ms=best.p999_ms,
                accuracy=best.accuracy,
            )
        for point in self.points:
            suffix = point.label
            metrics[f"goodput_per_s_{suffix}"] = point.goodput_per_s
            metrics[f"p99_ms_{suffix}"] = point.p99_ms
            metrics[f"rejected_{suffix}"] = float(point.rejected)
        return metrics

    def as_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "trace": self.trace,
            "clients": self.clients,
            "duration_s": self.duration_s,
            "policy": {
                "max_batch": self.policy.max_batch,
                "deadline_ms": self.policy.deadline_ms,
                "flush_margin_ms": self.policy.flush_margin_ms,
                "max_queue": self.policy.max_queue,
            },
            "workers": self.workers,
            "shard_size": self.shard_size,
            "executor": self.executor,
            "inline_per_s": self.inline_per_s,
            "inline_p50_ms": self.inline_p50_ms,
            "inline_p99_ms": self.inline_p99_ms,
            "unbatched_per_s": self.unbatched_per_s,
            "goodput_vs_inline": self.goodput_vs_inline,
            "goodput_vs_unbatched": self.goodput_vs_unbatched,
            "mismatches": self.mismatches,
            "kernels": self.kernels,
            "chaos": self.chaos,
            "points": [p.as_dict() for p in self.points],
        }

    def render(self) -> str:
        from repro.utils.tables import render_kv, render_table

        fields = {
            "benchmark": self.benchmark,
            "trace / clients": f"{self.trace} / {self.clients}",
            "policy": (
                f"batch<={self.policy.max_batch}, "
                f"deadline {self.policy.deadline_ms:g} ms, "
                f"queue<={self.policy.max_queue}"
            ),
            "runner": f"{self.workers} workers ({self.executor})",
            "inline single-sample": (
                f"{self.inline_per_s:.1f}/s "
                f"(p50 {self.inline_p50_ms:.2f} ms, p99 {self.inline_p99_ms:.2f} ms)"
            ),
            "unbatched server": f"{self.unbatched_per_s:.1f}/s (max_batch=1)",
            "best goodput": (
                f"{self.best.goodput_per_s:.1f}/s "
                f"({self.goodput_vs_inline:.1f}x inline, "
                f"{self.goodput_vs_unbatched:.1f}x unbatched server)"
                if self.best
                else "n/a"
            ),
            "mismatches vs inline": self.mismatches,
        }
        if self.chaos:
            fields["chaos"] = ", ".join(f"{k}={v}" for k, v in self.chaos.items() if v)
        rows = [
            [
                p.label,
                f"{p.offered_per_s:.0f}/s",
                p.sent,
                p.rejected,
                f"{p.goodput_per_s:.1f}/s",
                f"{p.p50_ms:.1f}",
                f"{p.p99_ms:.1f}",
                f"{p.p999_ms:.1f}",
                f"{p.mean_batch:.1f}",
            ]
            for p in self.points
        ]
        table = render_table(
            [
                "point",
                "offered",
                "sent",
                "shed",
                "goodput",
                "p50 ms",
                "p99 ms",
                "p99.9 ms",
                "batch",
            ],
            rows,
            title="latency / goodput vs offered load",
        )
        header = render_kv(fields, title="serve bench — micro-batched online serving")
        return header + "\n\n" + table


# ---------------------------------------------------------------------------
# the bench
# ---------------------------------------------------------------------------
def _measure_inline(engine, bank: np.ndarray, budget_s: float = 0.4, min_calls: int = 32):
    """Sequential one-sample-per-call baseline: (per_s, p50_ms, p99_ms)."""
    walls: list[float] = []
    started = perf_counter()
    i = 0
    while (len(walls) < min_calls or perf_counter() - started < budget_s) and len(
        walls
    ) < 2048:
        t = perf_counter()
        engine.scores(bank[i % len(bank)][None])
        walls.append(perf_counter() - t)
        i += 1
    arr = np.asarray(walls)
    return (
        float(len(arr) / arr.sum()),
        float(np.percentile(arr, 50) * 1e3),
        float(np.percentile(arr, 99) * 1e3),
    )


async def _measure_unbatched(runner, bank: np.ndarray, budget_s: float = 0.5) -> float:
    """Sustainable rate of a *no-batching* server: ``max_batch=1`` through
    the identical submission/executor/runner machinery, closed-loop.

    This is the controlled baseline — the only variable between it and
    the measured serve points is micro-batching itself.
    """
    async with MicroBatchServer(
        runner, ServePolicy(max_batch=1, deadline_ms=1000.0, flush_margin_ms=0.0)
    ) as server:
        loop = asyncio.get_running_loop()
        start = loop.time()
        count = 0
        while loop.time() - start < budget_s:
            await server.submit(bank[count % len(bank)])
            count += 1
        return count / (loop.time() - start)


def bench_serve(
    benchmark: str,
    rates: tuple[float, ...] = (1.0, 2.0, 4.0),
    absolute_rates: tuple[float, ...] | None = None,
    duration_s: float = 1.5,
    trace: str = "poisson",
    clients: int = 8,
    policy: ServePolicy | None = None,
    workers: int | None = None,
    shard_size: int | None = None,
    executor: str = "thread",
    config=None,
    n_train: int = 120,
    n_test: int = 60,
    epochs: int = 2,
    seed: int = 0,
) -> ServeBenchReport:
    """Train a small model and sweep offered load against the serve path.

    ``rates`` are multiples of the measured inline single-sample
    throughput (the load axis that transfers across machines);
    ``absolute_rates`` (requests/s) overrides them.  ``config`` overrides
    the benchmark's paper configuration — micro-batching pays the most in
    the paper's resource-stringent regime (small models whose per-call
    overhead dominates compute), so the committed baseline pins a small
    design point.  Each point drives an independent
    :class:`MicroBatchServer` over one shared resilient runner, so
    ``REPRO_CHAOS`` turns the bench into an end-to-end chaos test of the
    serve path.
    """
    from repro.core.inference import BitPackedUniVSA
    from repro.core.pipeline import run_benchmark
    from repro.data.registry import get_benchmark
    from repro.utils.trainloop import TrainConfig

    spec = get_benchmark(benchmark)
    run = run_benchmark(
        benchmark,
        config=config,
        train_config=TrainConfig(
            epochs=epochs,
            lr=0.008,
            seed=seed,
            balance_classes=spec.spec.class_balance is not None,
        ),
        n_train=n_train,
        n_test=n_test,
        seed=seed,
    )
    bank = run.data.x_test
    true_labels = np.asarray(run.data.y_test)
    engine = BitPackedUniVSA(run.artifacts, mode="fast")
    policy = policy if policy is not None else ServePolicy()
    chaos = ChaosSpec.from_env()

    # Inline baseline + bit-exact reference labels, measured outside the
    # serve registry so serving stage breakdowns stay pure.
    with using_registry(MetricsRegistry()):
        inline_per_s, inline_p50_ms, inline_p99_ms = _measure_inline(engine, bank)
        reference_labels = engine.scores(bank).argmax(axis=1)

    if absolute_rates:
        offered = [(f"r{rate:g}", float(rate)) for rate in absolute_rates]
    else:
        offered = [(f"x{mult:g}", float(mult) * inline_per_s) for mult in rates]

    # One SLO tracker shared across every load point, so the slo.* gauges
    # the ledger harvests (and the budget burn `repro obs compare` gates
    # on) account for the whole sweep, not just the last point.
    from repro.obs.slo import SLOTracker

    slo_tracker = SLOTracker()
    registry = MetricsRegistry()
    points: list[LoadPoint] = []
    with using_registry(registry):
        with ResilientBatchRunner(
            engine,
            shard_size=shard_size,
            workers=workers,
            executor=executor,
            policy=RetryPolicy.from_env(),
            chaos=chaos,
        ) as runner:

            unbatched_box: list[float] = []

            async def sweep() -> None:
                # The no-batching control runs under a throwaway registry
                # so the harvested serve.* counters reflect only the
                # measured load points.
                with using_registry(MetricsRegistry()):
                    unbatched_box.append(await _measure_unbatched(runner, bank))
                for label, rate in offered:
                    arrivals = client_arrivals(
                        rate, duration_s, clients=clients, trace=trace, seed=seed
                    )
                    async with MicroBatchServer(
                        runner, policy, slo=slo_tracker
                    ) as server:
                        responses, wall = await run_open_loop(server, bank, arrivals)
                    points.append(
                        summarize_point(
                            label,
                            rate,
                            duration_s,
                            responses,
                            wall,
                            reference_labels,
                            true_labels,
                        )
                    )

            asyncio.run(sweep())
            slo_tracker.publish(registry)
            actual_workers = runner.workers

    return ServeBenchReport(
        benchmark=benchmark,
        trace=trace,
        clients=clients,
        duration_s=duration_s,
        policy=policy,
        workers=actual_workers,
        shard_size=shard_size,
        executor=executor,
        inline_per_s=inline_per_s,
        inline_p50_ms=inline_p50_ms,
        inline_p99_ms=inline_p99_ms,
        unbatched_per_s=unbatched_box[0] if unbatched_box else 0.0,
        points=points,
        kernels=kernel_info(),
        config=run.config,
        registry=registry,
        chaos=chaos.as_dict() if chaos.enabled else {},
    )
