"""Self-calibrating execution planner for the packed datapath.

The runtime has four orthogonal knobs — conv tile budget, executor kind,
shard size, and serve pipeline depth — and the right settings depend on
the machine (cache sizes, core count, fork cost) as much as on the
model.  Instead of shipping guesses, :func:`calibrate` runs a short
measured sweep on the live engine and persists the winning
:class:`ExecutionPlan` to a JSON plan cache keyed by *(config hash,
kernel set, cpu count)* — the same identity triple a ledger record pins
a measurement to, so a plan is only ever reused on the machine/kernel
combination that produced it.

Consumers opt in through ``REPRO_PLAN``:

* unset / ``off`` / ``0`` — planner disabled, explicit knobs only;
* ``auto`` — use the cached plan for this (config, kernels, cpu) key if
  one exists; ``repro plan run`` or ``bench-throughput`` populate it;
* ``<path>`` — load a specific plan JSON (either a single plan object
  or a full plan-cache mapping).

Plans never *override* explicit knobs: :meth:`ExecutionPlan.runner_kwargs`
is applied by ``BatchRunner`` / ``ResilientBatchRunner`` only to
arguments the caller left at ``None``, and ``MicroBatchServer`` only
consults ``max_inflight`` when the policy still carries the default.
Calibration asserts bit-exactness of every candidate against the inline
engine before it is allowed to win — a faster-but-wrong configuration
is a bug, not a plan.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.obs import config_hash as _config_hash
from repro.obs import get_registry

__all__ = [
    "DEFAULT_PLAN_CACHE",
    "ExecutionPlan",
    "calibrate",
    "clear_plan_cache",
    "load_plan_cache",
    "plan_key",
    "resolve_plan",
    "store_plan",
]

#: Default on-disk plan cache, next to the run ledger it is keyed like.
DEFAULT_PLAN_CACHE = Path("benchmarks/results/plan_cache.json")

#: Tile budgets (MB) probed on the fused engine — cache-sized, the
#: fused default, and a working-set-sized budget.
_TILE_CANDIDATES_MB = (0.5, 2.0, 8.0)

#: Values of ``REPRO_PLAN`` that disable the planner.
_OFF_VALUES = frozenset({"", "off", "0", "no", "false", "none"})


def plan_key(cfg_hash: str, kernel_set: str, cpu_count: int) -> str:
    """Cache key for a plan: sha256 of (config hash, kernels, cpus)."""
    canonical = json.dumps(
        {"config": cfg_hash, "kernels": kernel_set, "cpus": int(cpu_count)},
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


@dataclasses.dataclass(frozen=True)
class ExecutionPlan:
    """One calibrated knob assignment plus the provenance that keys it.

    ``executor`` is ``"inline"`` (no pool — the fused engine on the
    calling thread), ``"thread"``, or ``"process"``; for ``inline`` the
    pool knobs are inert but still recorded so the plan is a complete
    description of the winning configuration.
    """

    executor: str
    workers: int
    shard_size: int | None
    conv_tile_mb: float
    max_inflight: int
    use_shm: bool
    samples_per_s: float
    # --- provenance (cache identity + audit trail) ---
    key: str
    config_hash: str
    kernel_set: str
    cpu_count: int
    calibration_batch: int
    measurements: tuple = ()

    def as_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["measurements"] = [list(m) for m in self.measurements]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ExecutionPlan":
        fields = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in payload.items() if k in fields}
        kwargs["measurements"] = tuple(
            (str(label), float(value))
            for label, value in kwargs.get("measurements", ())
        )
        return cls(**kwargs)

    def runner_kwargs(self) -> dict:
        """Pool knobs for ``BatchRunner``-family constructors.

        Only meaningful when the plan picked a pooled executor; an
        ``inline`` plan maps to the thread executor with one worker,
        which the runners collapse to a no-pool inline shard anyway.
        """
        if self.executor == "inline":
            return {"executor": "thread", "workers": 1, "shard_size": None}
        return {
            "executor": self.executor,
            "workers": self.workers,
            "shard_size": self.shard_size,
            "shm": self.use_shm if self.executor == "process" else None,
        }

    def ledger_metrics(self) -> dict:
        """Flat ``plan.*`` metrics for a ledger record."""
        metrics = {
            "plan.samples_per_s": self.samples_per_s,
            "plan.conv_tile_mb": self.conv_tile_mb,
            "plan.max_inflight": float(self.max_inflight),
            "plan.workers": float(self.workers),
            "plan.use_shm": float(self.use_shm),
            "plan.cpu_count": float(self.cpu_count),
        }
        for label, value in self.measurements:
            metrics[f"plan.sweep.{label}"] = value
        return metrics


# --------------------------------------------------------------------------
# plan cache


def load_plan_cache(path=None) -> dict:
    """The raw cache mapping (key -> plan dict); {} when absent/corrupt."""
    cache_path = Path(path or DEFAULT_PLAN_CACHE)
    try:
        with open(cache_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return {}
    return payload if isinstance(payload, dict) else {}


def store_plan(plan: ExecutionPlan, path=None) -> Path:
    """Insert/overwrite one plan in the cache file; returns the path."""
    cache_path = Path(path or DEFAULT_PLAN_CACHE)
    cache = load_plan_cache(cache_path)
    cache[plan.key] = plan.as_dict()
    cache_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = cache_path.with_suffix(".json.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(cache, handle, indent=2, sort_keys=True)
        handle.write("\n")
    tmp.replace(cache_path)
    return cache_path


def clear_plan_cache(path=None) -> int:
    """Delete the cache file; returns how many plans it held."""
    cache_path = Path(path or DEFAULT_PLAN_CACHE)
    count = len(load_plan_cache(cache_path))
    try:
        cache_path.unlink()
    except FileNotFoundError:
        pass
    return count


def _engine_key(engine, cpu_count: int | None = None) -> str:
    from repro.vsa.kernels import get_kernels

    cpus = int(cpu_count if cpu_count is not None else (os.cpu_count() or 1))
    return plan_key(
        _config_hash(engine.artifacts.config), get_kernels().name, cpus
    )


def cached_plan_for(engine, environ=None, cache_path=None):
    """The active plan for *engine*, or None.

    This is the cheap runtime-consumption entry point: it never
    calibrates.  ``REPRO_PLAN=auto`` resolves against the on-disk cache
    (miss -> None); a path loads that file directly.  Runners call this
    on construction, so it must stay I/O-light and side-effect free.
    """
    env = os.environ if environ is None else environ
    raw = (env.get("REPRO_PLAN") or "").strip()
    if raw.lower() in _OFF_VALUES:
        return None
    if raw.lower() == "auto":
        entry = load_plan_cache(cache_path).get(_engine_key(engine))
        return ExecutionPlan.from_dict(entry) if entry else None
    return _load_plan_file(raw, engine)


def _load_plan_file(path: str, engine=None):
    """A plan from an explicit JSON file (plan object or cache mapping)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"REPRO_PLAN file {path!r} is not a JSON object")
    if "executor" in payload:  # a single serialized plan
        return ExecutionPlan.from_dict(payload)
    # a full cache mapping: prefer this engine's key, else a sole entry
    if engine is not None:
        entry = payload.get(_engine_key(engine))
        if entry:
            return ExecutionPlan.from_dict(entry)
    if len(payload) == 1:
        return ExecutionPlan.from_dict(next(iter(payload.values())))
    raise ValueError(
        f"REPRO_PLAN cache {path!r} has no plan for this "
        "(config, kernels, cpus) key"
    )


def resolve_plan(engine, batch: int = 256, environ=None, cache_path=None):
    """Plan resolution with calibration: the bench/CLI entry point.

    Unlike :func:`cached_plan_for`, ``auto`` with a cache miss runs
    :func:`calibrate` and persists the result, so the first planned
    bench on a machine pays the sweep and every later run reuses it.
    Returns None when the planner is off.
    """
    env = os.environ if environ is None else environ
    raw = (env.get("REPRO_PLAN") or "").strip()
    if raw.lower() in _OFF_VALUES:
        return None
    if raw.lower() != "auto":
        return _load_plan_file(raw, engine)
    entry = load_plan_cache(cache_path).get(_engine_key(engine))
    if entry:
        return ExecutionPlan.from_dict(entry)
    plan = calibrate(engine, batch=batch)
    store_plan(plan, cache_path)
    return plan


# --------------------------------------------------------------------------
# calibration sweep


def _time_scores(fn, levels, repeats: int, expected) -> float:
    """Best-of-N samples/s of ``fn(levels)``; asserts bit-exactness."""
    scores = fn(levels)  # warmup + correctness in one shot
    np.testing.assert_array_equal(scores, expected)
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = perf_counter()
        fn(levels)
        best = min(best, perf_counter() - start)
    return len(levels) / best if best > 0 else float("inf")


def calibrate(
    engine,
    batch: int = 256,
    repeats: int = 2,
    cpu_count: int | None = None,
    seed: int = 0,
):
    """Measure the knob sweep on *engine*'s model and pick a winner.

    The sweep is deliberately small — at most ~8 timed configurations:

    1. conv tile budget on the fused single-thread engine
       (:data:`_TILE_CANDIDATES_MB`);
    2. executor kind — inline (best tile) vs thread pool vs
       process+shm pool, the pools skipped on single-CPU hosts where
       they can only lose;
    3. pipeline depth — two concurrent batches vs two serial batches on
       the winning executor; overlap that beats serial by >10% earns
       ``max_inflight=2``, anything else stays serialized.

    Every candidate's scores are asserted bit-equal to the inline
    engine before its throughput may be compared.
    """
    from repro.core.inference import BitPackedUniVSA
    from repro.runtime.batch import BatchRunner

    registry = get_registry()
    cpus = int(cpu_count if cpu_count is not None else (os.cpu_count() or 1))
    artifacts = engine.artifacts
    rng = np.random.default_rng(seed)
    levels = rng.integers(
        0, engine.n_levels, size=(int(batch),) + tuple(engine.input_shape)
    )
    expected = engine.scores(levels)

    measurements: list[tuple[str, float]] = []

    # 1. tile budget sweep (fused engine, inline)
    best_tile, best_tile_rate = None, -1.0
    for tile_mb in _TILE_CANDIDATES_MB:
        candidate = BitPackedUniVSA(artifacts, mode="fused", conv_tile_mb=tile_mb)
        rate = _time_scores(candidate.scores, levels, repeats, expected)
        measurements.append((f"tile_{tile_mb:g}mb", rate))
        if rate > best_tile_rate:
            best_tile, best_tile_rate = tile_mb, rate
    inline_engine = BitPackedUniVSA(artifacts, mode="fused", conv_tile_mb=best_tile)

    # 2. executor sweep
    winner = {
        "executor": "inline",
        "workers": 1,
        "shard_size": None,
        "use_shm": False,
        "rate": best_tile_rate,
    }
    measurements.append(("inline", best_tile_rate))
    if cpus > 1:
        pool_candidates = (
            ("thread", {"executor": "thread", "shm": None}),
            ("process_shm", {"executor": "process", "shm": True}),
        )
        for label, kwargs in pool_candidates:
            with BatchRunner(inline_engine, workers=cpus, **kwargs) as runner:
                rate = _time_scores(runner.scores, levels, repeats, expected)
            measurements.append((label, rate))
            if rate > winner["rate"]:
                winner = {
                    "executor": kwargs["executor"],
                    "workers": cpus,
                    "shard_size": None,
                    "use_shm": bool(kwargs["shm"]),
                    "rate": rate,
                }

    # 3. in-flight depth probe on the winning configuration
    def _winner_scores(x):
        if winner["executor"] == "inline":
            return inline_engine.scores(x)
        with BatchRunner(
            inline_engine,
            executor=winner["executor"],
            workers=winner["workers"],
            shm=winner["use_shm"] if winner["executor"] == "process" else None,
        ) as runner:
            return runner.scores(x)

    start = perf_counter()
    np.testing.assert_array_equal(_winner_scores(levels), expected)
    np.testing.assert_array_equal(_winner_scores(levels), expected)
    serial_wall = perf_counter() - start
    with ThreadPoolExecutor(max_workers=2) as pool:
        start = perf_counter()
        futures = [pool.submit(_winner_scores, levels) for _ in range(2)]
        overlapped = [f.result() for f in futures]
        overlap_wall = perf_counter() - start
    for scores in overlapped:
        np.testing.assert_array_equal(scores, expected)
    overlap_rate = 2 * len(levels) / overlap_wall if overlap_wall > 0 else 0.0
    serial_rate = 2 * len(levels) / serial_wall if serial_wall > 0 else 0.0
    measurements.append(("inflight_1", serial_rate))
    measurements.append(("inflight_2", overlap_rate))
    max_inflight = 2 if overlap_wall < 0.9 * serial_wall else 1

    from repro.vsa.kernels import get_kernels

    cfg_hash = _config_hash(artifacts.config)
    kernel_set = get_kernels().name
    plan = ExecutionPlan(
        executor=winner["executor"],
        workers=winner["workers"],
        shard_size=winner["shard_size"],
        conv_tile_mb=float(best_tile),
        max_inflight=max_inflight,
        use_shm=winner["use_shm"],
        samples_per_s=float(winner["rate"]),
        key=plan_key(cfg_hash, kernel_set, cpus),
        config_hash=cfg_hash,
        kernel_set=kernel_set,
        cpu_count=cpus,
        calibration_batch=int(batch),
        measurements=tuple(measurements),
    )
    registry.counter("plan.calibrations").add(1)
    registry.gauge("plan.samples_per_s").set(plan.samples_per_s)
    registry.gauge("plan.conv_tile_mb").set(plan.conv_tile_mb)
    registry.gauge("plan.max_inflight").set(float(plan.max_inflight))
    return plan


def render_plan(plan: ExecutionPlan) -> str:
    """Human-readable plan summary for the CLI."""
    from repro.utils.tables import render_kv, render_table

    head = render_kv(
        {
            "key": plan.key,
            "config hash": plan.config_hash,
            "kernel set": plan.kernel_set,
            "cpus": plan.cpu_count,
            "executor": plan.executor,
            "workers": plan.workers,
            "shard size": plan.shard_size if plan.shard_size else "auto",
            "conv tile": f"{plan.conv_tile_mb:g} MB",
            "max inflight": plan.max_inflight,
            "shm": "on" if plan.use_shm else "off",
            "throughput": f"{plan.samples_per_s:,.0f} samples/s",
        },
        title="execution plan",
    )
    if not plan.measurements:
        return head
    rows = [
        [label, f"{rate:,.0f}"] for label, rate in plan.measurements
    ]
    return head + "\n\n" + render_table(
        ["candidate", "samples/s"], rows, title="calibration sweep"
    )
