"""Chaos fault injection for the serving path.

The resilience layer (:mod:`repro.runtime.resilience`) claims the batch
runtime survives worker exceptions, latency spikes, process crashes, and
transient packed-word corruption.  This module is the harness that makes
those claims testable: a :class:`ChaosSpec` describes a fault workload
(``REPRO_CHAOS="raise:0.05,delay:10ms,bitflip:1e-4"``) and the runner
opens a :func:`chaos_context` around every shard attempt, which

* raises :class:`ChaosError` with probability ``raise``,
* sleeps ``delay`` before the shard computes,
* hard-kills the worker process with probability ``crash`` — but only
  inside a process-pool worker (marked by :func:`mark_process_worker`;
  the parent sees ``BrokenProcessPool``).  In the serving process
  itself — thread executors, single-shard inline runs, fallback
  attempts — the crash draw is still consumed, so decision sequences
  stay aligned across executor kinds, but the kill is skipped: chaos
  must never take down the orchestrator it is testing.  And
* flips packed words at the kernel seam at per-bit rate ``bitflip``
  while the shard computes (single-event-upset semantics, the transient
  sibling of :func:`repro.hw.faults.inject_bit_flips`'s stored-memory
  corruption).

Two further directives target the *state* plane rather than shard
execution, and are consumed by :mod:`repro.runtime.integrity`:
``corrupt:P`` flips bits in the engine's resident operand memory between
micro-batches (the serve layer's scrub/repair loop is what recovers),
and ``truncate`` damages every archive ``UniVSAArtifacts.save`` writes
(exercising the torn-store detection of the checksummed loader).

Every decision is drawn from ``np.random.default_rng((seed, shard,
attempt))`` — deterministic per shard *attempt* regardless of thread or
process scheduling, so a retried shard re-rolls its fate and a chaos run
is exactly reproducible under a fixed seed.

Bit flips are injected by swapping in a wrapped :class:`KernelSet`
(:func:`chaos_kernels`) whose ``popcount8`` consults a thread-local
:class:`ShardChaos`; outside a chaos context the wrapper is a
passthrough, so concurrent non-chaos work on other threads is never
corrupted.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.vsa.kernels import WORD_BITS, KernelSet, get_kernels, wrap_kernels

__all__ = [
    "ChaosError",
    "ChaosSpec",
    "ShardChaos",
    "chaos_context",
    "chaos_kernels",
    "flip_words",
    "in_process_worker",
    "mark_process_worker",
    "parse_chaos",
]

_process_worker = False


def mark_process_worker(flag: bool = True) -> None:
    """Mark this process as a pool worker, arming the ``crash`` fault.

    Called from the process-pool initializer
    (:func:`repro.runtime.resilience._resilient_worker_init`); nothing
    ever sets it in the serving process, so a crash draw there can never
    ``os._exit`` the orchestrator.
    """
    global _process_worker
    _process_worker = flag


def in_process_worker() -> bool:
    """True when this process has been marked as a pool worker."""
    return _process_worker


class ChaosError(RuntimeError):
    """The exception the ``raise`` chaos directive injects."""


def _parse_duration(text: str) -> float:
    """``"10ms"`` / ``"0.5s"`` / ``"250us"`` / bare seconds -> seconds."""
    text = text.strip().lower()
    for suffix, scale in (("us", 1e-6), ("ms", 1e-3), ("s", 1.0)):
        if text.endswith(suffix):
            return float(text[: -len(suffix)]) * scale
    return float(text)


@dataclass(frozen=True)
class ChaosSpec:
    """One parsed chaos workload.

    ``raise_rate`` / ``crash_rate`` / ``bitflip_rate`` are probabilities
    (per shard attempt; per bit for ``bitflip``); ``delay_s`` is a fixed
    latency added to every shard attempt.  The ``*_on`` sets pin faults
    to exact ``(shard, attempt)`` pairs — the surgical injection the
    regression tests use ("crash the middle shard's first attempt").
    """

    raise_rate: float = 0.0
    delay_s: float = 0.0
    bitflip_rate: float = 0.0
    crash_rate: float = 0.0
    seed: int = 0
    raise_on: frozenset = field(default_factory=frozenset)
    delay_on: frozenset = field(default_factory=frozenset)
    crash_on: frozenset = field(default_factory=frozenset)
    corrupt_rate: float = 0.0
    truncate: bool = False

    def __post_init__(self) -> None:
        for name in ("raise_rate", "crash_rate", "bitflip_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay_s < 0.0:
            raise ValueError(f"delay must be >= 0, got {self.delay_s}")

    @property
    def enabled(self) -> bool:
        """True when any fault can fire."""
        return bool(
            self.raise_rate
            or self.delay_s
            or self.bitflip_rate
            or self.crash_rate
            or self.corrupt_rate
            or self.truncate
            or self.raise_on
            or self.delay_on
            or self.crash_on
        )

    @property
    def targeted(self) -> bool:
        """True when faults are pinned to explicit (shard, attempt) pairs."""
        return bool(self.raise_on or self.delay_on or self.crash_on)

    @property
    def has_crash(self) -> bool:
        """True when any ``crash`` fault is configured.

        Crash kills only process-pool workers, so runners reject a
        crash-bearing spec on any other executor rather than let the
        directive silently do nothing.
        """
        return bool(self.crash_rate or self.crash_on)

    def as_dict(self) -> dict:
        """JSON-friendly view (reports / ledger records)."""
        return {
            "raise": self.raise_rate,
            "delay_s": self.delay_s,
            "bitflip": self.bitflip_rate,
            "crash": self.crash_rate,
            "corrupt": self.corrupt_rate,
            "truncate": self.truncate,
            "seed": self.seed,
            "targeted": self.targeted,
        }

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str | None, seed: int = 0) -> "ChaosSpec":
        """Parse the ``REPRO_CHAOS`` grammar.

        Comma-separated ``directive:value`` pairs; directives are
        ``raise`` (probability), ``delay`` (duration, e.g. ``10ms``),
        ``bitflip`` (per-bit rate), ``crash`` (probability), ``corrupt``
        (probability per micro-batch of flipping bits in resident
        artifact memory — see :mod:`repro.runtime.integrity`),
        ``truncate`` (bare flag: damage archives as they are saved), and
        ``seed`` (overrides the ``seed`` argument).  Empty/None parses
        disabled.
        """
        if not text or not text.strip():
            return cls(seed=seed)
        values: dict = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if ":" not in part:
                if part.lower() == "truncate":
                    values["truncate"] = True
                    continue
                raise ValueError(
                    f"bad chaos directive {part!r}; expected 'name:value'"
                )
            name, _, raw = part.partition(":")
            name = name.strip().lower()
            if name == "raise":
                values["raise_rate"] = float(raw)
            elif name == "delay":
                values["delay_s"] = _parse_duration(raw)
            elif name == "bitflip":
                values["bitflip_rate"] = float(raw)
            elif name == "crash":
                values["crash_rate"] = float(raw)
            elif name == "corrupt":
                values["corrupt_rate"] = float(raw)
            elif name == "truncate":
                values["truncate"] = raw.strip().lower() in ("1", "true", "yes", "on")
            elif name == "seed":
                values["seed"] = int(raw)
            else:
                raise ValueError(
                    f"unknown chaos directive {name!r}; expected "
                    "raise/delay/bitflip/crash/corrupt/truncate/seed"
                )
        values.setdefault("seed", seed)
        return cls(**values)

    @classmethod
    def from_env(cls, environ=None) -> "ChaosSpec":
        """Spec from ``REPRO_CHAOS`` / ``REPRO_CHAOS_SEED`` (disabled default)."""
        env = os.environ if environ is None else environ
        seed = 0
        raw_seed = env.get("REPRO_CHAOS_SEED")
        if raw_seed:
            try:
                seed = int(raw_seed)
            except ValueError:
                pass
        return cls.parse(env.get("REPRO_CHAOS"), seed=seed)


def parse_chaos(text: str | None, seed: int = 0) -> ChaosSpec:
    """Module-level alias for :meth:`ChaosSpec.parse`."""
    return ChaosSpec.parse(text, seed=seed)


# ---------------------------------------------------------------------------
# per-shard-attempt fault state
# ---------------------------------------------------------------------------
class ShardChaos:
    """The chaos decisions for one (shard, attempt) execution."""

    __slots__ = ("spec", "shard", "attempt", "rng")

    def __init__(self, spec: ChaosSpec, shard: int, attempt: int) -> None:
        self.spec = spec
        self.shard = shard
        self.attempt = attempt
        self.rng = np.random.default_rng((spec.seed, shard, attempt))

    def fire_entry_faults(self) -> None:
        """Crash / delay / raise, in that order, at shard entry.

        One rng drives every probabilistic draw, in a fixed order, so the
        decision sequence is a pure function of (seed, shard, attempt).
        """
        spec = self.spec
        key = (self.shard, self.attempt)
        # The crash draw is always consumed so the later raise/bitflip
        # draws land identically whether or not this process is a pool
        # worker, but the kill itself is gated: only a process marked by
        # mark_process_worker() may die — an inline or fallback attempt
        # in the serving process skips it.
        crash = key in spec.crash_on or (
            spec.crash_rate and self.rng.random() < spec.crash_rate
        )
        if crash and in_process_worker():
            # A simulated hard worker death: no exception, no cleanup —
            # exactly what a segfaulted or OOM-killed worker looks like.
            os._exit(1)
        if key in spec.delay_on or spec.delay_s:
            time.sleep(spec.delay_s if spec.delay_s else 0.05)
        if key in spec.raise_on or (
            spec.raise_rate and self.rng.random() < spec.raise_rate
        ):
            raise ChaosError(
                f"injected failure (shard={self.shard}, attempt={self.attempt})"
            )

    def flip(self, words: np.ndarray) -> np.ndarray:
        """Transient bit flips on packed words at the configured rate."""
        return flip_words(words, self.spec.bitflip_rate, self.rng)


def flip_words(words: np.ndarray, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Flip bits of uint64 ``words`` at per-bit ``rate``; returns a copy.

    Flip positions are drawn with replacement from a binomial count — at
    the SEU-scale rates chaos uses (<= 1e-3) collisions are negligible
    and the cost stays O(size + flips) instead of O(size * 64).
    """
    if rate <= 0.0:
        return words
    out = np.ascontiguousarray(words, dtype=np.uint64).copy()
    flat = out.reshape(-1)
    n_bits = flat.size * WORD_BITS
    n_flips = int(rng.binomial(n_bits, min(rate, 1.0)))
    if n_flips:
        positions = rng.integers(0, n_bits, size=n_flips)
        masks = np.uint64(1) << (positions % WORD_BITS).astype(np.uint64)
        np.bitwise_xor.at(flat, positions // WORD_BITS, masks)
    return out


_chaos_local = threading.local()


def active_shard_chaos() -> ShardChaos | None:
    """The :class:`ShardChaos` of the current thread's open context."""
    return getattr(_chaos_local, "state", None)


class chaos_context:
    """Install per-shard chaos for the ``with`` body (current thread).

    Entry fires the crash/delay/raise faults; while the body runs the
    thread-local state makes :func:`chaos_kernels` wrappers flip packed
    words.  A disabled spec costs one attribute write.
    """

    __slots__ = ("state", "_previous")

    def __init__(self, spec: ChaosSpec | None, shard: int, attempt: int) -> None:
        self.state = (
            ShardChaos(spec, shard, attempt) if spec is not None and spec.enabled else None
        )

    def __enter__(self) -> "chaos_context":
        self._previous = getattr(_chaos_local, "state", None)
        _chaos_local.state = self.state
        if self.state is not None:
            try:
                self.state.fire_entry_faults()
            except BaseException:
                # __exit__ never runs when __enter__ raises; restore the
                # previous state here or the injected fault leaks chaos
                # into every later block on this thread.
                _chaos_local.state = self._previous
                raise
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _chaos_local.state = self._previous
        return False


# ---------------------------------------------------------------------------
# the kernel seam
# ---------------------------------------------------------------------------
def chaos_kernels(base: KernelSet | None = None) -> KernelSet:
    """A kernel set whose popcount flips bits under an open chaos context.

    Wraps ``base`` (default: the active set) so that every popcount input
    — the XOR'd operand words of the conv/encode/similarity stages — is
    corrupted at the context's ``bitflip`` rate first.  Without an open
    context the wrapper forwards untouched, so installing it globally is
    safe around concurrent non-chaos work.  An already-wrapped set is
    returned as-is: a fork-spawned pool worker inherits the parent's
    installed chaos kernels, and wrapping twice would double the
    effective flip rate.
    """
    if base is None:
        base = get_kernels()
    if base.name.endswith("+chaos"):
        return base

    inner = base.popcount8

    def popcount8(words: np.ndarray) -> np.ndarray:
        state = getattr(_chaos_local, "state", None)
        if state is not None and state.spec.bitflip_rate > 0.0:
            words = state.flip(words)
        return inner(words)

    return wrap_kernels(base, popcount8=popcount8, suffix="+chaos")
