"""Fault-tolerant batch serving: retry, fallback, quarantine, breaker.

:class:`ResilientBatchRunner` wraps the :class:`~repro.runtime.batch.BatchRunner`
sharding machinery with the failure handling a production deployment
needs, following a fixed degradation ladder per shard:

1. **Retry** — a shard attempt that raises, times out (``timeout_s``
   result deadline), or dies with its process worker is retried up to
   ``max_retries`` times with exponential backoff and deterministic
   jitter.  A ``BrokenProcessPool`` additionally replaces the whole
   worker pool (a crashed process poisons its siblings) and resubmits
   every uncollected shard.
2. **Fallback** — when the fast engine keeps failing, the shard runs
   inline on the seed-exact ``legacy`` engine
   (:meth:`~repro.core.inference.BitPackedUniVSA.sibling`); engine
   parity tests guarantee the downgrade is bit-exact, so the only cost
   is latency.  The downgrade is recorded per shard.
3. **Quarantine** — invalid samples (NaN/Inf, non-integral, out-of-range
   levels) are detected *before* sharding and excluded instead of
   poisoning a whole shard; a shard that exhausts the ladder likewise
   quarantines its samples rather than aborting the batch.  Quarantined
   rows score zero and predict ``-1``.
4. **Circuit breaker** — ``breaker_threshold`` *consecutive* shard
   failures trip the breaker: remaining shards are skipped and
   :class:`CircuitOpenError` is raised carrying the structured
   :class:`BatchReport`, so a systemic outage fails fast instead of
   grinding through retries.

Every event lands in the observability stack: ``resilience.{retries,
fallbacks, quarantined, timeouts, broken_pools, failed_shards}``
counters, ``resilience.{breaker_open, degraded}`` gauges, and a
``batch.retry`` stage timer whose spans annotate the shard, attempt, and
error.  The run ledger harvests the ``resilience.*`` instruments into
every record (see :func:`repro.obs.ledger.record_run`), so degraded runs
are marked in ``benchmarks/results/ledger.jsonl``.

Chaos specs (:mod:`repro.runtime.chaos`, ``REPRO_CHAOS``) plug into the
same shard seam, which is how the whole ladder is exercised end to end
in tests and the CI ``chaos-smoke`` job.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import CancelledError as FuturesCancelledError
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.obs import annotate_span, get_registry, stage_timer, trace_span
from repro.obs.telemetry import (
    drain_worker_delta,
    install_worker_telemetry,
    merge_delta,
    worker_telemetry_installed,
)
from repro.vsa.kernels import get_kernels, using_kernels

from .batch import BatchRunner, _attach_plane_engine
from .shm import SharedArray, attach_view
from .chaos import (
    ChaosError,
    ChaosSpec,
    chaos_context,
    chaos_kernels,
    mark_process_worker,
)

__all__ = [
    "RetryPolicy",
    "ShardStatus",
    "BatchReport",
    "BatchResult",
    "CircuitOpenError",
    "ResilientBatchRunner",
    "validate_levels",
    "serving_predict_fn",
]

#: Prediction emitted for quarantined / failed samples.
QUARANTINED_LABEL = -1


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the degradation ladder.

    ``max_retries`` counts *extra* pool attempts per shard beyond the
    first; ``timeout_s`` is the per-attempt result deadline (``None``
    disables it).  A timed-out attempt is abandoned, never interrupted —
    a running attempt keeps occupying its worker until it finishes, so a
    timed-out shard can transiently hold two workers; if the abandoned
    attempt completes cleanly during the retry backoff its result is
    collected instead of resubmitting.  Backoff before retry ``k`` is
    ``min(backoff_max_s, backoff_base_s * 2**(k-1))`` scaled by a
    deterministic jitter in [0.5, 1.5).  ``breaker_threshold``
    consecutive shard failures trip the breaker.
    """

    max_retries: int = 2
    timeout_s: float | None = None
    backoff_base_s: float = 0.02
    backoff_max_s: float = 1.0
    fallback: bool = True
    breaker_threshold: int = 5
    validate: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")

    @classmethod
    def from_env(cls, environ=None) -> "RetryPolicy":
        """Policy from ``REPRO_RETRIES`` / ``REPRO_SHARD_TIMEOUT_S`` /
        ``REPRO_BACKOFF_S`` / ``REPRO_BACKOFF_MAX_S`` / ``REPRO_FALLBACK``
        / ``REPRO_BREAKER`` / ``REPRO_VALIDATE`` / ``REPRO_RETRY_SEED``
        (unset keys keep the defaults)."""
        env = os.environ if environ is None else environ

        def _get(key, cast, default):
            raw = env.get(key)
            if raw is None or not str(raw).strip():
                return default
            try:
                return cast(raw)
            except (TypeError, ValueError):
                return default

        # No ``or None`` truthiness here: an explicit "0" deadline is a
        # misconfiguration that must raise in __post_init__, not silently
        # read as "no deadline".
        return cls(
            max_retries=max(0, _get("REPRO_RETRIES", int, cls.max_retries)),
            timeout_s=_get("REPRO_SHARD_TIMEOUT_S", float, None),
            backoff_base_s=_get("REPRO_BACKOFF_S", float, cls.backoff_base_s),
            backoff_max_s=_get("REPRO_BACKOFF_MAX_S", float, cls.backoff_max_s),
            fallback=str(env.get("REPRO_FALLBACK", "1")).strip() not in ("0", "false", "no"),
            breaker_threshold=max(1, _get("REPRO_BREAKER", int, cls.breaker_threshold)),
            validate=str(env.get("REPRO_VALIDATE", "1")).strip() not in ("0", "false", "no"),
            seed=_get("REPRO_RETRY_SEED", int, cls.seed),
        )

    def backoff_s(self, shard: int, attempt: int) -> float:
        """Deterministic jittered backoff before retry ``attempt`` (>= 1)."""
        base = min(self.backoff_max_s, self.backoff_base_s * (2.0 ** max(0, attempt - 1)))
        jitter = np.random.default_rng((self.seed, 104729, shard, attempt)).random()
        return base * (0.5 + jitter)


# ---------------------------------------------------------------------------
# structured reporting
# ---------------------------------------------------------------------------
@dataclass
class ShardStatus:
    """What happened to one shard across the degradation ladder."""

    index: int
    start: int
    stop: int
    status: str = "pending"  # ok | fallback | failed | skipped
    attempts: int = 0
    retries: int = 0
    engine: str = "fast"  # engine that produced the accepted result
    errors: list[str] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def samples(self) -> int:
        """Samples the shard covers (post-quarantine batch coordinates)."""
        return self.stop - self.start

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "span": [self.start, self.stop],
            "status": self.status,
            "attempts": self.attempts,
            "retries": self.retries,
            "engine": self.engine,
            "errors": list(self.errors),
            "wall_s": self.wall_s,
        }


@dataclass
class BatchReport:
    """Structured account of one resilient batch run — every shard, every
    retry, every downgrade, every quarantined sample."""

    batch: int
    shards: list[ShardStatus] = field(default_factory=list)
    quarantined: dict[int, str] = field(default_factory=dict)  # index -> reason
    failed_samples: list[int] = field(default_factory=list)
    breaker_open: bool = False
    chaos: dict = field(default_factory=dict)
    shard_size: int | None = None  # effective samples per shard this run
    shm_bytes: int = 0  # bytes handed off through shared memory

    @property
    def n_shards(self) -> int:
        """Shards the batch actually split into."""
        return len(self.shards)

    @property
    def retries(self) -> int:
        """Total retries across all shards."""
        return sum(s.retries for s in self.shards)

    @property
    def fallbacks(self) -> int:
        """Shards that downgraded to the seed engine."""
        return sum(1 for s in self.shards if s.status == "fallback")

    @property
    def excluded(self) -> list[int]:
        """Original batch indices with no trustworthy prediction."""
        return sorted(set(self.quarantined) | set(self.failed_samples))

    @property
    def degraded(self) -> bool:
        """True when anything deviated from the clean fast path."""
        return bool(
            self.retries
            or self.fallbacks
            or self.quarantined
            or self.failed_samples
            or self.breaker_open
        )

    @property
    def ok(self) -> bool:
        """True when every sample produced a prediction."""
        return not self.breaker_open and not self.excluded

    def as_dict(self) -> dict:
        return {
            "batch": self.batch,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "breaker_open": self.breaker_open,
            "degraded": self.degraded,
            "quarantined": {str(k): v for k, v in sorted(self.quarantined.items())},
            "failed_samples": sorted(self.failed_samples),
            "chaos": dict(self.chaos),
            "shard_size": self.shard_size,
            "n_shards": self.n_shards,
            "shm_bytes": self.shm_bytes,
            "shards": [s.as_dict() for s in self.shards],
        }

    def render(self) -> str:
        """Text table: one row per shard plus a summary header."""
        from repro.utils.tables import render_kv, render_table

        header = render_kv(
            {
                "batch": self.batch,
                "shards": len(self.shards),
                "retries": self.retries,
                "fallbacks": self.fallbacks,
                "quarantined": len(self.quarantined),
                "failed samples": len(self.failed_samples),
                "breaker": "OPEN" if self.breaker_open else "closed",
                "verdict": "degraded" if self.degraded else "clean",
            },
            title="resilient batch report",
        )
        rows = [
            [
                s.index,
                f"[{s.start}, {s.stop})",
                s.status,
                s.attempts,
                s.retries,
                s.engine,
                ";".join(s.errors) or "-",
            ]
            for s in self.shards
        ]
        table = render_table(
            ["shard", "span", "status", "attempts", "retries", "engine", "errors"],
            rows,
            title="shards",
        )
        return header + "\n\n" + table


@dataclass
class BatchResult:
    """Scores + predictions + the report that vouches for them."""

    scores: np.ndarray
    predictions: np.ndarray
    report: BatchReport


class CircuitOpenError(RuntimeError):
    """Raised when the breaker trips; carries the :class:`BatchReport`."""

    def __init__(self, message: str, report: BatchReport) -> None:
        super().__init__(message)
        self.report = report


# ---------------------------------------------------------------------------
# input validation / quarantine
# ---------------------------------------------------------------------------
def validate_levels(
    levels: np.ndarray, input_shape: tuple[int, int], n_levels: int
) -> tuple[np.ndarray, np.ndarray, dict[int, str]]:
    """Split a raw batch into servable samples and quarantined ones.

    Returns ``(clean, good_indices, quarantined)`` where ``clean`` is the
    integer level batch of the valid samples (original order preserved),
    ``good_indices`` maps its rows back to the input batch, and
    ``quarantined`` maps bad row indices to a reason (``"non-finite"``,
    ``"non-integral"``, ``"out-of-range"``).  A batch whose trailing
    shape disagrees with ``input_shape`` is a caller bug, not bad data,
    and raises ``ValueError``.
    """
    levels = np.asarray(levels)
    expected = tuple(input_shape)
    if levels.ndim == len(expected):
        levels = levels[None]
    if levels.shape[1:] != expected:
        raise ValueError(
            f"levels batch has per-sample shape {levels.shape[1:]}, "
            f"engine expects {expected}"
        )
    n = levels.shape[0]
    quarantined: dict[int, str] = {}
    if n:
        flat = levels.reshape(n, -1)
        if np.issubdtype(levels.dtype, np.floating):
            finite = np.isfinite(flat).all(axis=1)
            for idx in np.flatnonzero(~finite):
                quarantined[int(idx)] = "non-finite"
            safe = np.where(np.isfinite(flat), flat, 0.0)
            integral = (np.mod(safe, 1.0) == 0.0).all(axis=1)
            for idx in np.flatnonzero(finite & ~integral):
                quarantined[int(idx)] = "non-integral"
            values = safe
        elif np.issubdtype(levels.dtype, np.integer) or levels.dtype == np.bool_:
            values = flat
        else:
            raise TypeError(f"levels dtype {levels.dtype} is not numeric")
        in_range = ((values >= 0) & (values < n_levels)).all(axis=1)
        for idx in np.flatnonzero(~in_range):
            quarantined.setdefault(int(idx), "out-of-range")
    good = np.array(
        [i for i in range(n) if i not in quarantined], dtype=np.intp
    )
    clean = (
        np.ascontiguousarray(levels[good]).astype(np.intp, copy=False)
        if good.size
        else np.zeros((0,) + expected, dtype=np.intp)
    )
    return clean, good, quarantined


# ---------------------------------------------------------------------------
# process-pool plumbing (module level so spawn contexts can pickle it)
# ---------------------------------------------------------------------------
_WORKER_ENGINE = None
_WORKER_CHAOS: ChaosSpec | None = None
_WORKER_PLANE_KEY: tuple | None = None


def _resilient_worker_init(source, chaos: ChaosSpec | None, telemetry: bool = False):
    """Pool initializer: plane-attach or pickled-artifact engine + chaos.

    ``source`` mirrors :func:`repro.runtime.batch._process_worker_init`:
    ``("plane", descriptor)`` attaches the parent-owned operand plane and
    reconstructs zero-copy views; ``("artifacts", (artifacts, mode,
    conv_tile_mb))`` rebuilds the engine from pickled artifacts.
    """
    global _WORKER_ENGINE, _WORKER_CHAOS, _WORKER_PLANE_KEY
    from repro.vsa.kernels import publish_kernel_metrics, set_kernels

    mark_process_worker()  # this process may be hard-killed by crash chaos
    kind, payload = source
    if kind == "plane":
        _WORKER_ENGINE = _attach_plane_engine(payload)
        _WORKER_PLANE_KEY = tuple(payload)
    else:
        from repro.core.inference import BitPackedUniVSA

        artifacts, mode, conv_tile_mb = payload
        _WORKER_ENGINE = BitPackedUniVSA(
            artifacts, mode=mode, conv_tile_mb=conv_tile_mb
        )
        _WORKER_PLANE_KEY = None
    _WORKER_CHAOS = chaos
    if chaos is not None and chaos.bitflip_rate > 0.0:
        # chaos_kernels is a no-op on an already-wrapped set, so a fork
        # worker that inherited the parent's chaos install stays
        # single-wrapped.
        set_kernels(chaos_kernels(get_kernels()))
    # After engine + kernel setup: init-time work must stay out of the
    # harvested deltas for process totals to match serial runs.
    install_worker_telemetry(telemetry)
    if worker_telemetry_installed():
        publish_kernel_metrics(get_registry())


def _ensure_worker_engine(plane_descriptor: tuple | None) -> None:
    """Detect an operand-plane generation bump and re-attach."""
    global _WORKER_ENGINE, _WORKER_PLANE_KEY
    if plane_descriptor is None:
        return
    if tuple(plane_descriptor) != _WORKER_PLANE_KEY:
        _WORKER_ENGINE = _attach_plane_engine(plane_descriptor)
        _WORKER_PLANE_KEY = tuple(plane_descriptor)


def _resilient_worker_scores(shard: int, attempt: int, levels: np.ndarray):
    start = perf_counter()
    with chaos_context(_WORKER_CHAOS, shard, attempt):
        scores = _WORKER_ENGINE.scores(levels)
    return scores, perf_counter() - start, drain_worker_delta()


def _resilient_worker_scores_shm(
    descriptor: tuple,
    shard: int,
    attempt: int,
    span_start: int,
    span_stop: int,
    out_descriptor: tuple | None = None,
    plane: tuple | None = None,
):
    """Shm variant: the shard is a zero-copy view into the parent's segment.

    The attach happens *inside* the chaos context — a crash draw kills
    the worker mid-handoff exactly like a real fault would, and the
    parent's recovery must still unlink and re-share cleanly.  With an
    ``out_descriptor`` the scores land in the parent's result plane at
    the span offset and only the span crosses the pipe back; ``plane``
    lets the worker detect an operand-plane generation bump per shard.
    Worker-side counters are gated on the initializer telemetry flag so
    observability-off pools never touch a registry on this path either.
    """
    start = perf_counter()
    with chaos_context(_WORKER_CHAOS, shard, attempt):
        _ensure_worker_engine(plane)
        levels = attach_view(descriptor, span_start, span_stop)
        if worker_telemetry_installed():
            get_registry().counter("batch.shm.attach").add(1)
        scores = _WORKER_ENGINE.scores(levels)
        if out_descriptor is not None:
            out = attach_view(out_descriptor, span_start, span_stop, writable=True)
            out[...] = scores
            payload = (span_start, span_stop)
        else:
            payload = scores
    return payload, perf_counter() - start, drain_worker_delta()


class _BatchSegments:
    """The shm segments of one in-flight batch (batch-local, not runner
    state — pipelined serving runs several batches concurrently through
    one runner).  ``tainted`` marks segments an abandoned attempt might
    still write to; they are destroyed instead of arena-pooled."""

    __slots__ = ("request", "result", "tainted")

    def __init__(self) -> None:
        self.request: SharedArray | None = None
        self.result: SharedArray | None = None
        self.tainted = False


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------
class ResilientBatchRunner(BatchRunner):
    """Order-preserving sharded execution that survives failures.

    Accepts everything :class:`~repro.runtime.batch.BatchRunner` does,
    plus a :class:`RetryPolicy` (default :meth:`RetryPolicy.from_env`)
    and a :class:`ChaosSpec` (default ``REPRO_CHAOS``).  ``run`` returns
    a :class:`BatchResult`; ``scores``/``predict`` stay drop-in
    compatible with the plain runner and stash the latest report on
    ``last_report``.
    """

    def __init__(
        self,
        engine,
        shard_size: int | None = None,
        workers: int | None = None,
        executor: str = "thread",
        mp_context=None,
        policy: RetryPolicy | None = None,
        chaos: ChaosSpec | None = None,
        shm: bool | None = None,
    ) -> None:
        super().__init__(
            engine,
            shard_size=shard_size,
            workers=workers,
            executor=executor,
            mp_context=mp_context,
            shm=shm,
        )
        self.policy = policy if policy is not None else RetryPolicy.from_env()
        self.chaos = chaos if chaos is not None else ChaosSpec.from_env()
        if self.chaos.has_crash and self.executor_kind != "process":
            # A crash draw outside a pool worker is skipped (it must not
            # kill the serving process), so on any other executor the
            # directive could never fire — reject it loudly instead.
            raise ValueError(
                "chaos 'crash' simulates a hard process-worker death and "
                f"requires executor='process' (got {self.executor_kind!r}); "
                "use 'raise' to inject failures on thread executors"
            )
        self.last_report: BatchReport | None = None
        self._fallback_engine = None
        self._fallback_lock = threading.Lock()

    # -- pool / worker seams -------------------------------------------
    def _pool_initializer(self):
        plane = self._ensure_plane()
        if plane is not None:
            source = ("plane", plane.descriptor())
        else:
            source = (
                "artifacts",
                (self.engine.artifacts, self.engine.mode, self.engine.conv_tile_mb),
            )
        return _resilient_worker_init, (
            source,
            self.chaos if self.chaos.enabled else None,
            get_registry().enabled,
        )

    def _submit(
        self,
        pool,
        shard: int,
        attempt: int,
        levels: np.ndarray,
        span=None,
        segments: _BatchSegments | None = None,
    ):
        if self.executor_kind == "thread":
            return pool.submit(self._thread_shard, shard, attempt, levels)
        if segments is not None and segments.request is not None and span is not None:
            # Descriptors are read at submit time, so segments re-shared
            # by pool recovery are picked up by every subsequent
            # (re)submission automatically.
            out = segments.result
            return pool.submit(
                _resilient_worker_scores_shm,
                segments.request.descriptor(),
                shard,
                attempt,
                span[0],
                span[1],
                out.descriptor() if out is not None else None,
                self._plane_descriptor(),
            )
        return pool.submit(_resilient_worker_scores, shard, attempt, levels)

    def _thread_shard(self, shard: int, attempt: int, levels: np.ndarray) -> np.ndarray:
        with stage_timer("batch.shard"):
            annotate_span(shard=shard, attempt=attempt, samples=len(levels))
            with chaos_context(self.chaos, shard, attempt):
                return self.engine.scores(levels)

    def _inline_attempt(self, shard: int, attempt: int, levels: np.ndarray, engine=None):
        engine = self.engine if engine is None else engine
        with stage_timer("batch.shard"):
            annotate_span(
                shard=shard, attempt=attempt, samples=len(levels), inline=True
            )
            with chaos_context(self.chaos, shard, attempt):
                return engine.scores(levels)

    def _fallback(self):
        """The seed-exact legacy engine, built once on first downgrade.

        Built under a lock: pipelined batches can hit their first
        downgrade concurrently, and two sibling builds would waste the
        packed-table memory twice.
        """
        with self._fallback_lock:
            if self._fallback_engine is None:
                if self.engine.mode == "legacy":
                    self._fallback_engine = self.engine
                else:
                    self._fallback_engine = self.engine.sibling("legacy")
            return self._fallback_engine

    def replace_engine(self, engine) -> None:
        """Hot-swap a rebuilt engine, also resetting the legacy fallback.

        The integrity scrubber calls this on repair: a fallback sibling
        built over the corrupted artifacts would re-serve the corruption
        on the next degraded batch, so it is dropped and lazily rebuilt
        from the repaired engine when next needed.
        """
        super().replace_engine(engine)
        self._fallback_engine = None

    # -- public API -----------------------------------------------------
    def scores(self, levels: np.ndarray) -> np.ndarray:
        """Soft-voting class scores; quarantined rows are all-zero."""
        return self.run(levels).scores

    def predict(self, levels: np.ndarray) -> np.ndarray:
        """Predicted labels; quarantined/failed rows are ``-1``."""
        return self.run(levels).predictions

    def run(self, levels: np.ndarray) -> BatchResult:
        """Execute the batch through the full degradation ladder."""
        levels = np.asarray(levels)
        registry = get_registry()
        policy = self.policy
        if policy.validate:
            clean, good, quarantined = validate_levels(
                levels, self.engine.input_shape, self.engine.n_levels
            )
        else:
            clean = levels.reshape((-1,) + tuple(self.engine.input_shape))
            good = np.arange(clean.shape[0], dtype=np.intp)
            quarantined = {}
        n = int(good.size) + len(quarantined)
        report = BatchReport(
            batch=n,
            quarantined=quarantined,
            chaos=self.chaos.as_dict() if self.chaos.enabled else {},
        )
        if quarantined:
            registry.counter("resilience.quarantined").add(len(quarantined))
        with trace_span("batch.run"):
            annotate_span(
                batch=n,
                workers=self.workers,
                executor=self.executor_kind,
                quarantined=len(quarantined),
                chaos=bool(self.chaos.enabled),
            )
            registry.gauge("batch.workers").set(self.workers)
            registry.counter("batch.samples").add(n)
            if self.chaos.enabled and self.chaos.bitflip_rate > 0.0:
                # The chaos popcount wrapper is a passthrough outside an
                # open chaos context, so a global install is safe.  It is
                # installed for every executor kind: thread workers share
                # this process's kernel registry, and under a process
                # executor the single-shard inline path and the fallback
                # attempts run here too (pool workers install their own
                # copy in _resilient_worker_init; chaos_kernels never
                # double-wraps a fork-inherited set).
                with using_kernels(chaos_kernels(get_kernels())):
                    parts = self._execute_shards(clean, report)
            else:
                parts = self._execute_shards(clean, report)
        return self._assemble(good, parts, report)

    # -- execution core -------------------------------------------------
    def _execute_shards(self, clean: np.ndarray, report: BatchReport):
        registry = get_registry()
        spans = self._shards(clean.shape[0])
        registry.counter("batch.shards").add(len(spans))
        statuses = [ShardStatus(i, a, b) for i, (a, b) in enumerate(spans)]
        report.shards = statuses
        report.shard_size = self.effective_shard_size(clean.shape[0]) or None
        parts: list[np.ndarray | None] = [None] * len(spans)
        if not spans:
            return parts
        use_pool = len(spans) > 1 and not (
            self.workers == 1 and self.executor_kind == "thread"
        )
        segments = _BatchSegments()
        if use_pool and self.executor_kind == "process":
            if self.use_shm:
                # Parent-owned request + result planes, one each per
                # batch.  Batch-local, not runner state: pipelined
                # serving interleaves batches through this runner, and
                # each needs its own segments.  Handed back to the arena
                # in the finally no matter how the ladder ends.
                segments.request = self._share_batch(clean, registry)
                segments.result = self._share_output(clean.shape[0], registry)
                report.shm_bytes = segments.request.nbytes + segments.result.nbytes
                # The zero-copy contract, measured not asserted.
                registry.counter("batch.bytes_pickled_return").add(0)
            else:
                registry.counter("batch.bytes_pickled").add(clean.nbytes)
        try:
            return self._collect_shards(
                clean, report, statuses, parts, use_pool, registry, segments
            )
        except BaseException:
            # Shards may still be running; their segments must not be
            # pooled for reuse.
            segments.tainted = True
            raise
        finally:
            if segments.tainted:
                # An abandoned attempt (timeout, breaker skip, unexpected
                # unwind) may still write these segments after the batch
                # ends — destroy the names instead of letting the arena
                # reissue them to a later batch.
                self._arena.discard(segments.request)
                self._arena.discard(segments.result)
            else:
                self._arena.release(segments.request)
                self._arena.release(segments.result)

    def _collect_shards(
        self,
        clean: np.ndarray,
        report: BatchReport,
        statuses,
        parts,
        use_pool,
        registry,
        segments: _BatchSegments,
    ):
        futures: dict[int, object] = {}
        # Which executor each live future was submitted on: recovery
        # passes it as the ``stale`` pool so a concurrent batch that
        # already replaced the broken pool is not punished by having its
        # healthy replacement shut down too (see WorkerPool.replace).
        pools: dict[int, object] = {}
        if use_pool:
            pool = self._ensure_pool()
            try:
                for status in statuses:
                    futures[status.index] = self._submit(
                        pool,
                        status.index,
                        0,
                        clean[status.start : status.stop],
                        span=(status.start, status.stop),
                        segments=segments,
                    )
                    pools[status.index] = pool
            except (BrokenProcessPool, RuntimeError):
                # An already-submitted shard crashed its worker before
                # the batch was even fully enqueued, or a concurrent
                # batch's recovery swapped the pool out from under the
                # enqueue (submit on a shut-down executor raises
                # RuntimeError).  Shards left without a future are
                # submitted lazily by the collector, whose ladder owns
                # pool recovery.
                pass
        consecutive_failures = 0
        shard_hist = registry.histogram("batch.shard")
        breaker_at: int | None = None
        for status in statuses:
            i = status.index
            if breaker_at is not None:
                status.status = "skipped"
                continue
            shard_levels = clean[status.start : status.stop]
            started = perf_counter()
            while True:
                try:
                    if use_pool:
                        future = futures.get(i)
                        if future is None:
                            # Initial enqueue or retry resubmission.  The
                            # submit happens inside the try so a pool that
                            # broke meanwhile (another worker crashed
                            # during the backoff) feeds the same ladder
                            # instead of escaping it.
                            lazy_pool = self._ensure_pool()
                            future = futures[i] = self._submit(
                                lazy_pool,
                                i,
                                status.attempts,
                                shard_levels,
                                span=(status.start, status.stop),
                                segments=segments,
                            )
                            pools[i] = lazy_pool
                        outcome = future.result(timeout=self.policy.timeout_s)
                        if self.executor_kind == "process":
                            payload, duration, delta = outcome
                            shard_hist.observe(duration)
                            # Each delta ships exactly once per collected
                            # result (workers reset after shipping), so
                            # merging here cannot double-count even when
                            # _recover_pool kept this future across a
                            # pool replacement or _late_result collected
                            # a timed-out attempt.
                            merge_delta(registry, delta)
                            if isinstance(payload, tuple):
                                # Result-plane span: copy the scores out
                                # now — the segments go back to the arena
                                # before assembly runs.
                                a, b = payload
                                scores = np.array(segments.result.view()[a:b])
                            else:
                                registry.counter(
                                    "batch.bytes_pickled_return"
                                ).add(payload.nbytes)
                                scores = payload
                        else:
                            scores = outcome
                    else:
                        scores = self._inline_attempt(i, status.attempts, shard_levels)
                    status.attempts += 1
                    status.status = "ok"
                    parts[i] = scores
                    consecutive_failures = 0
                    break
                except (Exception, FuturesCancelledError) as exc:  # noqa: BLE001 — the ladder sorts them
                    # CancelledError is a BaseException since 3.8 and is
                    # named explicitly: a concurrent batch replacing a
                    # broken pool cancels this batch's pending futures
                    # (shutdown(cancel_futures=True)), and that must feed
                    # the retry ladder, not unwind the whole batch.
                    status.attempts += 1
                    status.errors.append(type(exc).__name__)
                    self._count_error(registry, exc)
                    if isinstance(exc, (BrokenProcessPool, FuturesCancelledError)) and use_pool:
                        self._recover_pool(
                            statuses,
                            futures,
                            clean,
                            parts,
                            registry,
                            current=i,
                            segments=segments,
                            pools=pools,
                        )
                    abandoned = None
                    if isinstance(exc, FuturesTimeoutError) and use_pool:
                        # cancel() only stops an attempt that has not
                        # started.  A running attempt cannot be
                        # interrupted: it keeps its worker (and any open
                        # chaos context) busy until it finishes, so a
                        # timed-out shard transiently occupies two
                        # workers and inflates batch.shard timings.
                        future = futures.get(i)
                        if future is not None and not future.cancel():
                            abandoned = future
                            # The uninterruptible attempt may outlive the
                            # batch and write its span late — these
                            # segments must never be reissued.
                            segments.tainted = True
                    if status.attempts <= self.policy.max_retries:
                        status.retries += 1
                        registry.counter("resilience.retries").add(1)
                        with stage_timer("batch.retry"):
                            annotate_span(
                                shard=i,
                                attempt=status.attempts,
                                error=type(exc).__name__,
                            )
                            time.sleep(self.policy.backoff_s(i, status.attempts))
                            if use_pool and not self._late_result(abandoned):
                                # Cleared so the next pass resubmits
                                # inside the try (a timed-out attempt
                                # that finished cleanly during the
                                # backoff is collected as-is instead).
                                futures[i] = None
                        continue
                    if self.policy.fallback and status.engine == "fast":
                        status.engine = "seed"
                        registry.counter("resilience.fallbacks").add(1)
                        try:
                            parts[i] = self._inline_attempt(
                                i, status.attempts, shard_levels, self._fallback()
                            )
                            status.attempts += 1
                            status.status = "fallback"
                            consecutive_failures = 0
                            break
                        except Exception as fallback_exc:  # noqa: BLE001
                            status.attempts += 1
                            status.errors.append(type(fallback_exc).__name__)
                            self._count_error(registry, fallback_exc)
                    status.status = "failed"
                    registry.counter("resilience.failed_shards").add(1)
                    consecutive_failures += 1
                    if consecutive_failures >= self.policy.breaker_threshold:
                        breaker_at = i
                    break
            status.wall_s = perf_counter() - started
        if breaker_at is not None:
            report.breaker_open = True
            registry.gauge("resilience.breaker_open").set(1.0)
            for status in statuses:
                future = futures.get(status.index)
                if future is not None and status.status == "skipped":
                    if not future.cancel() and not future.done():
                        # Still running — it will write its span after
                        # the batch unwinds.
                        segments.tainted = True
        else:
            registry.gauge("resilience.breaker_open").set(0.0)
        return parts

    @staticmethod
    def _late_result(abandoned) -> bool:
        """True when a timed-out attempt finished cleanly during backoff.

        ``futures[i]`` still holds the abandoned future, so the collector
        takes its result on the next loop — one worker-occupancy paid
        instead of two, and no redundant resubmission.
        """
        return (
            abandoned is not None
            and abandoned.done()
            and not abandoned.cancelled()
            and abandoned.exception() is None
        )

    def _count_error(self, registry, exc: Exception) -> None:
        if isinstance(exc, FuturesTimeoutError):
            registry.counter("resilience.timeouts").add(1)
        elif isinstance(exc, BrokenProcessPool):
            registry.counter("resilience.broken_pools").add(1)
        elif isinstance(exc, ChaosError):
            registry.counter("resilience.chaos_faults").add(1)
        registry.counter("resilience.errors").add(1)

    def _recover_pool(
        self,
        statuses,
        futures,
        clean,
        parts,
        registry,
        current: int,
        segments: _BatchSegments | None = None,
        pools: dict | None = None,
    ) -> None:
        """Replace a broken process pool and resubmit lost shards.

        Only execution genuinely lost to the breakage is resubmitted: a
        future that already resolved — with a result *or* with a real
        error (say a ``ChaosError`` raised just before the crash) — keeps
        its outcome, and the collector's retry/fallback ladder surfaces
        and accounts for it with proper backoff.  Lost shards go back on
        fresh attempt indices (a retried chaos draw must not replay the
        crash) and count as retries, since their execution produced no
        result.  Shard ``current`` (whose ``result()`` surfaced the
        breakage) is excluded: the collector owns its accounting and
        resubmission.

        Under shm handoff **both** planes are re-shared with fresh names
        first: the dead pool's workers can no longer hold the old
        mappings hostage, and fresh names guarantee resubmitted shards
        never attach to a segment a crashing worker might have been
        mid-write on.  Spans already completed into the old result plane
        are carried over by copy, so their kept futures stay collectable.
        Telemetry counts the re-shares like any other segment, so
        ``batch.shm.segments - 2`` is the recovery count per shm batch.
        """
        # Replace only the pool this batch's broken future was actually
        # submitted on.  Pipelined batches share one pool: if a sibling
        # batch already recovered and installed a fresh executor,
        # replacing unconditionally would shut the healthy replacement
        # down mid-flight and cascade the breakage back to the sibling.
        stale = pools.get(current) if pools is not None else None
        pool = self._replace_pool(stale)
        if segments is not None and segments.request is not None:
            old_request, old_result = segments.request, segments.result
            segments.request = self._share_batch(clean, registry)
            if old_result is not None:
                segments.result = self._share_output(clean.shape[0], registry)
                # A worker that finished before the break already wrote
                # its span; its kept future's payload must still resolve
                # against the new plane.
                segments.result.view()[:] = old_result.view()
            self._arena.discard(old_request)
            self._arena.discard(old_result)
        for status in statuses:
            j = status.index
            if j == current or status.status != "pending" or parts[j] is not None:
                continue
            future = futures.get(j)
            if future is None:
                continue  # never submitted
            if (
                future.done()
                and not future.cancelled()
                and not isinstance(future.exception(), BrokenProcessPool)
            ):
                continue  # a result or a real pre-break error survived
            status.attempts += 1
            status.retries += 1
            status.errors.append("BrokenProcessPool")
            registry.counter("resilience.retries").add(1)
            try:
                futures[j] = self._submit(
                    pool,
                    j,
                    status.attempts,
                    clean[status.start : status.stop],
                    span=(status.start, status.stop),
                    segments=segments,
                )
                if pools is not None:
                    pools[j] = pool
            except (BrokenProcessPool, RuntimeError):
                # The replacement pool broke under us (a just-resubmitted
                # shard crashed already), or a concurrent batch's
                # recovery shut it down between our replace and this
                # submit (RuntimeError: cannot schedule new futures
                # after shutdown).  Swap in the live pool and leave the
                # shard unsubmitted — the collector enqueues it lazily.
                futures[j] = None
                pool = self._replace_pool(pool)

    # -- assembly -------------------------------------------------------
    def _assemble(self, good, parts, report: BatchReport) -> BatchResult:
        registry = get_registry()
        n = report.batch
        n_classes = self.engine.artifacts.n_classes
        computed = [p for p in parts if p is not None]
        dtype = computed[0].dtype if computed else np.int64
        scores = np.zeros((n, n_classes), dtype=dtype)
        known = np.zeros(n, dtype=bool)
        for status, part in zip(report.shards, parts):
            batch_rows = good[status.start : status.stop]
            if part is not None:
                scores[batch_rows] = part
                known[batch_rows] = True
            else:
                report.failed_samples.extend(int(r) for r in batch_rows)
        predictions = np.where(
            known, scores.argmax(axis=1), QUARANTINED_LABEL
        ).astype(np.int64)
        registry.gauge("resilience.degraded").set(1.0 if report.degraded else 0.0)
        self.last_report = report
        if report.breaker_open:
            raise CircuitOpenError(
                f"circuit breaker open after {self.policy.breaker_threshold} "
                "consecutive shard failures",
                report,
            )
        return BatchResult(scores=scores, predictions=predictions, report=report)


# ---------------------------------------------------------------------------
# serving-path prediction for fault sweeps
# ---------------------------------------------------------------------------
def serving_predict_fn(
    mode: str = "fast",
    executor: str = "thread",
    workers: int | None = None,
    shard_size: int | None = None,
    policy: RetryPolicy | None = None,
    chaos: ChaosSpec | None = None,
):
    """A ``predict_fn`` for :func:`repro.hw.faults.fault_sweep` that runs
    every prediction through the packed serving path.

    Each call builds a :class:`~repro.core.inference.BitPackedUniVSA`
    over the (possibly corrupted) artifacts and serves the batch through
    a :class:`ResilientBatchRunner` — so a fault sweep measures the
    deployed runtime end to end, not the artifact-level reference path.
    """
    from repro.core.inference import BitPackedUniVSA

    def predict(artifacts, levels: np.ndarray) -> np.ndarray:
        engine = BitPackedUniVSA(artifacts, mode=mode)
        with ResilientBatchRunner(
            engine,
            shard_size=shard_size,
            workers=workers,
            executor=executor,
            policy=policy,
            chaos=chaos,
        ) as runner:
            return runner.run(levels).predictions

    return predict
