"""Throughput benchmarking of the packed serving engines.

``bench_throughput`` trains a small model on a registered benchmark and
measures samples/sec of a fixed-size ``packed.classify`` workload on
five engine configurations:

* ``seed`` — the legacy stage pipeline on the legacy bit kernels
  (multiply-accumulate pack + LUT popcount), single-threaded: the seed
  engine's exact arithmetic, so speedups are measured against a live
  baseline on the same machine rather than asserted;
* ``fast`` — the overhauled packed pipeline on the fast kernels,
  single-threaded (kernel + pipeline win in isolation);
* ``fused`` — the single-pass tiled pipeline (byte-LUT conv match,
  cache-resident intermediates), single-threaded: the data-movement win
  in isolation;
* ``parallel`` — the fast engine under a
  :class:`~repro.runtime.resilience.ResilientBatchRunner` worker pool
  with the handoff pinned to by-value (``shm=False``): the PR 3
  deployment path, kept as the continuity baseline — for process
  executors that means pickle-per-shard, exactly what the shm stage
  replaces.
  ``REPRO_CHAOS`` turns the same bench into a chaos smoke test: faults
  are injected at the shard seam and the report must still account for
  every sample;
* ``shm`` — the fused engine under a **process** pool with zero-copy
  shared-memory shard handoff: the full deployment path this PR builds.
  The same chaos spec applies, so a crash-chaos bench exercises pool
  replacement + segment re-share end to end.

With the execution planner active (``REPRO_PLAN`` or the ``plan``
argument) a sixth ``planned`` stage runs the calibrated winning
configuration — fused engine at the calibrated conv tile budget under
the calibrated executor — through the resilient runner, and joins the
bit-exactness assertion like every other stage.

The report also carries each mode's analytic memory-traffic model
(``traffic``) and the shm run's handoff counters, which the ledger
record surfaces as ``bytes_shared`` / ``bytes_pickled_estimate`` /
``intermediates_peak_mb`` so ``repro obs compare`` can gate
data-movement regressions alongside throughput.

Every engine classifies the same batch; the bench asserts their
predictions are identical before it reports a single number — a
throughput result from a non-bit-exact engine would be meaningless.
Per-engine stage breakdowns are captured in separate registries so seed
and fast p95s are directly comparable in the JSON sidecar, and the CLI
(``python -m repro bench-throughput``) appends one ``task="throughput"``
record to the run ledger, which ``write_trajectories`` folds into
``BENCH_throughput.json`` and ``python -m repro obs compare`` gates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.obs import MetricsRegistry, stage_breakdown, using_registry
from repro.vsa.kernels import kernel_info, publish_kernel_metrics, using_kernels

from .batch import resolve_workers
from .chaos import ChaosSpec
from .resilience import ResilientBatchRunner, RetryPolicy

__all__ = ["EngineSample", "ThroughputReport", "bench_throughput"]


@dataclass
class EngineSample:
    """Measured throughput of one engine configuration."""

    name: str
    samples_per_s: float
    best_wall_s: float
    mean_wall_s: float
    runs: int
    stages: dict = field(default_factory=dict, repr=False)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "samples_per_s": self.samples_per_s,
            "best_wall_s": self.best_wall_s,
            "mean_wall_s": self.mean_wall_s,
            "runs": self.runs,
            "stages": self.stages,
        }


@dataclass
class ThroughputReport:
    """Everything one throughput bench measured."""

    benchmark: str
    batch: int
    repeats: int
    workers: int
    shard_size: int | None
    executor: str
    accuracy: float
    kernels: dict
    engines: dict[str, EngineSample]
    config: object = None  # the run's UniVSAConfig (ledger provenance)
    registry: MetricsRegistry | None = field(default=None, repr=False)
    resilience: dict = field(default_factory=dict)  # BatchReport of the last run
    chaos: dict = field(default_factory=dict)  # active ChaosSpec (empty = off)
    prediction_mismatches: int = 0  # non-excluded divergences (bitflip chaos only)
    shm: dict = field(default_factory=dict)  # shm stage: handoff counters + report
    traffic: dict = field(default_factory=dict)  # per-mode analytic roofline models
    plan: dict = field(default_factory=dict)  # active ExecutionPlan (empty = off)

    @property
    def speedup_vs_seed(self) -> float:
        seed = self.engines.get("seed")
        best = self.engines.get("parallel") or self.engines.get("fast")
        if seed is None or best is None or seed.samples_per_s <= 0:
            return 0.0
        return best.samples_per_s / seed.samples_per_s

    @property
    def speedup_shm_vs_parallel(self) -> float:
        """The zero-copy + fused deployment path vs the PR 3 parallel path."""
        parallel = self.engines.get("parallel")
        shm = self.engines.get("shm")
        if parallel is None or shm is None or parallel.samples_per_s <= 0:
            return 0.0
        return shm.samples_per_s / parallel.samples_per_s

    def ledger_metrics(self) -> dict[str, float]:
        """The flat metric dict one ledger record carries."""
        metrics: dict[str, float] = {
            "batch": float(self.batch),
            "workers": float(self.workers),
            "accuracy": self.accuracy,
            "speedup_vs_seed": self.speedup_vs_seed,
        }
        for name, engine in self.engines.items():
            suffix = "" if name == "parallel" else f"_{name}"
            metrics[f"samples_per_s{suffix}"] = engine.samples_per_s
        if "shm" in self.engines:
            metrics["speedup_shm_vs_parallel"] = self.speedup_shm_vs_parallel
        if self.shm:
            metrics["bytes_shared"] = float(self.shm.get("bytes_shared", 0))
            metrics["bytes_pickled_estimate"] = float(
                self.shm.get("bytes_pickled_estimate", 0)
            )
        fused_model = self.traffic.get("fused")
        if fused_model:
            metrics["intermediates_peak_mb"] = fused_model["peak_intermediate_mb"]
            metrics["traffic_bytes_per_sample_fused"] = fused_model[
                "bytes_per_sample"
            ]
        fast_model = self.traffic.get("fast")
        if fast_model:
            metrics["traffic_bytes_per_sample_fast"] = fast_model["bytes_per_sample"]
        if self.plan:
            metrics["plan.samples_per_s"] = float(
                self.plan.get("samples_per_s", 0.0)
            )
            metrics["plan.conv_tile_mb"] = float(
                self.plan.get("conv_tile_mb", 0.0)
            )
            metrics["plan.max_inflight"] = float(
                self.plan.get("max_inflight", 1)
            )
        if self.resilience:
            metrics["resilience_retries"] = float(
                self.resilience.get("retries", 0)
            )
            metrics["resilience_fallbacks"] = float(
                self.resilience.get("fallbacks", 0)
            )
            metrics["resilience_quarantined"] = float(
                len(self.resilience.get("quarantined", {}))
            )
            metrics["resilience_degraded"] = float(
                bool(self.resilience.get("degraded", False))
            )
        return metrics

    def as_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "batch": self.batch,
            "repeats": self.repeats,
            "workers": self.workers,
            "shard_size": self.shard_size,
            "executor": self.executor,
            "accuracy": self.accuracy,
            "kernels": self.kernels,
            "speedup_vs_seed": self.speedup_vs_seed,
            "engines": {name: e.as_dict() for name, e in self.engines.items()},
            "resilience": self.resilience,
            "chaos": self.chaos,
            "prediction_mismatches": self.prediction_mismatches,
            "shm": self.shm,
            "traffic": self.traffic,
            "plan": self.plan,
        }

    def render(self) -> str:
        from repro.utils.tables import render_kv, render_table

        seed = self.engines.get("seed")
        rows = []
        for name in ("seed", "fast", "fused", "parallel", "shm", "planned"):
            engine = self.engines.get(name)
            if engine is None:
                continue
            relative = (
                engine.samples_per_s / seed.samples_per_s
                if seed is not None and seed.samples_per_s > 0
                else 0.0
            )
            rows.append(
                [
                    name,
                    f"{engine.samples_per_s:.1f}",
                    f"{engine.best_wall_s * 1e3:.2f} ms",
                    f"{relative:.2f}x",
                ]
            )
        fields = {
            "benchmark": self.benchmark,
            "batch / repeats": f"{self.batch} / {self.repeats}",
            "workers (executor)": f"{self.workers} ({self.executor})",
            "kernels": f"{self.kernels['set']} "
            f"(pack={self.kernels['pack']}, popcount={self.kernels['popcount']})",
            "accuracy": f"{self.accuracy:.4f}",
            "speedup vs seed": f"{self.speedup_vs_seed:.2f}x",
        }
        if "shm" in self.engines:
            fields["shm+fused vs parallel"] = f"{self.speedup_shm_vs_parallel:.2f}x"
        if self.shm:
            fields["shm handoff"] = (
                f"{self.shm.get('bytes_shared', 0)} B shared vs "
                f"{self.shm.get('bytes_pickled_estimate', 0)} B pickled/batch"
            )
        if self.plan:
            fields["plan"] = (
                f"{self.plan.get('executor', '?')} · "
                f"tile {self.plan.get('conv_tile_mb', 0):g} MB · "
                f"inflight {self.plan.get('max_inflight', 1)} "
                f"(key {self.plan.get('key', '')})"
            )
        if self.chaos:
            fields["chaos"] = ", ".join(
                f"{k}={v}" for k, v in self.chaos.items() if v
            )
        if self.resilience:
            fields["resilience"] = (
                f"retries={self.resilience.get('retries', 0)} "
                f"fallbacks={self.resilience.get('fallbacks', 0)} "
                f"quarantined={len(self.resilience.get('quarantined', {}))} "
                f"mismatches={self.prediction_mismatches}"
            )
        header = render_kv(fields, title="throughput bench — packed.classify")
        table = render_table(
            ["engine", "samples/s", "best batch wall", "vs seed"],
            rows,
            title="engines",
        )
        return header + "\n\n" + table


def _time_engine(run_scores, batch: np.ndarray, repeats: int, warmup: int):
    """(best_wall, mean_wall, last_scores) over ``repeats`` timed runs."""
    for _ in range(max(0, warmup)):
        scores = run_scores(batch)
    walls = []
    for _ in range(max(1, repeats)):
        start = perf_counter()
        scores = run_scores(batch)
        walls.append(perf_counter() - start)
    return min(walls), float(np.mean(walls)), scores


def bench_throughput(
    benchmark: str,
    batch: int = 256,
    repeats: int = 3,
    warmup: int = 1,
    workers: int | None = None,
    shard_size: int | None = None,
    executor: str = "thread",
    n_train: int = 120,
    n_test: int = 60,
    epochs: int = 2,
    seed: int = 0,
    shm: bool | None = None,
    plan: str | None = None,
) -> ThroughputReport:
    """Train a small model on ``benchmark`` and measure samples/sec.

    ``plan`` selects the execution planner: ``None`` defers to
    ``REPRO_PLAN``, ``"off"`` disables it, ``"auto"`` calibrates (or
    reuses the cache), a path loads a specific plan file.  With a plan
    active a sixth ``planned`` stage runs the calibrated configuration
    through the resilient runner and joins the bit-exactness assertion.
    """
    from repro.core.inference import BitPackedUniVSA
    from repro.core.pipeline import run_benchmark
    from repro.data.registry import get_benchmark
    from repro.utils.trainloop import TrainConfig

    spec = get_benchmark(benchmark)
    run = run_benchmark(
        benchmark,
        train_config=TrainConfig(
            epochs=epochs,
            lr=0.008,
            seed=seed,
            balance_classes=spec.spec.class_balance is not None,
        ),
        n_train=n_train,
        n_test=n_test,
        seed=seed,
    )
    x_test, y_test = run.data.x_test, run.data.y_test
    reps = -(-batch // max(1, len(x_test)))
    levels = np.concatenate([x_test] * reps)[:batch]
    labels = np.concatenate([y_test] * reps)[:batch]
    workers = resolve_workers(workers)

    engines: dict[str, EngineSample] = {}
    predictions: dict[str, np.ndarray] = {}

    # seed: legacy pipeline on legacy kernels, single thread.
    seed_engine = BitPackedUniVSA(run.artifacts, mode="legacy")
    seed_registry = MetricsRegistry()
    with using_kernels("legacy"), using_registry(seed_registry):
        best, mean, scores = _time_engine(seed_engine.scores, levels, repeats, warmup)
    engines["seed"] = EngineSample(
        "seed", batch / best, best, mean, repeats,
        stages=stage_breakdown(seed_registry, prefix="packed."),
    )
    predictions["seed"] = scores.argmax(axis=1)

    # fast: overhauled pipeline, fast kernels, single thread.
    fast_engine = BitPackedUniVSA(run.artifacts, mode="fast")
    fast_registry = MetricsRegistry()
    with using_kernels("fast"), using_registry(fast_registry):
        best, mean, scores = _time_engine(fast_engine.scores, levels, repeats, warmup)
    engines["fast"] = EngineSample(
        "fast", batch / best, best, mean, repeats,
        stages=stage_breakdown(fast_registry, prefix="packed."),
    )
    predictions["fast"] = scores.argmax(axis=1)

    # fused: single-pass tiled pipeline, fast kernels, single thread.
    fused_engine = BitPackedUniVSA(run.artifacts, mode="fused")
    fused_registry = MetricsRegistry()
    with using_kernels("fast"), using_registry(fused_registry):
        fused_engine.publish_traffic_metrics(fused_registry, batch=batch)
        best, mean, scores = _time_engine(fused_engine.scores, levels, repeats, warmup)
    engines["fused"] = EngineSample(
        "fused", batch / best, best, mean, repeats,
        stages=stage_breakdown(fused_registry, prefix="packed."),
    )
    predictions["fused"] = scores.argmax(axis=1)

    # parallel: fast engine under the fault-tolerant worker pool.  Chaos
    # comes from the environment (REPRO_CHAOS) so the same bench doubles
    # as the chaos-smoke entrypoint: under injected faults the runner must
    # still return an order-preserving batch with a populated report.
    chaos = ChaosSpec.from_env()
    parallel_registry = MetricsRegistry()
    with using_kernels("fast"), using_registry(
        parallel_registry
    ), ResilientBatchRunner(
        fast_engine,
        shard_size=shard_size,
        workers=workers,
        executor=executor,
        policy=RetryPolicy.from_env(),
        chaos=chaos,
        # Pinned to the by-value handoff: this stage is the pre-zero-copy
        # baseline the shm stage is judged against (no-op for threads,
        # pickle-per-shard for process executors).
        shm=False,
    ) as runner:
        publish_kernel_metrics(parallel_registry)
        best, mean, result = _time_engine(runner.run, levels, repeats, warmup)
    stages = stage_breakdown(parallel_registry, prefix="packed.")
    stages.update(stage_breakdown(parallel_registry, prefix="batch."))
    engines["parallel"] = EngineSample(
        "parallel", batch / best, best, mean, repeats, stages=stages
    )
    report = result.report
    predictions["parallel"] = result.predictions

    # shm: the fused engine under a process pool with zero-copy handoff —
    # the deployment path this bench exists to certify.  Runs under the
    # same chaos spec, so a crash bench exercises pool replacement +
    # segment re-share with the report still accounting for every sample.
    shm_registry = MetricsRegistry()
    with using_kernels("fast"), using_registry(shm_registry), ResilientBatchRunner(
        fused_engine,
        shard_size=shard_size,
        workers=workers,
        executor="process",
        policy=RetryPolicy.from_env(),
        chaos=chaos,
        shm=shm,
    ) as runner:
        publish_kernel_metrics(shm_registry)
        best, mean, shm_result = _time_engine(runner.run, levels, repeats, warmup)
    shm_stages = stage_breakdown(shm_registry, prefix="packed.")
    shm_stages.update(stage_breakdown(shm_registry, prefix="batch."))
    engines["shm"] = EngineSample(
        "shm", batch / best, best, mean, repeats, stages=shm_stages
    )
    shm_report = shm_result.report
    predictions["shm"] = shm_result.predictions
    runs_timed = max(0, warmup) + max(1, repeats)
    shm_info = {
        # Counters accumulate over warmup + timed runs; per-batch numbers
        # are what the roofline compares against the pickled estimate.
        "bytes_shared": int(
            shm_registry.counter("batch.shm.bytes_shared").value // max(1, runs_timed)
        ),
        "segments": int(shm_registry.counter("batch.shm.segments").value),
        "attach": int(shm_registry.counter("batch.shm.attach").value),
        "bytes_pickled_estimate": int(levels.nbytes),
        "report": shm_report.as_dict(),
    }
    traffic = {
        mode: BitPackedUniVSA(run.artifacts, mode=mode).traffic_model(batch=batch)
        for mode in ("legacy", "fast", "fused")
    }

    # planned: the planner's winning configuration run end to end —
    # fused engine at the calibrated tile budget under the calibrated
    # executor — so "the plan is fast AND bit-exact" is asserted by the
    # same harness that certifies the hand-tuned stages.
    from repro.runtime.plan import resolve_plan

    environ = None if plan is None else {"REPRO_PLAN": plan}
    active_plan = resolve_plan(fused_engine, batch=batch, environ=environ)
    plan_info: dict = {}
    planned_report = None
    if active_plan is not None:
        planned_engine = BitPackedUniVSA(
            run.artifacts, mode="fused", conv_tile_mb=active_plan.conv_tile_mb
        )
        runner_kwargs = active_plan.runner_kwargs()
        # crash chaos hard-kills pool workers; it only exists on process
        # executors, so other planned executors run it disabled.
        planned_chaos = (
            chaos
            if (not chaos.has_crash or runner_kwargs.get("executor") == "process")
            else ChaosSpec()
        )
        planned_registry = MetricsRegistry()
        with using_kernels("fast"), using_registry(
            planned_registry
        ), ResilientBatchRunner(
            planned_engine,
            policy=RetryPolicy.from_env(),
            chaos=planned_chaos,
            **runner_kwargs,
        ) as runner:
            best, mean, planned_result = _time_engine(
                runner.run, levels, repeats, warmup
            )
        planned_stages = stage_breakdown(planned_registry, prefix="packed.")
        planned_stages.update(stage_breakdown(planned_registry, prefix="batch."))
        engines["planned"] = EngineSample(
            "planned", batch / best, best, mean, repeats, stages=planned_stages
        )
        planned_report = planned_result.report
        predictions["planned"] = planned_result.predictions
        plan_info = active_plan.as_dict()

    # A throughput number from a non-bit-exact engine would be garbage:
    # every engine must classify the workload identically.  Samples a
    # resilient runner excluded (quarantined or failed shards) carry the
    # sentinel label and are compared against nothing — each parallel
    # stage is masked by its own report; under bitflip chaos divergence
    # is the injected corruption itself, so it is counted and reported
    # instead of asserted.
    included = np.ones(batch, dtype=bool)
    included[report.excluded] = False
    shm_included = np.ones(batch, dtype=bool)
    shm_included[shm_report.excluded] = False
    masks = {
        "fast": included,
        "fused": np.ones(batch, dtype=bool),
        "parallel": included,
        "shm": shm_included,
    }
    if planned_report is not None:
        planned_included = np.ones(batch, dtype=bool)
        planned_included[planned_report.excluded] = False
        masks["planned"] = planned_included
    mismatches = 0
    for name, mask in masks.items():
        diverged = int(
            (predictions[name][mask] != predictions["seed"][mask]).sum()
        )
        if chaos.bitflip_rate > 0:
            mismatches = max(mismatches, diverged)
        elif diverged:
            raise AssertionError(
                f"engine {name!r} diverged from the seed engine on "
                f"{diverged} non-excluded samples"
            )
    accuracy = (
        float((predictions["parallel"][included] == labels[included]).mean())
        if included.any()
        else 0.0
    )

    return ThroughputReport(
        benchmark=benchmark,
        batch=batch,
        repeats=repeats,
        workers=workers,
        shard_size=shard_size,
        executor=executor,
        accuracy=accuracy,
        kernels=kernel_info(),
        engines=engines,
        config=run.config,
        registry=parallel_registry,
        resilience=report.as_dict(),
        chaos=chaos.as_dict() if chaos.enabled else {},
        prediction_mismatches=mismatches,
        shm=shm_info,
        traffic=traffic,
        plan=plan_info,
    )
