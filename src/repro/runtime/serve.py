"""Online serving front-end: dynamic micro-batching under a latency budget.

The packed datapath earns its 19.2x speedup on *batches*, but production
BCI traffic arrives one sample at a time.  :class:`MicroBatchServer`
closes that gap with the classic Clipper-style adaptive batching shape
(Crankshaw et al., NSDI'17): concurrent clients ``await submit(sample)``
into a request queue, and a single flusher coroutine coalesces arrivals
into micro-batches that are flushed when either

* the batch reaches ``ServePolicy.max_batch`` samples (``flush.full``), or
* the *oldest* queued request is about to run out of latency budget —
  ``deadline_ms`` minus a ``flush_margin_ms`` headroom reserved for batch
  execution (``flush.deadline``).

Each micro-batch executes on a
:class:`~repro.runtime.resilience.ResilientBatchRunner` in a dedicated
worker thread (one batch in flight at a time; the runner parallelizes
*within* the batch across its own pool), and per-sample scores/labels —
including quarantine sentinels — are fanned back to the right futures in
arrival order.

Overload is handled by admission control, not collapse: past
``max_queue`` queued samples a request is immediately answered with
``status="rejected"`` (load shedding — the SLO-aware choice of Clockwork,
OSDI'20: an answer that would blow the deadline is worth less than a fast
no), and a draining server likewise rejects new arrivals while flushing
what it already accepted.  Every event lands in ``serve.*`` instruments
(requests / accepted / rejected / answered / failed / quarantined
counters, queue-depth gauge, ``serve.latency`` and ``serve.batch``
histograms), which the run ledger harvests into every record.

:func:`serve_tcp` puts a newline-delimited-JSON TCP front end over the
server for the ``python -m repro serve`` daemon;
:mod:`repro.runtime.loadgen` drives the same server in-process for the
``serve-bench`` latency-vs-load harness.
"""

from __future__ import annotations

import asyncio
import json
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.obs import get_registry, snapshot, stage_timer
from repro.obs.slo import SLO, SLOTracker

from .resilience import QUARANTINED_LABEL, CircuitOpenError

__all__ = [
    "ServePolicy",
    "ServeResponse",
    "MicroBatchServer",
    "serve_tcp",
]


@dataclass(frozen=True)
class ServePolicy:
    """Knobs of the micro-batching front end.

    ``deadline_ms`` is each request's end-to-end latency budget; the
    flusher releases a partial batch once the oldest queued request has
    only ``flush_margin_ms`` of that budget left (headroom reserved for
    batch execution).  ``max_batch`` caps samples per micro-batch and
    ``max_queue`` caps queued samples — arrivals beyond it are shed with
    an explicit ``rejected`` response instead of growing an unbounded
    backlog.
    """

    max_batch: int = 64
    deadline_ms: float = 50.0
    flush_margin_ms: float = 5.0
    max_queue: int = 1024

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if self.flush_margin_ms < 0:
            raise ValueError("flush_margin_ms must be >= 0")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")

    @classmethod
    def from_env(cls, environ=None) -> "ServePolicy":
        """Policy from ``REPRO_SERVE_BATCH`` / ``REPRO_SERVE_DEADLINE_MS``
        / ``REPRO_SERVE_MARGIN_MS`` / ``REPRO_SERVE_QUEUE`` (unset keys
        keep the defaults)."""
        env = os.environ if environ is None else environ

        def _get(key, cast, default):
            raw = env.get(key)
            if raw is None or not str(raw).strip():
                return default
            try:
                return cast(raw)
            except (TypeError, ValueError):
                return default

        return cls(
            max_batch=_get("REPRO_SERVE_BATCH", int, cls.max_batch),
            deadline_ms=_get("REPRO_SERVE_DEADLINE_MS", float, cls.deadline_ms),
            flush_margin_ms=_get("REPRO_SERVE_MARGIN_MS", float, cls.flush_margin_ms),
            max_queue=_get("REPRO_SERVE_QUEUE", int, cls.max_queue),
        )

    @property
    def flush_after_s(self) -> float:
        """Queue-time budget before a partial batch must flush."""
        return max(0.0, (self.deadline_ms - self.flush_margin_ms) / 1000.0)


@dataclass(frozen=True)
class ServeResponse:
    """One answered request.

    ``status`` is ``"ok"`` (served), ``"quarantined"`` (invalid input,
    sentinel label), ``"failed"`` (the serving ladder exhausted itself),
    or ``"rejected"`` (shed by admission control before queuing).
    ``latency_s`` is queue + execution time (0 for rejected requests) and
    ``batch_size`` the micro-batch the sample rode in.
    """

    status: str
    label: int
    scores: np.ndarray | None
    latency_s: float
    batch_size: int = 0
    reason: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class _Request:
    """One queued sample awaiting its micro-batch."""

    levels: np.ndarray
    arrival: float
    future: asyncio.Future = field(repr=False)


class MicroBatchServer:
    """Coalesces concurrent single-sample submissions into micro-batches.

    Built over a :class:`~repro.runtime.resilience.ResilientBatchRunner`
    (whose retry/fallback/quarantine ladder and chaos seam the serve path
    inherits wholesale).  Use as an async context manager::

        with ResilientBatchRunner(engine) as runner:
            async with MicroBatchServer(runner, policy) as server:
                response = await server.submit(sample)

    ``submit`` must be called from the event loop that ``start``-ed the
    server.  The runner's lifecycle belongs to the caller.
    """

    def __init__(
        self,
        runner,
        policy: ServePolicy | None = None,
        slo: SLO | SLOTracker | None = None,
    ) -> None:
        self.runner = runner
        self.policy = policy if policy is not None else ServePolicy.from_env()
        if isinstance(slo, SLOTracker):
            self.slo = slo
        else:
            self.slo = SLOTracker(slo if slo is not None else SLO.from_env())
        self._pending: list[_Request] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._flusher: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._closing = False
        self._inflight = 0

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "MicroBatchServer":
        """Spawn the flusher; idempotent ``drain`` is the counterpart."""
        if self._flusher is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._closing = False
        # One executor thread: micro-batches serialize here and fan out
        # across the runner's own worker pool inside run().
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._flusher = self._loop.create_task(self._flush_loop())
        return self

    async def drain(self) -> None:
        """Graceful shutdown: reject new arrivals, answer everything
        already accepted, then stop the flusher (idempotent)."""
        if self._flusher is None:
            return
        self._closing = True
        self._wake.set()
        flusher, self._flusher = self._flusher, None
        await flusher
        executor, self._executor = self._executor, None
        executor.shutdown(wait=True)
        get_registry().gauge("serve.queue_depth").set(0.0)

    async def __aenter__(self) -> "MicroBatchServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.drain()

    # -- request intake -------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Samples currently queued (not yet flushed into a batch)."""
        return len(self._pending)

    async def submit(self, levels: np.ndarray) -> ServeResponse:
        """Serve one sample; resolves when its micro-batch answers.

        Accepts one sample shaped ``input_shape`` (or ``(1,) + shape``).
        An over-loaded or draining server answers immediately with
        ``status="rejected"`` — shedding is an explicit response, never an
        exception.
        """
        if self._flusher is None:
            raise RuntimeError("server is not started")
        levels = np.asarray(levels)
        expected = tuple(self.runner.engine.input_shape)
        if levels.shape == (1,) + expected:
            levels = levels[0]
        elif levels.shape != expected:
            raise ValueError(
                f"submit expects one sample shaped {expected} "
                f"(got {levels.shape}); use submit_many for bursts"
            )
        registry = get_registry()
        registry.counter("serve.requests").add(1)
        if self._closing or len(self._pending) >= self.policy.max_queue:
            registry.counter("serve.rejected").add(1)
            # A shed request is a server-side SLO violation: the client
            # asked for a valid prediction and did not get one.
            self.slo.record(0.0, ok=False)
            return ServeResponse(
                status="rejected",
                label=QUARANTINED_LABEL,
                scores=None,
                latency_s=0.0,
                reason="draining" if self._closing else "queue-full",
            )
        registry.counter("serve.accepted").add(1)
        request = _Request(
            levels=levels,
            arrival=self._loop.time(),
            future=self._loop.create_future(),
        )
        self._pending.append(request)
        registry.gauge("serve.queue_depth").set(len(self._pending))
        self._wake.set()
        return await request.future

    async def submit_many(self, levels: np.ndarray) -> list[ServeResponse]:
        """Serve a small burst ``(k,) + input_shape``; per-sample admission."""
        levels = np.asarray(levels)
        expected = tuple(self.runner.engine.input_shape)
        if levels.ndim != len(expected) + 1 or levels.shape[1:] != expected:
            raise ValueError(
                f"submit_many expects (k,) + {expected} (got {levels.shape})"
            )
        return list(
            await asyncio.gather(*(self.submit(sample) for sample in levels))
        )

    # -- the flusher ----------------------------------------------------
    async def _flush_loop(self) -> None:
        policy = self.policy
        while True:
            if not self._pending:
                if self._closing:
                    break
                await self._wake.wait()
                self._wake.clear()
                continue
            now = self._loop.time()
            flush_at = self._pending[0].arrival + policy.flush_after_s
            if (
                len(self._pending) < policy.max_batch
                and now < flush_at
                and not self._closing
            ):
                # Wait for more arrivals, but never past the oldest
                # request's remaining budget.
                try:
                    await asyncio.wait_for(self._wake.wait(), flush_at - now)
                except asyncio.TimeoutError:
                    pass
                self._wake.clear()
                continue
            if len(self._pending) >= policy.max_batch:
                trigger = "full"
            elif now >= flush_at:
                trigger = "deadline"
            else:
                trigger = "drain"
            batch = self._pending[: policy.max_batch]
            del self._pending[: policy.max_batch]
            registry = get_registry()
            registry.counter(f"serve.flush.{trigger}").add(1)
            registry.gauge("serve.queue_depth").set(len(self._pending))
            await self._execute(batch)

    async def _execute(self, batch: list[_Request]) -> None:
        registry = get_registry()
        registry.counter("serve.batches").add(1)
        registry.counter("serve.batched_samples").add(len(batch))
        self._inflight = len(batch)
        registry.gauge("serve.inflight").set(len(batch))
        levels = np.stack([request.levels for request in batch])
        try:
            result = await self._loop.run_in_executor(
                self._executor, self._run_batch, levels
            )
        except CircuitOpenError:
            registry.counter("serve.breaker_trips").add(1)
            self._fail_batch(batch, "circuit-open")
            return
        except Exception as exc:  # noqa: BLE001 — a batch must not kill the daemon
            self._fail_batch(batch, type(exc).__name__)
            return
        finally:
            self._inflight = 0
            registry.gauge("serve.inflight").set(0.0)
        report = result.report
        failed_rows = set(report.failed_samples)
        now = self._loop.time()
        latency_hist = registry.histogram("serve.latency")
        for row, request in enumerate(batch):
            latency = now - request.arrival
            if row in report.quarantined:
                status, reason = "quarantined", report.quarantined[row]
                registry.counter("serve.quarantined").add(1)
                # Invalid input is a *client* error — it must not burn
                # the server's error budget.
                self.slo.record_client_error()
            elif row in failed_rows:
                status, reason = "failed", "shard-failed"
                registry.counter("serve.failed").add(1)
                self.slo.record(latency, ok=False)
            else:
                status, reason = "ok", ""
                registry.counter("serve.answered").add(1)
                self.slo.record(latency, ok=True)
            latency_hist.observe(latency)
            self._resolve(
                request,
                ServeResponse(
                    status=status,
                    label=int(result.predictions[row]),
                    scores=result.scores[row],
                    latency_s=latency,
                    batch_size=len(batch),
                    reason=reason,
                ),
            )
        self.slo.publish(registry)

    def _run_batch(self, levels: np.ndarray):
        """Executor-thread body: one resilient batch under a serve span."""
        with stage_timer("serve.batch"):
            return self.runner.run(levels)

    def _fail_batch(self, batch: list[_Request], reason: str) -> None:
        registry = get_registry()
        now = self._loop.time()
        for request in batch:
            registry.counter("serve.failed").add(1)
            self.slo.record(now - request.arrival, ok=False)
            self._resolve(
                request,
                ServeResponse(
                    status="failed",
                    label=QUARANTINED_LABEL,
                    scores=None,
                    latency_s=now - request.arrival,
                    batch_size=len(batch),
                    reason=reason,
                ),
            )
        self.slo.publish(registry)

    @staticmethod
    def _resolve(request: _Request, response: ServeResponse) -> None:
        if not request.future.done():  # a cancelled client still drains
            request.future.set_result(response)

    # -- admin plane ----------------------------------------------------
    @property
    def inflight(self) -> int:
        """Samples in the micro-batch currently executing (0 when idle)."""
        return self._inflight

    def admin_snapshot(self) -> dict:
        """Live operational state for the admin endpoint / ``repro top``.

        Queue depth, in-flight batch size, the serving policy, the SLO
        error-budget state, and the active registry's full counter /
        gauge / stage-summary snapshot — which, thanks to the worker
        harvest, includes worker-side ``packed.*`` stage time and
        per-worker kernel gauges.
        """
        registry = get_registry()
        state = snapshot(registry)
        return {
            "queue_depth": self.queue_depth,
            "inflight": self._inflight,
            "draining": self._closing,
            "policy": {
                "max_batch": self.policy.max_batch,
                "deadline_ms": self.policy.deadline_ms,
                "flush_margin_ms": self.policy.flush_margin_ms,
                "max_queue": self.policy.max_queue,
            },
            "slo": self.slo.state(),
            "counters": state["counters"],
            "gauges": state["gauges"],
            "stages": state["stages"],
        }


# ---------------------------------------------------------------------------
# TCP front end (newline-delimited JSON)
# ---------------------------------------------------------------------------
def _admin_response(server: MicroBatchServer, payload: dict) -> dict:
    """Answer one ``{"op": ...}`` admin request (no queueing, no batch)."""
    op = payload.get("op")
    if op == "metrics":
        if payload.get("format") == "prom":
            from repro.obs.export import to_prometheus

            return {
                "status": "ok",
                "op": "metrics",
                "format": "prom",
                "prom": to_prometheus(get_registry()),
            }
        out = server.admin_snapshot()
        out.update({"status": "ok", "op": "metrics"})
        return out
    if op == "health":
        slo_state = server.slo.state()
        draining = server._closing
        healthy = not draining and slo_state["budget_remaining"] > 0.0
        return {
            "status": "ok",
            "op": "health",
            "healthy": healthy,
            "draining": draining,
            "queue_depth": server.queue_depth,
            "inflight": server.inflight,
            "budget_remaining": slo_state["budget_remaining"],
            "burn_rate_fast": slo_state["burn_rate_fast"],
            "burn_rate_slow": slo_state["burn_rate_slow"],
        }
    return {"status": "error", "reason": f"unknown admin op {op!r}"}


async def serve_tcp(
    server: MicroBatchServer, host: str = "127.0.0.1", port: int = 8765
):
    """Put a newline-delimited-JSON TCP front end over ``server``.

    Protocol: one request object per line, ``{"levels": [[...]]}`` (a
    single quantized sample shaped like the engine's input; add
    ``"scores": true`` for the per-class score vector), answered with one
    response line carrying ``status`` / ``label`` / ``latency_ms`` /
    ``batch_size``.  Malformed lines get ``status="error"`` instead of a
    dropped connection.

    Lines carrying ``"op"`` instead of ``"levels"`` are *admin* requests
    answered inline, without touching the request queue:

    * ``{"op": "metrics"}`` — full operational snapshot (queue depth,
      in-flight batch, flush counters, per-stage p50/p95/p99 including
      worker-merged totals, SLO error-budget state); add
      ``"format": "prom"`` for Prometheus text exposition in ``"prom"``.
    * ``{"op": "health"}`` — cheap liveness probe with queue depth and
      budget burn.

    Returns the listening :class:`asyncio.Server`; the caller owns its
    lifecycle.
    """

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                payload = json.loads(line)
                if isinstance(payload, dict) and "op" in payload:
                    out = _admin_response(server, payload)
                else:
                    response = await server.submit(np.asarray(payload["levels"]))
                    out = {
                        "status": response.status,
                        "label": response.label,
                        "latency_ms": response.latency_s * 1e3,
                        "batch_size": response.batch_size,
                    }
                    if response.reason:
                        out["reason"] = response.reason
                    if payload.get("scores") and response.scores is not None:
                        out["scores"] = np.asarray(response.scores).tolist()
            except Exception as exc:  # noqa: BLE001 — answer, don't hang up
                out = {"status": "error", "reason": str(exc)}
            writer.write((json.dumps(out) + "\n").encode("utf-8"))
            await writer.drain()
        writer.close()
        await writer.wait_closed()

    return await asyncio.start_server(handle, host, port)
