"""Online serving front-end: dynamic micro-batching under a latency budget.

The packed datapath earns its 19.2x speedup on *batches*, but production
BCI traffic arrives one sample at a time.  :class:`MicroBatchServer`
closes that gap with the classic Clipper-style adaptive batching shape
(Crankshaw et al., NSDI'17): concurrent clients ``await submit(sample)``
into a request queue, and a single flusher coroutine coalesces arrivals
into micro-batches that are flushed when either

* the batch reaches ``ServePolicy.max_batch`` samples (``flush.full``), or
* the *oldest* queued request is about to run out of latency budget —
  ``deadline_ms`` minus a ``flush_margin_ms`` headroom reserved for batch
  execution (``flush.deadline``).

Each micro-batch executes on a
:class:`~repro.runtime.resilience.ResilientBatchRunner` via a small
executor with ``ServePolicy.max_inflight`` slots (default 2): while
batch N executes, the flusher coalesces and dispatches batch N+1, so
queue-coalescing and compute overlap instead of serializing.  Fan-out
stays strictly FIFO — each in-flight batch awaits its predecessor's
completion gate before resolving futures, so batch N+1 never answers
before batch N — and dispatch past the cap back-pressures the flusher.
Per-sample scores/labels — including quarantine sentinels — are fanned
back to the right futures in arrival order.  ``serve.pipeline.*``
instruments (slots / inflight / inflight_max gauges, dispatched /
barriers counters) account for the overlap.

Overload is handled by admission control, not collapse: past
``max_queue`` queued samples a request is immediately answered with
``status="rejected"`` (load shedding — the SLO-aware choice of Clockwork,
OSDI'20: an answer that would blow the deadline is worth less than a fast
no), and a draining server likewise rejects new arrivals while flushing
what it already accepted.  Every event lands in ``serve.*`` instruments
(requests / accepted / rejected / answered / failed / quarantined
counters, queue-depth gauge, ``serve.latency`` and ``serve.batch``
histograms), which the run ledger harvests into every record.

The server also hosts the *integrity* loop: given an
:class:`~repro.runtime.integrity.IntegrityScrubber`, a periodic
coroutine re-hashes the engine's resident operands at a **pipeline
barrier** — new dispatches are held, in-flight batches are awaited, the
scrub runs on a quiesced executor, then dispatch reopens — so a hot
repair never swaps the engine under an in-flight batch even with
``max_inflight > 1``, and serving continues (the queue keeps accepting
throughout).  The chaos ``corrupt:P`` directive mutates resident engine
memory between micro-batches, so it forces the pipeline down to one
slot (corruption injected concurrently with another executing batch
would break the repair-to-bit-exactness contract the integrity-smoke CI
job asserts); ordinals are assigned at dispatch on the event loop, so
the corruption schedule stays reproducible either way.

:func:`serve_tcp` puts a newline-delimited-JSON TCP front end over the
server for the ``python -m repro serve`` daemon — hardened per
:class:`NetPolicy`: a max line length, per-connection read timeouts
(slow-loris), a connection cap, and ``status="bad_request"`` answers for
malformed/oversized/wrong-shape requests (a client can never crash a
handler).  Network-plane events land in ``serve.net.*`` counters;
:mod:`repro.runtime.loadgen` drives the same server in-process for the
``serve-bench`` latency-vs-load harness.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.obs import get_registry, snapshot, stage_timer
from repro.obs.slo import SLO, SLOTracker

from .integrity import maybe_corrupt_resident
from .resilience import QUARANTINED_LABEL, CircuitOpenError

__all__ = [
    "NetPolicy",
    "ServePolicy",
    "ServeResponse",
    "MicroBatchServer",
    "serve_tcp",
]


@dataclass(frozen=True)
class ServePolicy:
    """Knobs of the micro-batching front end.

    ``deadline_ms`` is each request's end-to-end latency budget; the
    flusher releases a partial batch once the oldest queued request has
    only ``flush_margin_ms`` of that budget left (headroom reserved for
    batch execution).  ``max_batch`` caps samples per micro-batch and
    ``max_queue`` caps queued samples — arrivals beyond it are shed with
    an explicit ``rejected`` response instead of growing an unbounded
    backlog.  ``max_inflight`` is the pipeline depth: how many
    micro-batches may execute concurrently (the flusher coalesces batch
    N+1 while batch N computes; responses still fan out strictly FIFO).
    ``1`` restores the fully serialized pre-pipeline behaviour.
    """

    max_batch: int = 64
    deadline_ms: float = 50.0
    flush_margin_ms: float = 5.0
    max_queue: int = 1024
    max_inflight: int = 2

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if self.flush_margin_ms < 0:
            raise ValueError("flush_margin_ms must be >= 0")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")

    @classmethod
    def from_env(cls, environ=None) -> "ServePolicy":
        """Policy from ``REPRO_SERVE_BATCH`` / ``REPRO_SERVE_DEADLINE_MS``
        / ``REPRO_SERVE_MARGIN_MS`` / ``REPRO_SERVE_QUEUE`` /
        ``REPRO_SERVE_INFLIGHT`` (unset keys keep the defaults)."""
        env = os.environ if environ is None else environ

        def _get(key, cast, default):
            raw = env.get(key)
            if raw is None or not str(raw).strip():
                return default
            try:
                return cast(raw)
            except (TypeError, ValueError):
                return default

        return cls(
            max_batch=_get("REPRO_SERVE_BATCH", int, cls.max_batch),
            deadline_ms=_get("REPRO_SERVE_DEADLINE_MS", float, cls.deadline_ms),
            flush_margin_ms=_get("REPRO_SERVE_MARGIN_MS", float, cls.flush_margin_ms),
            max_queue=_get("REPRO_SERVE_QUEUE", int, cls.max_queue),
            max_inflight=max(1, _get("REPRO_SERVE_INFLIGHT", int, cls.max_inflight)),
        )

    @property
    def flush_after_s(self) -> float:
        """Queue-time budget before a partial batch must flush."""
        return max(0.0, (self.deadline_ms - self.flush_margin_ms) / 1000.0)


@dataclass(frozen=True)
class NetPolicy:
    """Limits of the TCP front end (garbage / slow-loris hardening).

    ``max_line_bytes`` bounds one request line (an over-long line is
    answered ``bad_request`` and the connection dropped — mid-line there
    is no newline to resync on).  ``read_timeout_s`` caps how long a
    connection may sit between lines (0 disables); a client trickling
    bytes forever is cut off instead of pinning a handler.
    ``max_connections`` caps concurrently open connections — excess ones
    get a single ``{"status": "rejected"}`` line and a close, the same
    explicit-shed philosophy as the admission-controlled queue.
    """

    max_line_bytes: int = 1 << 20
    read_timeout_s: float = 30.0
    max_connections: int = 128

    def __post_init__(self) -> None:
        if self.max_line_bytes < 64:
            raise ValueError("max_line_bytes must be >= 64")
        if self.read_timeout_s < 0:
            raise ValueError("read_timeout_s must be >= 0 (0 disables)")
        if self.max_connections < 1:
            raise ValueError("max_connections must be >= 1")

    @classmethod
    def from_env(cls, environ=None) -> "NetPolicy":
        """Policy from ``REPRO_SERVE_MAX_LINE`` / ``REPRO_SERVE_READ_TIMEOUT_S``
        / ``REPRO_SERVE_MAX_CONNS`` (unset keys keep the defaults)."""
        env = os.environ if environ is None else environ

        def _get(key, cast, default):
            raw = env.get(key)
            if raw is None or not str(raw).strip():
                return default
            try:
                return cast(raw)
            except (TypeError, ValueError):
                return default

        return cls(
            max_line_bytes=_get("REPRO_SERVE_MAX_LINE", int, cls.max_line_bytes),
            read_timeout_s=_get(
                "REPRO_SERVE_READ_TIMEOUT_S", float, cls.read_timeout_s
            ),
            max_connections=_get("REPRO_SERVE_MAX_CONNS", int, cls.max_connections),
        )


@dataclass(frozen=True)
class ServeResponse:
    """One answered request.

    ``status`` is ``"ok"`` (served), ``"quarantined"`` (invalid input,
    sentinel label), ``"failed"`` (the serving ladder exhausted itself),
    or ``"rejected"`` (shed by admission control before queuing).
    ``latency_s`` is queue + execution time (0 for rejected requests) and
    ``batch_size`` the micro-batch the sample rode in.
    """

    status: str
    label: int
    scores: np.ndarray | None
    latency_s: float
    batch_size: int = 0
    reason: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _resolve_scrub_interval(value: float | None) -> float:
    """Scrub period: explicit value, else ``REPRO_SCRUB_INTERVAL_S``,
    else 5 s.  Only consulted when a scrubber is attached; <= 0 disables
    the periodic loop (on-demand ``scrub()`` still works)."""
    if value is not None:
        return float(value)
    raw = os.environ.get("REPRO_SCRUB_INTERVAL_S")
    if raw is None or not raw.strip():
        return 5.0
    try:
        return float(raw)
    except ValueError:
        return 5.0


@dataclass
class _Request:
    """One queued sample awaiting its micro-batch."""

    levels: np.ndarray
    arrival: float
    future: asyncio.Future = field(repr=False)


class MicroBatchServer:
    """Coalesces concurrent single-sample submissions into micro-batches.

    Built over a :class:`~repro.runtime.resilience.ResilientBatchRunner`
    (whose retry/fallback/quarantine ladder and chaos seam the serve path
    inherits wholesale).  Use as an async context manager::

        with ResilientBatchRunner(engine) as runner:
            async with MicroBatchServer(runner, policy) as server:
                response = await server.submit(sample)

    ``submit`` must be called from the event loop that ``start``-ed the
    server.  The runner's lifecycle belongs to the caller.
    """

    def __init__(
        self,
        runner,
        policy: ServePolicy | None = None,
        slo: SLO | SLOTracker | None = None,
        scrubber=None,
        scrub_interval_s: float | None = None,
    ) -> None:
        self.runner = runner
        self.policy = policy if policy is not None else ServePolicy.from_env()
        if isinstance(slo, SLOTracker):
            self.slo = slo
        else:
            self.slo = SLOTracker(slo if slo is not None else SLO.from_env())
        self.scrubber = scrubber
        self.scrub_interval_s = _resolve_scrub_interval(scrub_interval_s)
        self._pending: list[_Request] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._flusher: asyncio.Task | None = None
        self._scrub_task: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._closing = False
        self._inflight = 0
        self._batches_started = 0
        self._slots = 1
        self._inflight_tasks: list[asyncio.Task] = []
        self._fanout_gate: asyncio.Future | None = None
        self._dispatch_open: asyncio.Event | None = None
        self._peak_inflight = 0

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "MicroBatchServer":
        """Spawn the flusher; idempotent ``drain`` is the counterpart."""
        if self._flusher is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._closing = False
        # Pipeline depth: micro-batches overlap across these executor
        # slots (each batch still fans out across the runner's own
        # worker pool inside run()).  The corrupt:P chaos directive
        # mutates resident engine memory between batches, which must
        # never race another executing batch — it forces depth 1.
        corrupt = getattr(getattr(self.runner, "chaos", None), "corrupt_rate", 0.0)
        inflight = self.policy.max_inflight
        if inflight == ServePolicy.max_inflight:
            # A calibrated plan (REPRO_PLAN) may deepen or flatten the
            # pipeline, but only while the policy still carries the
            # default — an explicit max_inflight always wins.
            from repro.runtime.batch import _active_plan

            plan = _active_plan(self.runner.engine)
            if plan is not None:
                inflight = max(1, plan.max_inflight)
        self._slots = 1 if corrupt else inflight
        self._inflight_tasks = []
        self._fanout_gate = None
        self._peak_inflight = 0
        self._dispatch_open = asyncio.Event()
        self._dispatch_open.set()
        registry = get_registry()
        registry.gauge("serve.pipeline.slots").set(self._slots)
        registry.gauge("serve.pipeline.inflight").set(0.0)
        self._executor = ThreadPoolExecutor(
            max_workers=self._slots, thread_name_prefix="repro-serve"
        )
        self._flusher = self._loop.create_task(self._flush_loop())
        if self.scrubber is not None and self.scrub_interval_s > 0:
            self._scrub_task = self._loop.create_task(self._scrub_loop())
        return self

    async def drain(self) -> None:
        """Graceful shutdown: reject new arrivals, answer everything
        already accepted and in flight, then stop the flusher
        (idempotent)."""
        if self._flusher is None:
            return
        self._closing = True
        self._wake.set()
        flusher, self._flusher = self._flusher, None
        await flusher
        # The flusher dispatched its tail batches; answer them all.
        while self._inflight_tasks:
            await asyncio.gather(
                *list(self._inflight_tasks), return_exceptions=True
            )
        if self._scrub_task is not None:
            task, self._scrub_task = self._scrub_task, None
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        executor, self._executor = self._executor, None
        executor.shutdown(wait=True)
        registry = get_registry()
        registry.gauge("serve.queue_depth").set(0.0)
        registry.gauge("serve.pipeline.inflight").set(0.0)

    async def __aenter__(self) -> "MicroBatchServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.drain()

    # -- request intake -------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Samples currently queued (not yet flushed into a batch)."""
        return len(self._pending)

    async def submit(self, levels: np.ndarray) -> ServeResponse:
        """Serve one sample; resolves when its micro-batch answers.

        Accepts one sample shaped ``input_shape`` (or ``(1,) + shape``).
        An over-loaded or draining server answers immediately with
        ``status="rejected"`` — shedding is an explicit response, never an
        exception.
        """
        if self._flusher is None:
            raise RuntimeError("server is not started")
        levels = np.asarray(levels)
        expected = tuple(self.runner.engine.input_shape)
        if levels.shape == (1,) + expected:
            levels = levels[0]
        elif levels.shape != expected:
            raise ValueError(
                f"submit expects one sample shaped {expected} "
                f"(got {levels.shape}); use submit_many for bursts"
            )
        registry = get_registry()
        registry.counter("serve.requests").add(1)
        if self._closing or len(self._pending) >= self.policy.max_queue:
            registry.counter("serve.rejected").add(1)
            # A shed request is a server-side SLO violation: the client
            # asked for a valid prediction and did not get one.
            self.slo.record(0.0, ok=False)
            return ServeResponse(
                status="rejected",
                label=QUARANTINED_LABEL,
                scores=None,
                latency_s=0.0,
                reason="draining" if self._closing else "queue-full",
            )
        registry.counter("serve.accepted").add(1)
        request = _Request(
            levels=levels,
            arrival=self._loop.time(),
            future=self._loop.create_future(),
        )
        self._pending.append(request)
        registry.gauge("serve.queue_depth").set(len(self._pending))
        self._wake.set()
        return await request.future

    async def submit_many(self, levels: np.ndarray) -> list[ServeResponse]:
        """Serve a small burst ``(k,) + input_shape``; per-sample admission."""
        levels = np.asarray(levels)
        expected = tuple(self.runner.engine.input_shape)
        if levels.ndim != len(expected) + 1 or levels.shape[1:] != expected:
            raise ValueError(
                f"submit_many expects (k,) + {expected} (got {levels.shape})"
            )
        return list(
            await asyncio.gather(*(self.submit(sample) for sample in levels))
        )

    # -- the flusher ----------------------------------------------------
    async def _flush_loop(self) -> None:
        policy = self.policy
        while True:
            if not self._pending:
                if self._closing:
                    break
                await self._wake.wait()
                self._wake.clear()
                continue
            now = self._loop.time()
            flush_at = self._pending[0].arrival + policy.flush_after_s
            if (
                len(self._pending) < policy.max_batch
                and now < flush_at
                and not self._closing
            ):
                # Wait for more arrivals, but never past the oldest
                # request's remaining budget.
                try:
                    await asyncio.wait_for(self._wake.wait(), flush_at - now)
                except asyncio.TimeoutError:
                    pass
                self._wake.clear()
                continue
            if len(self._pending) >= policy.max_batch:
                trigger = "full"
            elif now >= flush_at:
                trigger = "deadline"
            else:
                trigger = "drain"
            batch = self._pending[: policy.max_batch]
            del self._pending[: policy.max_batch]
            registry = get_registry()
            registry.counter(f"serve.flush.{trigger}").add(1)
            registry.gauge("serve.queue_depth").set(len(self._pending))
            await self._dispatch(batch)

    async def _dispatch(self, batch: list[_Request]) -> None:
        """Launch one micro-batch into the pipeline.

        Waits for an open dispatch window (a scrub barrier closes it)
        and for a free slot (back-pressure past ``max_inflight``), then
        spawns the batch as a task chained to its predecessor's fan-out
        gate.  The ordinal is assigned here, on the event loop, so the
        execution *schedule* (which batch is Nth) is deterministic even
        though completion order is not.
        """
        while True:
            await self._dispatch_open.wait()
            if len(self._inflight_tasks) < self._slots:
                # No await between here and task creation, so a barrier
                # cannot close the window under this dispatch.
                break
            # Back-pressure: the flusher stalls (queue keeps accepting
            # up to max_queue) until the oldest in-flight batch answers —
            # then re-checks the window, which may have closed meanwhile.
            await asyncio.wait(
                list(self._inflight_tasks), return_when=asyncio.FIRST_COMPLETED
            )
        registry = get_registry()
        ordinal = self._batches_started
        self._batches_started += 1
        prev_gate = self._fanout_gate
        gate = self._loop.create_future()
        self._fanout_gate = gate
        task = self._loop.create_task(
            self._execute(batch, ordinal, prev_gate, gate)
        )
        self._inflight_tasks.append(task)
        depth = len(self._inflight_tasks)
        self._peak_inflight = max(self._peak_inflight, depth)
        registry.counter("serve.pipeline.dispatched").add(1)
        registry.gauge("serve.pipeline.inflight").set(depth)
        registry.gauge("serve.pipeline.inflight_max").set(self._peak_inflight)

    async def _execute(
        self,
        batch: list[_Request],
        ordinal: int,
        prev_gate: asyncio.Future | None,
        gate: asyncio.Future,
    ) -> None:
        registry = get_registry()
        registry.counter("serve.batches").add(1)
        registry.counter("serve.batched_samples").add(len(batch))
        self._inflight += len(batch)
        registry.gauge("serve.inflight").set(self._inflight)
        levels = np.stack([request.levels for request in batch])
        result = None
        failure = None
        try:
            try:
                result = await self._loop.run_in_executor(
                    self._executor, self._run_batch, levels, ordinal
                )
            except CircuitOpenError:
                registry.counter("serve.breaker_trips").add(1)
                failure = "circuit-open"
            except Exception as exc:  # noqa: BLE001 — must not kill the daemon
                failure = type(exc).__name__
            if prev_gate is not None:
                # FIFO fan-out: batch N+1 never answers before batch N,
                # even when it finishes computing first.
                await prev_gate
            if failure is not None:
                self._fail_batch(batch, failure)
            else:
                self._fan_out(batch, result)
        finally:
            self._inflight = max(0, self._inflight - len(batch))
            registry.gauge("serve.inflight").set(self._inflight)
            if not gate.done():
                gate.set_result(None)
            task = asyncio.current_task()
            if task in self._inflight_tasks:
                self._inflight_tasks.remove(task)
            registry.gauge("serve.pipeline.inflight").set(
                len(self._inflight_tasks)
            )

    def _fan_out(self, batch: list[_Request], result) -> None:
        """Resolve every request future of one completed micro-batch."""
        registry = get_registry()
        report = result.report
        failed_rows = set(report.failed_samples)
        now = self._loop.time()
        latency_hist = registry.histogram("serve.latency")
        for row, request in enumerate(batch):
            latency = now - request.arrival
            if row in report.quarantined:
                status, reason = "quarantined", report.quarantined[row]
                registry.counter("serve.quarantined").add(1)
                # Invalid input is a *client* error — it must not burn
                # the server's error budget.
                self.slo.record_client_error()
            elif row in failed_rows:
                status, reason = "failed", "shard-failed"
                registry.counter("serve.failed").add(1)
                self.slo.record(latency, ok=False)
            else:
                status, reason = "ok", ""
                registry.counter("serve.answered").add(1)
                self.slo.record(latency, ok=True)
            latency_hist.observe(latency)
            self._resolve(
                request,
                ServeResponse(
                    status=status,
                    label=int(result.predictions[row]),
                    scores=result.scores[row],
                    latency_s=latency,
                    batch_size=len(batch),
                    reason=reason,
                ),
            )
        self.slo.publish(registry)

    def _run_batch(self, levels: np.ndarray, ordinal: int):
        """Executor-thread body: one resilient batch under a serve span."""
        with stage_timer("serve.batch"):
            chaos = getattr(self.runner, "chaos", None)
            if chaos is not None and getattr(chaos, "corrupt_rate", 0.0):
                # The corrupt:P chaos seam: between batches, flip bits in
                # the engine's resident memory.  Indexed by the dispatch
                # ordinal (corrupt chaos pins the pipeline to one slot,
                # so the ordinal is the execution order) for reproducible
                # corruption.
                maybe_corrupt_resident(self.runner.engine, chaos, ordinal)
            return self.runner.run(levels)

    # -- integrity scrubbing --------------------------------------------
    async def _pipeline_barrier(self) -> None:
        """Quiesce the pipeline: close the dispatch window, then wait
        out every in-flight batch.  The caller MUST reopen the window
        (``self._dispatch_open.set()``) in a ``finally``."""
        get_registry().counter("serve.pipeline.barriers").add(1)
        self._dispatch_open.clear()
        while self._inflight_tasks:
            await asyncio.gather(
                *list(self._inflight_tasks), return_exceptions=True
            )

    async def _scrub_barriered(self):
        """One scrub pass at a pipeline barrier (the only safe place: a
        hot repair swaps the engine, which must never happen under an
        in-flight batch).  Dispatch reopens no matter how the scrub
        ends; the queue keeps accepting throughout."""
        try:
            await self._pipeline_barrier()
            return await self._loop.run_in_executor(
                self._executor, self.scrubber.scrub
            )
        finally:
            self._dispatch_open.set()

    async def _scrub_loop(self) -> None:
        """Periodic scrub at a pipeline barrier."""
        while not self._closing:
            await asyncio.sleep(self.scrub_interval_s)
            if self._executor is None:
                return
            try:
                await self._scrub_barriered()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 — scrubbing must not kill serving
                get_registry().counter("integrity.scrub_errors").add(1)

    async def scrub(self):
        """On-demand scrub pass; returns the
        :class:`~repro.runtime.integrity.ScrubReport`.

        Runs at a pipeline barrier — in-flight batches are awaited
        first, so a repair never swaps the engine under one — and
        serving continues (the queue keeps accepting).
        """
        if self.scrubber is None:
            raise RuntimeError("server has no scrubber configured")
        if self._executor is None:
            return self.scrubber.scrub()
        return await self._scrub_barriered()

    def _fail_batch(self, batch: list[_Request], reason: str) -> None:
        registry = get_registry()
        now = self._loop.time()
        for request in batch:
            registry.counter("serve.failed").add(1)
            self.slo.record(now - request.arrival, ok=False)
            self._resolve(
                request,
                ServeResponse(
                    status="failed",
                    label=QUARANTINED_LABEL,
                    scores=None,
                    latency_s=now - request.arrival,
                    batch_size=len(batch),
                    reason=reason,
                ),
            )
        self.slo.publish(registry)

    @staticmethod
    def _resolve(request: _Request, response: ServeResponse) -> None:
        if not request.future.done():  # a cancelled client still drains
            request.future.set_result(response)

    # -- admin plane ----------------------------------------------------
    @property
    def inflight(self) -> int:
        """Samples across all currently-executing micro-batches."""
        return self._inflight

    @property
    def inflight_batches(self) -> int:
        """Micro-batches currently in the pipeline (0 when idle)."""
        return len(self._inflight_tasks)

    def admin_snapshot(self) -> dict:
        """Live operational state for the admin endpoint / ``repro top``.

        Queue depth, in-flight batch size, the serving policy, the SLO
        error-budget state, and the active registry's full counter /
        gauge / stage-summary snapshot — which, thanks to the worker
        harvest, includes worker-side ``packed.*`` stage time and
        per-worker kernel gauges.
        """
        registry = get_registry()
        state = snapshot(registry)
        out = {
            "queue_depth": self.queue_depth,
            "inflight": self._inflight,
            "draining": self._closing,
            "policy": {
                "max_batch": self.policy.max_batch,
                "deadline_ms": self.policy.deadline_ms,
                "flush_margin_ms": self.policy.flush_margin_ms,
                "max_queue": self.policy.max_queue,
                "max_inflight": self.policy.max_inflight,
            },
            "pipeline": {
                "slots": self._slots,
                "inflight_batches": len(self._inflight_tasks),
                "inflight_max": self._peak_inflight,
            },
            "slo": self.slo.state(),
            "counters": state["counters"],
            "gauges": state["gauges"],
            "stages": state["stages"],
        }
        if self.scrubber is not None:
            out["integrity"] = self.scrubber.status()
        return out


# ---------------------------------------------------------------------------
# TCP front end (newline-delimited JSON)
# ---------------------------------------------------------------------------
def _admin_response(server: MicroBatchServer, payload: dict) -> dict:
    """Answer one ``{"op": ...}`` admin request (no queueing, no batch)."""
    op = payload.get("op")
    if op == "metrics":
        if payload.get("format") == "prom":
            from repro.obs.export import to_prometheus

            return {
                "status": "ok",
                "op": "metrics",
                "format": "prom",
                "prom": to_prometheus(get_registry()),
            }
        out = server.admin_snapshot()
        out.update({"status": "ok", "op": "metrics"})
        return out
    if op == "health":
        slo_state = server.slo.state()
        draining = server._closing
        healthy = not draining and slo_state["budget_remaining"] > 0.0
        out = {
            "status": "ok",
            "op": "health",
            "healthy": healthy,
            "draining": draining,
            "queue_depth": server.queue_depth,
            "inflight": server.inflight,
            "budget_remaining": slo_state["budget_remaining"],
            "burn_rate_fast": slo_state["burn_rate_fast"],
            "burn_rate_slow": slo_state["burn_rate_slow"],
        }
        if server.scrubber is not None:
            last = server.scrubber.last_report
            out["scrub_clean"] = True if last is None else bool(
                last.clean or last.repaired
            )
        return out
    return {"status": "error", "reason": f"unknown admin op {op!r}"}


async def serve_tcp(
    server: MicroBatchServer,
    host: str = "127.0.0.1",
    port: int = 8765,
    net: NetPolicy | None = None,
):
    """Put a hardened newline-delimited-JSON TCP front end over ``server``.

    Protocol: one request object per line, ``{"levels": [[...]]}`` (a
    single quantized sample shaped like the engine's input; add
    ``"scores": true`` for the per-class score vector), answered with one
    response line carrying ``status`` / ``label`` / ``latency_ms`` /
    ``batch_size``.

    The front end never lets a client crash a handler: malformed JSON,
    non-object payloads, non-numeric or wrong-shape ``levels``, and
    over-long lines are all answered ``status="bad_request"`` with a
    ``reason`` (and counted as *client* errors, so they never burn the
    server's SLO budget); only genuine server-side failures answer
    ``status="error"``.  :class:`NetPolicy` bounds the line length
    (oversized lines are answered then the connection dropped — mid-line
    there is no newline to resync on), idle time between lines
    (slow-loris timeout), and concurrently open connections (excess ones
    are told ``status="rejected"`` and closed).  Every network-plane
    event lands in ``serve.net.*`` counters, which the run ledger
    harvests.

    Lines carrying ``"op"`` instead of ``"levels"`` are *admin* requests
    answered inline, without touching the request queue:

    * ``{"op": "metrics"}`` — full operational snapshot (queue depth,
      in-flight batch, flush counters, per-stage p50/p95/p99 including
      worker-merged totals, SLO error-budget state, scrubber state); add
      ``"format": "prom"`` for Prometheus text exposition in ``"prom"``.
    * ``{"op": "health"}`` — cheap liveness probe with queue depth and
      budget burn.
    * ``{"op": "scrub"}`` — run one on-demand integrity scrub (detect +
      hot-repair) and return its report.

    Returns the listening :class:`asyncio.Server`; the caller owns its
    lifecycle.
    """
    net = net if net is not None else NetPolicy.from_env()
    open_connections = 0

    def _bad_request(reason: str) -> dict:
        get_registry().counter("serve.net.bad_requests").add(1)
        # A request the server could not even parse is a *client* error —
        # it must not burn the server's error budget.
        server.slo.record_client_error()
        return {"status": "bad_request", "reason": reason}

    async def _answer(raw: bytes) -> dict:
        registry = get_registry()
        registry.counter("serve.net.requests").add(1)
        try:
            payload = json.loads(raw)
        except (ValueError, UnicodeDecodeError) as exc:
            return _bad_request(f"malformed JSON: {exc}")
        if not isinstance(payload, dict):
            return _bad_request("request must be a JSON object")
        if "op" in payload:
            try:
                if payload.get("op") == "scrub":
                    report = await server.scrub()
                    out = report.as_dict()
                    out.update({"status": "ok", "op": "scrub"})
                    return out
                return _admin_response(server, payload)
            except Exception as exc:  # noqa: BLE001 — answer, don't hang up
                registry.counter("serve.net.errors").add(1)
                return {"status": "error", "reason": f"{type(exc).__name__}: {exc}"}
        if "levels" not in payload:
            return _bad_request("request must carry 'levels' or 'op'")
        try:
            levels = np.asarray(payload["levels"])
        except Exception as exc:  # noqa: BLE001 — ragged nests and worse
            return _bad_request(f"levels is not array-like: {exc}")
        if levels.dtype == object or not np.issubdtype(levels.dtype, np.number):
            return _bad_request("levels must be a numeric array")
        try:
            response = await server.submit(levels)
        except ValueError as exc:
            return _bad_request(str(exc))
        except Exception as exc:  # noqa: BLE001 — answer, don't hang up
            registry.counter("serve.net.errors").add(1)
            return {"status": "error", "reason": f"{type(exc).__name__}: {exc}"}
        out = {
            "status": response.status,
            "label": response.label,
            "latency_ms": response.latency_s * 1e3,
            "batch_size": response.batch_size,
        }
        if response.reason:
            out["reason"] = response.reason
        if payload.get("scores") and response.scores is not None:
            out["scores"] = np.asarray(response.scores).tolist()
        return out

    async def _serve_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        registry = get_registry()
        timeout = net.read_timeout_s or None
        while True:
            try:
                line = await asyncio.wait_for(reader.readuntil(b"\n"), timeout)
            except asyncio.TimeoutError:
                # Slow-loris: a connection trickling (or sending nothing)
                # between lines is cut off, freeing the handler.
                registry.counter("serve.net.timeouts").add(1)
                return
            except asyncio.IncompleteReadError as exc:
                if exc.partial:
                    # Mid-request disconnect: bytes but no newline.
                    registry.counter("serve.net.disconnects").add(1)
                return
            except asyncio.LimitOverrunError:
                registry.counter("serve.net.oversized").add(1)
                out = _bad_request(f"line exceeds {net.max_line_bytes} bytes")
                with contextlib.suppress(ConnectionError, OSError):
                    writer.write((json.dumps(out) + "\n").encode("utf-8"))
                    await writer.drain()
                return
            except (ConnectionResetError, OSError):
                registry.counter("serve.net.disconnects").add(1)
                return
            out = await _answer(line)
            try:
                writer.write((json.dumps(out) + "\n").encode("utf-8"))
                await writer.drain()
            except (ConnectionResetError, OSError):
                registry.counter("serve.net.disconnects").add(1)
                return

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        nonlocal open_connections
        registry = get_registry()
        registry.counter("serve.net.connections").add(1)
        if open_connections >= net.max_connections:
            registry.counter("serve.net.rejected_connections").add(1)
            with contextlib.suppress(ConnectionError, OSError):
                writer.write(
                    (
                        json.dumps(
                            {"status": "rejected", "reason": "connection-limit"}
                        )
                        + "\n"
                    ).encode("utf-8")
                )
                await writer.drain()
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()
            return
        open_connections += 1
        registry.gauge("serve.net.open").set(open_connections)
        try:
            await _serve_connection(reader, writer)
        finally:
            open_connections -= 1
            registry.gauge("serve.net.open").set(open_connections)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    return await asyncio.start_server(
        handle, host, port, limit=net.max_line_bytes
    )
