"""Artifact integrity and self-healing repair for the serving path.

The resilience layer defends *execution* (retries, fallbacks, breakers);
this module defends the *model state itself*, in three rings:

1. **Checksummed artifact store.**  :func:`save_archive` writes an
   ``.npz`` with an embedded versioned manifest — per-array sha256 (over
   dtype + shape + bytes), config hash, format version — atomically:
   temp file in the destination directory, fsync, ``os.replace``.  A
   crash mid-write leaves the previous archive intact, never a torn one.
   :func:`load_archive_arrays` verifies every digest on the way in and
   raises a typed :class:`ArtifactCorruptionError` naming the damaged
   array (``verify=False`` is the forensic escape hatch).  ``python -m
   repro verify-artifacts`` fronts :func:`verify_archive`.

2. **In-memory scrubbing with hot repair.**  A deployed
   :class:`~repro.core.inference.BitPackedUniVSA` keeps its operands
   resident for hours — value-volume bytes, conv operand words, packed
   class vectors, thresholds — and a single-event upset in any of them
   silently skews every later answer.  :class:`IntegrityScrubber` takes
   golden digests over those operands at build time; each
   :meth:`~IntegrityScrubber.scrub` re-hashes and, on mismatch, repairs
   by rebuilding the engine from a verified source (the on-disk archive,
   or a pristine in-memory copy retained at construction) and hot-swaps
   it into the live runner — serving continues, no restart.  The
   soft-vote margin mean of the corrupted window is published so the
   ledger quantifies the quality dip the Θ-way voting redundancy
   absorbed (the graceful-degradation property the paper's Eq. 4
   provides).

3. **Chaos seams.**  :func:`maybe_corrupt_resident` implements the
   ``corrupt:P`` directive (between micro-batches, with probability
   ``P``, flip a handful of bits in one resident operand);
   :func:`damage_archive` implements ``truncate`` (tear the just-saved
   archive).  Both draw from the reproducible
   ``np.random.default_rng((seed, domain, index))`` chaos grammar.

Everything lands in ``integrity.*`` instruments (scrubs, mismatches,
repairs, corrupt bits, margin gauges) which the run ledger harvests into
every record.
"""

from __future__ import annotations

import json
import hashlib
import os
import tempfile
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.obs import MARGIN_HISTOGRAM, get_registry
from repro.obs.ledger import config_hash

from .chaos import ChaosSpec

__all__ = [
    "ARCHIVE_FORMAT_VERSION",
    "MANIFEST_KEY",
    "ArtifactCorruptionError",
    "IntegrityScrubber",
    "ScrubReport",
    "array_digest",
    "build_manifest",
    "corrupt_stored_array",
    "damage_archive",
    "flip_resident_bits",
    "load_archive_arrays",
    "maybe_corrupt_resident",
    "resident_digests",
    "save_archive",
    "verify_archive",
    "verify_manifest",
]

#: Bumped whenever the archive layout changes incompatibly.
ARCHIVE_FORMAT_VERSION = 1

#: npz entry holding the JSON manifest (as uint8 bytes) — the archive is
#: self-contained, no sidecar file to lose or mismatch.
MANIFEST_KEY = "__manifest__"

#: rng stream domains, so corrupt / damage draws never collide with the
#: shard-attempt streams of :mod:`repro.runtime.chaos`.
_CORRUPT_DOMAIN = 0xC0BB
_DAMAGE_DOMAIN = 0xDA4A


class ArtifactCorruptionError(RuntimeError):
    """A checksummed artifact failed verification.

    ``array`` names the damaged entry (``None`` when the archive itself
    is unreadable — e.g. a torn write the zip layer rejects).  Digest
    failures can be bypassed with ``load(verify=False)`` for forensics;
    an unreadable archive cannot.
    """

    def __init__(self, reason: str, *, path=None, array: str | None = None) -> None:
        self.reason = reason
        self.path = None if path is None else str(path)
        self.array = array
        parts = [reason]
        if array is not None:
            parts.append(f"array={array!r}")
        if path is not None:
            parts.append(f"path={self.path}")
        super().__init__("; ".join(parts))


# ---------------------------------------------------------------------------
# digests and manifests
# ---------------------------------------------------------------------------
def array_digest(array: np.ndarray) -> str:
    """sha256 over an array's dtype, shape, and raw bytes.

    Dtype and shape are folded in so a reinterpretation (same bytes,
    different view) never passes as the original.
    """
    array = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(array.dtype.str.encode("ascii"))
    digest.update(repr(tuple(array.shape)).encode("ascii"))
    digest.update(array.tobytes())
    return digest.hexdigest()


def build_manifest(arrays: dict, config=None) -> dict:
    """The versioned integrity manifest for a dict of named arrays."""
    return {
        "format_version": ARCHIVE_FORMAT_VERSION,
        "config_hash": None if config is None else config_hash(config),
        "arrays": {
            name: {
                "sha256": array_digest(np.asarray(array)),
                "dtype": np.asarray(array).dtype.str,
                "shape": list(np.asarray(array).shape),
            }
            for name, array in sorted(arrays.items())
        },
    }


def verify_manifest(arrays: dict, manifest: dict, path=None) -> None:
    """Check ``arrays`` against ``manifest``; raise naming the bad array."""
    version = manifest.get("format_version")
    if version != ARCHIVE_FORMAT_VERSION:
        raise ArtifactCorruptionError(
            f"unsupported manifest format_version {version!r} "
            f"(this build reads {ARCHIVE_FORMAT_VERSION})",
            path=path,
        )
    declared = manifest.get("arrays")
    if not isinstance(declared, dict) or not declared:
        raise ArtifactCorruptionError(
            "manifest declares no arrays", path=path, array=MANIFEST_KEY
        )
    missing = sorted(set(declared) - set(arrays))
    if missing:
        raise ArtifactCorruptionError(
            "archive is missing a declared array", path=path, array=missing[0]
        )
    extra = sorted(set(arrays) - set(declared))
    if extra:
        raise ArtifactCorruptionError(
            "archive carries an undeclared array", path=path, array=extra[0]
        )
    for name in sorted(declared):
        expected = declared[name].get("sha256")
        actual = array_digest(arrays[name])
        if actual != expected:
            raise ArtifactCorruptionError(
                f"digest mismatch (manifest {str(expected)[:12]}…, "
                f"stored {actual[:12]}…)",
                path=path,
                array=name,
            )


# ---------------------------------------------------------------------------
# atomic checksummed archive I/O
# ---------------------------------------------------------------------------
def _final_path(path) -> Path:
    """Replicate ``np.savez``'s suffix rule so old call sites keep their
    on-disk names: a path without ``.npz`` gets it appended."""
    text = str(path)
    return Path(text if text.endswith(".npz") else text + ".npz")


def save_archive(path, arrays: dict, config=None) -> Path:
    """Atomically write a checksummed ``.npz``; returns the final path.

    The manifest is embedded under :data:`MANIFEST_KEY`.  The write goes
    to a temp file in the destination directory, is fsync'd, then
    renamed over the target — so readers only ever see the previous
    complete archive or the new complete archive, never a torn one.

    Honors the chaos ``truncate`` directive (``REPRO_CHAOS=truncate``):
    after the atomic rename the archive is deliberately damaged, which
    is how recovery-from-torn-store paths are exercised end to end.
    """
    final = _final_path(path)
    payload = dict(arrays)
    manifest = build_manifest(arrays, config=config)
    payload[MANIFEST_KEY] = np.frombuffer(
        json.dumps(manifest, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    directory = final.parent if str(final.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=final.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, final)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    try:
        # Make the rename itself durable (best effort — not every
        # filesystem lets a directory be fsync'd).
        dir_fd = os.open(str(directory), os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass
    spec = ChaosSpec.from_env()
    if spec.truncate:
        damage_archive(final, seed=spec.seed)
    return final


def load_archive_arrays(path, verify: bool = True) -> dict:
    """Read every array out of a checksummed archive.

    With ``verify=True`` (the default) the embedded manifest is checked
    and any damage raises :class:`ArtifactCorruptionError` naming the
    bad array; an archive the zip layer cannot even open (torn write)
    raises the same typed error with ``array=None``.  ``verify=False``
    skips manifest checks entirely — including for pre-manifest
    archives, which otherwise fail with a typed "no manifest" error.
    """
    try:
        with np.load(str(path), allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, ValueError, KeyError, OSError, EOFError) as exc:
        raise ArtifactCorruptionError(
            f"unreadable archive ({type(exc).__name__}: {exc}); "
            "likely a torn or truncated write",
            path=path,
        ) from exc
    manifest_raw = arrays.pop(MANIFEST_KEY, None)
    if not verify:
        return arrays
    if manifest_raw is None:
        raise ArtifactCorruptionError(
            "archive carries no integrity manifest (pre-manifest format?); "
            "pass verify=False to load it unchecked",
            path=path,
        )
    try:
        manifest = json.loads(bytes(bytearray(manifest_raw)))
    except (TypeError, ValueError) as exc:
        raise ArtifactCorruptionError(
            f"undecodable manifest ({exc})", path=path, array=MANIFEST_KEY
        ) from exc
    verify_manifest(arrays, manifest, path=path)
    return arrays


def verify_archive(path) -> dict:
    """Full verification report for ``repro verify-artifacts``.

    Raises :class:`ArtifactCorruptionError` on any damage; on success
    returns ``{"path", "format_version", "config_hash", "arrays": {name:
    {"sha256", "dtype", "shape"}}, "ok": True}``.
    """
    arrays = load_archive_arrays(path, verify=True)
    manifest = build_manifest(arrays)
    return {
        "path": str(path),
        "format_version": ARCHIVE_FORMAT_VERSION,
        "config_hash": _stored_config_hash(path),
        "arrays": manifest["arrays"],
        "ok": True,
    }


def _stored_config_hash(path) -> str | None:
    try:
        with np.load(str(path), allow_pickle=False) as archive:
            raw = archive[MANIFEST_KEY]
        return json.loads(bytes(bytearray(raw))).get("config_hash")
    except Exception:  # noqa: BLE001 — the hash is advisory in the report
        return None


# ---------------------------------------------------------------------------
# deliberate damage (chaos truncate / tests / CI)
# ---------------------------------------------------------------------------
def damage_archive(path, seed: int = 0, mode: str = "truncate") -> None:
    """Deterministically damage a saved archive.

    ``mode="truncate"`` cuts the file mid-zip — the torn-write failure
    the atomic rename otherwise makes impossible.  ``mode="flip"`` XORs
    one byte in place, keeping the length.  Both reproduce exactly under
    ``seed`` (the chaos grammar's promise).
    """
    path = Path(str(path))
    data = path.read_bytes()
    if not data:
        return
    rng = np.random.default_rng((seed, _DAMAGE_DOMAIN))
    if mode == "truncate":
        keep = max(1, int(len(data) * float(rng.uniform(0.3, 0.7))))
        path.write_bytes(data[:keep])
    elif mode == "flip":
        damaged = bytearray(data)
        position = int(rng.integers(len(damaged)))
        damaged[position] ^= 1 << int(rng.integers(8))
        path.write_bytes(bytes(damaged))
    else:
        raise ValueError(f"unknown damage mode {mode!r}; expected truncate/flip")


def corrupt_stored_array(path, name: str | None = None, seed: int = 0) -> str:
    """Flip one element of one stored array, keeping the stale manifest.

    Produces a *readable* archive whose digest check fails on exactly the
    returned array name — the precise failure ``verify-artifacts`` and
    the regression tests assert on (vs :func:`damage_archive`, which
    makes the whole zip unreadable).
    """
    with np.load(str(path), allow_pickle=False) as archive:
        payload = {key: archive[key] for key in archive.files}
    rng = np.random.default_rng((seed, _DAMAGE_DOMAIN, 1))
    candidates = sorted(key for key in payload if key != MANIFEST_KEY)
    if name is None:
        name = candidates[int(rng.integers(len(candidates)))]
    elif name not in payload:
        raise KeyError(f"archive has no array {name!r}")
    target = payload[name] = payload[name].copy()
    flat = target.reshape(-1)
    position = int(rng.integers(flat.size))
    if flat.dtype == np.bool_:
        flat[position] = ~flat[position]
    elif np.issubdtype(flat.dtype, np.integer):
        flat[position] = np.bitwise_xor(flat[position], flat.dtype.type(1))
    else:
        flat[position] = flat[position] + 1.0
    np.savez(str(path), **payload)
    return name


# ---------------------------------------------------------------------------
# resident-memory corruption (chaos corrupt:P) and golden digests
# ---------------------------------------------------------------------------
def resident_digests(engine) -> dict:
    """Golden digests over every resident operand of a packed engine."""
    return {
        name: array_digest(array)
        for name, array in engine.resident_operands().items()
    }


def _corruptible_operands(engine) -> dict:
    """Resident operands eligible for bit flips: integer/bool memories,
    deduplicated by identity (thresholds alias their artifact arrays)."""
    out: dict[str, np.ndarray] = {}
    seen: set[int] = set()
    for name, array in engine.resident_operands().items():
        if array.dtype.kind not in "bui" or array.size == 0:
            continue
        if id(array) in seen:
            continue
        seen.add(id(array))
        out[name] = array
    return out


def _flip_bits_in(array: np.ndarray, rng: np.random.Generator, n_flips: int) -> int:
    """XOR ``n_flips`` random bit positions of ``array``'s raw bytes."""
    if n_flips <= 0:
        return 0
    buffer = array if array.flags.c_contiguous else np.ascontiguousarray(array)
    flat = buffer.reshape(-1).view(np.uint8)
    positions = rng.integers(0, flat.size * 8, size=n_flips)
    masks = (1 << (positions % 8)).astype(np.uint8)
    np.bitwise_xor.at(flat, positions // 8, masks)
    if buffer is not array:
        array[...] = buffer
    return n_flips


def flip_resident_bits(
    engine,
    rng: np.random.Generator,
    n_flips: int | None = None,
    rate: float | None = None,
) -> dict:
    """Flip bits of the engine's resident operands *in place*.

    Exactly one dose selector: ``n_flips`` concentrates that many flips
    in one randomly chosen operand (the chaos ``corrupt`` shape — a
    localized upset burst), while ``rate`` flips at a per-bit rate
    across *every* corruptible operand (the ``fault_sweep`` shape).
    Returns ``{operand name: flips applied}``.
    """
    if (n_flips is None) == (rate is None):
        raise ValueError("pass exactly one of n_flips or rate")
    targets = _corruptible_operands(engine)
    if not targets:
        return {}
    applied: dict[str, int] = {}
    if rate is not None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        for name in sorted(targets):
            array = targets[name]
            count = _flip_bits_in(array, rng, int(round(rate * array.nbytes * 8)))
            if count:
                applied[name] = count
    else:
        names = sorted(targets)
        name = names[int(rng.integers(len(names)))]
        count = _flip_bits_in(targets[name], rng, int(n_flips))
        if count:
            applied[name] = count
    return applied


def maybe_corrupt_resident(engine, spec: ChaosSpec, batch_index: int) -> dict:
    """The chaos ``corrupt:P`` seam, fired between micro-batches.

    With probability ``spec.corrupt_rate``, flips 1–32 bits in one
    resident operand.  Every draw comes from ``default_rng((seed,
    domain, batch_index))`` so a chaos serving run corrupts the same
    memory at the same batches under a fixed seed.  Returns the applied
    flips (empty when the draw passes).
    """
    if spec is None or not spec.corrupt_rate:
        return {}
    rng = np.random.default_rng((spec.seed, _CORRUPT_DOMAIN, batch_index))
    if rng.random() >= spec.corrupt_rate:
        return {}
    applied = flip_resident_bits(engine, rng, n_flips=int(rng.integers(1, 33)))
    registry = get_registry()
    registry.counter("integrity.corruptions").add(1)
    registry.counter("integrity.corrupt_bits").add(sum(applied.values()))
    return applied


# ---------------------------------------------------------------------------
# the scrubber
# ---------------------------------------------------------------------------
@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    scanned: int
    corrupted: list
    repaired: bool
    repair_source: str = ""
    margin_window_mean: float | None = None
    wall_s: float = 0.0
    error: str = ""

    @property
    def clean(self) -> bool:
        """True when every resident operand matched its golden digest."""
        return not self.corrupted

    def as_dict(self) -> dict:
        """JSON-friendly view (admin endpoint / CI assertions)."""
        return {
            "scanned": self.scanned,
            "corrupted": list(self.corrupted),
            "clean": self.clean,
            "repaired": self.repaired,
            "repair_source": self.repair_source,
            "margin_window_mean": self.margin_window_mean,
            "wall_s": self.wall_s,
            "error": self.error,
        }


class IntegrityScrubber:
    """Golden-digest scrubbing with hot repair for a live engine.

    ``target`` is either a bare :class:`~repro.core.inference
    .BitPackedUniVSA` or a runner exposing ``.engine`` and
    ``.replace_engine`` (:class:`~repro.runtime.resilience
    .ResilientBatchRunner`) — with a runner, a repair hot-swaps the
    rebuilt engine into live serving (worker pools rebuilt, legacy
    fallback reset) without dropping a single accepted request.

    ``source`` selects where a repair gets truth from: a path repairs
    from the verified on-disk archive (``UniVSAArtifacts.load(...,
    verify=True)``); ``None`` retains a pristine deep copy of the
    artifact arrays at construction and repairs from memory.  Either
    way the rebuilt engine must reproduce the golden digests exactly —
    a source that drifted from the deployed model is refused rather
    than silently swapped in.
    """

    def __init__(self, target, source=None) -> None:
        self._runner = target if hasattr(target, "replace_engine") else None
        engine = target.engine if self._runner is not None else target
        self._engine = engine
        self._mode = engine.mode
        self._conv_tile_mb = engine.conv_tile_mb
        self.source = None if source is None else Path(str(source))
        self._pristine = (
            _copy_artifact_arrays(engine.artifacts) if self.source is None else None
        )
        self.golden = resident_digests(engine)
        self._margin_mark = self._margin_snapshot()
        self.last_report: ScrubReport | None = None

    @property
    def engine(self):
        """The live engine (tracks hot swaps through the runner)."""
        return self._runner.engine if self._runner is not None else self._engine

    # -- scrub pass -----------------------------------------------------
    def scrub(self) -> ScrubReport:
        """Re-hash every resident operand; detect, repair, and report.

        Callers serialize scrubs against batch execution themselves (the
        serve layer runs both on its single batch-executor thread), so a
        repair never swaps an engine out from under an in-flight batch.
        """
        registry = get_registry()
        registry.counter("integrity.scrubs").add(1)
        start = time.perf_counter()
        current = resident_digests(self.engine)
        corrupted = sorted(
            name
            for name, digest in self.golden.items()
            if current.get(name) != digest
        )
        window_mean = self._margin_window_mean()
        repaired = False
        repair_source = ""
        error = ""
        if corrupted:
            registry.counter("integrity.mismatches").add(1)
            registry.counter("integrity.corrupt_arrays").add(len(corrupted))
            if window_mean is not None:
                # Mean soft-vote margin of the answers produced since the
                # previous scrub — i.e. during the corrupted window.  The
                # dip vs integrity.margin_window_mean is how much quality
                # the Θ-way voting redundancy absorbed before repair.
                registry.gauge("integrity.margin_corrupt_window").set(window_mean)
            try:
                repair_source = self._repair()
                repaired = True
                registry.counter("integrity.repairs").add(1)
            except Exception as exc:  # noqa: BLE001 — scrubbing must not kill serving
                error = f"{type(exc).__name__}: {exc}"
                registry.counter("integrity.repair_failures").add(1)
        elif window_mean is not None:
            registry.gauge("integrity.margin_window_mean").set(window_mean)
        self._margin_mark = self._margin_snapshot()
        report = ScrubReport(
            scanned=len(self.golden),
            corrupted=corrupted,
            repaired=repaired,
            repair_source=repair_source,
            margin_window_mean=window_mean,
            wall_s=time.perf_counter() - start,
            error=error,
        )
        self.last_report = report
        return report

    def _repair(self) -> str:
        """Rebuild the engine from the verified source and hot-swap it."""
        from repro.core.export import UniVSAArtifacts
        from repro.core.inference import BitPackedUniVSA

        if self.source is not None:
            artifacts = UniVSAArtifacts.load(self.source, verify=True)
            kind = f"disk:{self.source}"
        else:
            artifacts = _copy_artifact_arrays(self._pristine)
            kind = "memory"
        engine = BitPackedUniVSA(
            artifacts, mode=self._mode, conv_tile_mb=self._conv_tile_mb
        )
        if resident_digests(engine) != self.golden:
            raise ArtifactCorruptionError(
                "repair source does not reproduce the golden operand digests "
                "(different model, or the source itself decayed)",
                path=self.source,
            )
        if self._runner is not None:
            self._runner.replace_engine(engine)
        self._engine = engine
        return kind

    # -- margin bookkeeping ---------------------------------------------
    @staticmethod
    def _margin_snapshot() -> tuple:
        registry = get_registry()
        if not registry.enabled:
            return (0, 0.0)
        summary = registry.histogram(MARGIN_HISTOGRAM).summary()
        return (int(summary.get("count", 0)), float(summary.get("total", 0.0)))

    def _margin_window_mean(self) -> float | None:
        count, total = self._margin_snapshot()
        mark_count, mark_total = self._margin_mark
        if count <= mark_count:
            return None
        return (total - mark_total) / (count - mark_count)

    # -- admin plane ----------------------------------------------------
    def status(self) -> dict:
        """Live scrubber state for the serve admin endpoint."""
        return {
            "arrays": len(self.golden),
            "source": "memory" if self.source is None else str(self.source),
            "last": None if self.last_report is None else self.last_report.as_dict(),
        }


def _copy_artifact_arrays(artifacts):
    """Shallow-copy artifacts with every array deep-copied.

    The pristine master and the live engine must never alias: a flip in
    resident memory may hit an artifact array directly, and repairing
    from an aliased copy would faithfully restore the corruption.
    """
    import copy

    clone = copy.copy(artifacts)
    for name in (
        "mask",
        "value_high",
        "value_low",
        "kernel",
        "feature_vectors",
        "class_vectors",
        "conv_thresholds",
        "conv_flips",
    ):
        array = getattr(artifacts, name)
        if array is not None:
            setattr(clone, name, np.array(array, copy=True))
    return clone
