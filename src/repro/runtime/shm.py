"""Zero-copy shard handoff over POSIX shared memory.

Process executors previously pickled every shard's level array across
the pool boundary — for a batch of B samples split into S shards that is
B samples serialized, copied through a pipe, and deserialized, *per
batch*.  :class:`SharedArray` replaces the payload with a name: the
parent materializes the batch **once** in a
:mod:`multiprocessing.shared_memory` segment and submits ``(descriptor,
start, stop)`` tuples; workers attach by name and slice a zero-copy
read-only view.  The pipe now carries ~100 bytes per shard regardless of
batch size.

Ownership is strictly parent-side:

* the parent (the :class:`~repro.runtime.batch.BatchRunner` that built
  the segment) is the only unlinker — :meth:`SharedArray.dispose` closes
  *and* unlinks, and runners call it in a ``finally`` so no segment
  outlives its batch, even when a shard raises;
* workers only ever attach and close.  Attached handles are kept in a
  small per-process LRU (:func:`attach_view`) because serving reuses one
  segment for many shards.  On Linux the attach maps the ``/dev/shm``
  file directly (read-only mmap), which keeps
  :mod:`multiprocessing.resource_tracker` entirely out of the workers —
  crucial under a fork start method, where workers *share* the parent's
  tracker and an attach-side register/unregister would corrupt the
  parent's own registration.  Elsewhere the fallback attaches through
  :class:`~multiprocessing.shared_memory.SharedMemory` and unregisters
  the borrowed handle (``track=False`` exists only on Python 3.13+; on a
  spawn start method the worker's private tracker would otherwise unlink
  the parent's live segment at worker exit);
* a crashed worker cannot leak: the kernel frees the mapping with the
  process, and the name is the parent's to unlink.  ``BrokenProcessPool``
  recovery disposes the old segment and re-shares
  (:meth:`ResilientBatchRunner._recover_pool`), so resubmitted shards
  never attach to a name a dead pool might have corrupted mid-write.

Segment names carry the :data:`SHM_PREFIX` prefix plus the owning PID,
so :func:`leaked_segments` can enumerate ``/dev/shm`` and CI can assert
the count is zero after a chaos bench — the lifecycle test, not a hope.
"""

from __future__ import annotations

import mmap
import os
import secrets
from collections import OrderedDict
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = [
    "SHM_PREFIX",
    "SharedArray",
    "attach_view",
    "evict_attachments",
    "leaked_segments",
    "resolve_shm",
]

#: Every segment this module creates is named ``repro-shm-<pid>-<nonce>``.
SHM_PREFIX = "repro-shm"

#: Attached-segment handles cached per worker process (LRU).  Serving
#: touches one segment per batch, and recovery introduces a second while
#: shards of the old batch may still be in flight — two is enough.
_ATTACH_CACHE_SIZE = 2

_attached: "OrderedDict[str, _Attachment]" = OrderedDict()


class _Attachment:
    """A worker-side read-only handle on a parent-owned segment."""

    def __init__(self, name: str) -> None:
        path = f"/dev/shm/{name}"
        self._shm: shared_memory.SharedMemory | None = None
        self._mmap: mmap.mmap | None = None
        if os.path.exists(path):
            # Tracker-free attach: map the tmpfs file read-only.
            fd = os.open(path, os.O_RDONLY)
            try:
                self._mmap = mmap.mmap(fd, 0, prot=mmap.PROT_READ)
            finally:
                os.close(fd)
            self.buf: memoryview = memoryview(self._mmap)
        else:  # pragma: no cover — non-Linux fallback
            self._shm = shared_memory.SharedMemory(name=name)
            # The tracker assumes whoever opens a segment owns it and
            # unlinks leftovers at interpreter exit.  This handle is
            # borrowed — unregister so a worker exiting mid-serve cannot
            # destroy the parent's live segment (``track=False`` is the
            # 3.13+ spelling of the same intent).
            try:
                resource_tracker.unregister(self._shm._name, "shared_memory")
            except Exception:
                pass
            self.buf = self._shm.buf

    def close(self) -> None:
        if self._shm is not None:
            self._shm.close()
        elif self._mmap is not None:
            try:
                self.buf.release()
                self._mmap.close()
            except BufferError:  # a live ndarray still aliases the map
                pass


def resolve_shm(flag: bool | None, executor_kind: str) -> bool:
    """Whether a runner should hand shards off via shared memory.

    Thread executors share the parent's address space already, so shm
    only ever applies to process pools.  ``None`` defers to the
    ``REPRO_SHM`` environment switch (default on).
    """
    if executor_kind != "process":
        return False
    if flag is None:
        env = os.environ.get("REPRO_SHM", "1").strip().lower()
        return env not in ("0", "false", "no", "off")
    return bool(flag)


class SharedArray:
    """A parent-owned ndarray materialized in a shared-memory segment.

    ``SharedArray(array)`` copies ``array`` into a fresh segment (the one
    copy the handoff pays, amortized over every shard and retry of the
    batch).  :meth:`descriptor` is the picklable handle workers attach
    with; :meth:`dispose` is idempotent and must be called exactly once
    per batch lifetime by the owner.
    """

    def __init__(self, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array)
        name = f"{SHM_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes), name=name
        )
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=self._shm.buf)
        view[...] = array
        self.name = self._shm.name
        self.shape = array.shape
        self.dtype = array.dtype
        self.nbytes = int(array.nbytes)

    def descriptor(self) -> tuple:
        """Picklable ``(name, shape, dtype_str)`` handle for workers."""
        return (self.name, self.shape, self.dtype.str)

    def view(self) -> np.ndarray:
        """The parent's own zero-copy view of the segment."""
        return np.ndarray(self.shape, dtype=self.dtype, buffer=self._shm.buf)

    def dispose(self) -> None:
        """Close and unlink the segment (idempotent, owner-only)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.dispose()

    def __del__(self) -> None:  # last-resort leak guard, not the contract
        try:
            self.dispose()
        except Exception:
            pass


def _attach(name: str) -> _Attachment:
    """Attach to a segment by name, with a small per-process cache."""
    cached = _attached.get(name)
    if cached is not None:
        _attached.move_to_end(name)
        return cached
    attachment = _Attachment(name)
    _attached[name] = attachment
    while len(_attached) > _ATTACH_CACHE_SIZE:
        _, stale = _attached.popitem(last=False)
        stale.close()
    return attachment


def attach_view(descriptor: tuple, start: int, stop: int) -> np.ndarray:
    """A worker's read-only zero-copy view of rows ``[start, stop)``.

    The returned array aliases the shared segment — marked non-writable
    so an engine bug cannot corrupt shards other workers are reading.
    """
    name, shape, dtype_str = descriptor
    shm = _attach(name)
    full = np.ndarray(tuple(shape), dtype=np.dtype(dtype_str), buffer=shm.buf)
    view = full[start:stop]
    view.flags.writeable = False
    return view


def evict_attachments() -> None:
    """Close every cached attachment (test isolation / worker teardown)."""
    while _attached:
        _, shm = _attached.popitem(last=False)
        shm.close()


def leaked_segments() -> list[str]:
    """Names of ``/dev/shm`` entries this module's prefix ever created.

    Empty on platforms without a ``/dev/shm`` filesystem — the leak
    check is then vacuous rather than wrong.
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(SHM_PREFIX))
