"""Zero-copy shard handoff over POSIX shared memory.

Process executors previously pickled every shard's level array across
the pool boundary — for a batch of B samples split into S shards that is
B samples serialized, copied through a pipe, and deserialized, *per
batch*.  :class:`SharedArray` replaces the payload with a name: the
parent materializes the batch **once** in a
:mod:`multiprocessing.shared_memory` segment and submits ``(descriptor,
start, stop)`` tuples; workers attach by name and slice a zero-copy
read-only view.  The pipe now carries ~100 bytes per shard regardless of
batch size.

The same segment machinery now serves three planes:

* the **request plane** — the batch's level array, read-only to workers;
* the **result plane** — a parent-allocated ``(B, n_classes)`` score
  segment each worker *writes* at its span offset
  (``attach_view(..., writable=True)``), so the return leg pickles a
  span tuple instead of an array;
* the **operand plane** (:class:`OperandPlane`) — the packed engine's
  resident read-only operands serialized once at pool spin-up; worker
  initializers attach and reconstruct views instead of rebuilding the
  engine from pickled artifacts.  ``replace_engine()`` repairs become a
  re-publish plus a generation bump that workers detect per shard.

Ownership is strictly parent-side:

* the parent (the :class:`~repro.runtime.batch.BatchRunner` that built
  the segment) is the only unlinker — :meth:`SharedArray.dispose` closes
  *and* unlinks, and runners call it in a ``finally`` so no segment
  outlives its batch, even when a shard raises;
* workers only ever attach and close.  Attached handles are kept in a
  small per-process LRU (:func:`attach_view`) because serving reuses one
  segment for many shards.  On Linux the attach maps the ``/dev/shm``
  file directly (read-only mmap; ``PROT_WRITE`` added only for the
  result plane), which keeps :mod:`multiprocessing.resource_tracker`
  entirely out of the workers — crucial under a fork start method, where
  workers *share* the parent's tracker and an attach-side
  register/unregister would corrupt the parent's own registration.
  Elsewhere the fallback attaches through
  :class:`~multiprocessing.shared_memory.SharedMemory` and unregisters
  the borrowed handle (``track=False`` exists only on Python 3.13+; on a
  spawn start method the worker's private tracker would otherwise unlink
  the parent's live segment at worker exit);
* a crashed worker cannot leak: the kernel frees the mapping with the
  process, and the name is the parent's to unlink.  ``BrokenProcessPool``
  recovery disposes the old segments and re-shares both planes
  (:meth:`ResilientBatchRunner._recover_pool`), so resubmitted shards
  never attach to a name a dead pool might have corrupted mid-write.

:class:`SegmentArena` amortizes segment churn: consecutive batches of
identical shape reuse a disposed-into-the-arena segment (same name, data
overwritten in place — worker attach caches stay valid because the
mapping is the same tmpfs file) instead of a create/unlink pair per
batch.  Recovery calls :meth:`SegmentArena.discard` so a name a dead
pool may have been writing is never reissued.

Segment names carry the :data:`SHM_PREFIX` prefix plus the owning PID,
so :func:`leaked_segments` can enumerate ``/dev/shm`` and CI can assert
the count is zero after a chaos bench — the lifecycle test, not a hope.
"""

from __future__ import annotations

import os
import mmap
import pickle
import secrets
import struct
import threading
from collections import OrderedDict
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = [
    "SHM_PREFIX",
    "OperandPlane",
    "SegmentArena",
    "SharedArray",
    "attach_plane",
    "attach_view",
    "evict_attachments",
    "leaked_segments",
    "resolve_shm",
]

#: Every segment this module creates is named ``repro-shm-<pid>-<nonce>``.
SHM_PREFIX = "repro-shm"

#: Attached-segment handles cached per worker process (LRU).  A serving
#: worker touches up to three live segments per batch (request plane,
#: result plane, operand plane); pipelined serving doubles the batch
#: planes, recovery re-shares them under fresh names, and micro-batches
#: of varying sizes each get their own arena segments — so the working
#: set of names is much larger than one batch's.  Eviction is safe
#: (views pin their mapping; see :func:`attach_view`) but costs a
#: re-mmap, so the cache is sized to make it rare.
_ATTACH_CACHE_SIZE = 16

_attached: "OrderedDict[tuple[str, bool], _Attachment]" = OrderedDict()


class _Attachment:
    """A worker-side handle on a parent-owned segment.

    Read-only by default; ``writable=True`` maps with ``PROT_WRITE`` for
    the result plane (workers write disjoint row spans in place).
    """

    def __init__(self, name: str, writable: bool = False) -> None:
        path = f"/dev/shm/{name}"
        self._shm: shared_memory.SharedMemory | None = None
        self._mmap: mmap.mmap | None = None
        if os.path.exists(path):
            # Tracker-free attach: map the tmpfs file directly.
            fd = os.open(path, os.O_RDWR if writable else os.O_RDONLY)
            try:
                prot = mmap.PROT_READ | (mmap.PROT_WRITE if writable else 0)
                self._mmap = mmap.mmap(fd, 0, prot=prot)
            finally:
                os.close(fd)
            self.buf: memoryview = memoryview(self._mmap)
        else:  # pragma: no cover — non-Linux fallback
            self._shm = shared_memory.SharedMemory(name=name)
            # The tracker assumes whoever opens a segment owns it and
            # unlinks leftovers at interpreter exit.  This handle is
            # borrowed — unregister so a worker exiting mid-serve cannot
            # destroy the parent's live segment (``track=False`` is the
            # 3.13+ spelling of the same intent).
            try:
                resource_tracker.unregister(self._shm._name, "shared_memory")
            except Exception:
                pass
            self.buf = self._shm.buf

    def close(self) -> None:
        # Views handed out by attach_view/attach_plane are built with
        # np.frombuffer, which registers a buffer export on the mmap —
        # so closing under a live view raises BufferError and the
        # mapping survives until the last view dies (np.ndarray(buffer=)
        # would NOT pin it: the munmap would succeed and the view would
        # read unmapped — or worse, recycled — memory).
        try:
            if self._shm is not None:
                self._shm.close()
            elif self._mmap is not None:
                self.buf.release()
                self._mmap.close()
        except BufferError:  # a live ndarray still aliases the map
            pass


def resolve_shm(flag: bool | None, executor_kind: str) -> bool:
    """Whether a runner should hand shards off via shared memory.

    Thread executors share the parent's address space already, so shm
    only ever applies to process pools.  ``None`` defers to the
    ``REPRO_SHM`` environment switch (default on).
    """
    if executor_kind != "process":
        return False
    if flag is None:
        env = os.environ.get("REPRO_SHM", "1").strip().lower()
        return env not in ("0", "false", "no", "off")
    return bool(flag)


def _fresh_name() -> str:
    return f"{SHM_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"


class SharedArray:
    """A parent-owned ndarray materialized in a shared-memory segment.

    ``SharedArray(array)`` copies ``array`` into a fresh segment (the one
    copy the handoff pays, amortized over every shard and retry of the
    batch); :meth:`allocate` creates an uninitialized segment the result
    plane's workers fill in place.  :meth:`descriptor` is the picklable
    handle workers attach with; :meth:`dispose` is idempotent and must be
    called exactly once per batch lifetime by the owner (or the segment
    handed back to a :class:`SegmentArena` for reuse).
    """

    def __init__(self, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array)
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes), name=_fresh_name()
        )
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=self._shm.buf)
        view[...] = array
        self.name = self._shm.name
        self.shape = array.shape
        self.dtype = array.dtype
        self.nbytes = int(array.nbytes)

    @classmethod
    def allocate(cls, shape: tuple, dtype) -> "SharedArray":
        """A zero-initialized segment of the given shape (result plane)."""
        self = cls.__new__(cls)
        dtype = np.dtype(dtype)
        shape = tuple(int(s) for s in shape)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, nbytes), name=_fresh_name()
        )
        self.name = self._shm.name
        self.shape = shape
        self.dtype = dtype
        self.nbytes = nbytes
        return self

    def write(self, array: np.ndarray) -> None:
        """Overwrite the segment's contents in place (arena reuse)."""
        array = np.asarray(array)
        if array.shape != self.shape or array.dtype != self.dtype:
            raise ValueError(
                f"shape/dtype mismatch: segment holds {self.shape}/{self.dtype}, "
                f"got {array.shape}/{array.dtype}"
            )
        self.view()[...] = array

    def descriptor(self) -> tuple:
        """Picklable ``(name, shape, dtype_str)`` handle for workers."""
        return (self.name, self.shape, self.dtype.str)

    def view(self) -> np.ndarray:
        """The parent's own zero-copy view of the segment."""
        return np.ndarray(self.shape, dtype=self.dtype, buffer=self._shm.buf)

    def dispose(self) -> None:
        """Close and unlink the segment (idempotent, owner-only)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass

    @property
    def disposed(self) -> bool:
        return self._shm is None

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.dispose()

    def __del__(self) -> None:  # last-resort leak guard, not the contract
        try:
            self.dispose()
        except Exception:
            pass


class SegmentArena:
    """Parent-side segment reuse across consecutive same-shape batches.

    Serving runs thousands of identically-shaped batches; creating and
    unlinking a tmpfs file per batch is measurable syscall churn and
    defeats the workers' attach cache (every batch is a new name to map).
    The arena keeps disposed-into-it segments on a per-``(shape, dtype)``
    free list and hands them back with their data overwritten in place —
    same name, same file, so a worker's cached mapping stays valid.

    Thread-safe: pipelined serving acquires from multiple executor slots
    concurrently.  :meth:`discard` destroys a segment instead of pooling
    it — recovery uses it so a name a dead pool may have been writing is
    never reissued.  :meth:`drain` disposes everything (runner close).
    """

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = int(capacity)
        self._free: dict[tuple, list[SharedArray]] = {}
        self._lock = threading.Lock()
        self.reused = 0
        self.allocated = 0

    def _key(self, shape: tuple, dtype) -> tuple:
        return (tuple(int(s) for s in shape), np.dtype(dtype).str)

    def _pop(self, key: tuple) -> SharedArray | None:
        with self._lock:
            pool = self._free.get(key)
            if pool:
                return pool.pop()
        return None

    def acquire(self, array: np.ndarray) -> SharedArray:
        """A segment holding a copy of ``array`` (reused when possible)."""
        array = np.ascontiguousarray(array)
        segment = self._pop(self._key(array.shape, array.dtype))
        if segment is not None:
            segment.write(array)
            self.reused += 1
            return segment
        self.allocated += 1
        return SharedArray(array)

    def acquire_empty(self, shape: tuple, dtype) -> SharedArray:
        """An output segment of the given shape (contents unspecified)."""
        segment = self._pop(self._key(shape, dtype))
        if segment is not None:
            self.reused += 1
            return segment
        self.allocated += 1
        return SharedArray.allocate(shape, dtype)

    def release(self, segment: SharedArray | None) -> None:
        """Return a segment to the free list (or dispose past capacity)."""
        if segment is None or segment.disposed:
            return
        key = self._key(segment.shape, segment.dtype)
        with self._lock:
            pool = self._free.setdefault(key, [])
            total = sum(len(p) for p in self._free.values())
            if total < self.capacity:
                pool.append(segment)
                return
        segment.dispose()

    def discard(self, segment: SharedArray | None) -> None:
        """Destroy a segment outright — never reissue its name."""
        if segment is not None:
            segment.dispose()

    def drain(self) -> None:
        """Dispose every pooled segment (owner teardown)."""
        with self._lock:
            pools, self._free = list(self._free.values()), {}
        for pool in pools:
            for segment in pool:
                segment.dispose()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(p) for p in self._free.values())


def _align64(n: int) -> int:
    return (n + 63) & ~63


class OperandPlane:
    """The packed engine's resident operands in one parent-owned segment.

    Layout: ``[u64 header length][pickled header][64-byte-aligned array
    data]``.  The header carries a small metadata dict plus the array
    table ``(name, offset, shape, dtype_str)``; array *data* is raw bytes
    at stable offsets, so workers reconstruct zero-copy read-only views
    with :func:`attach_plane` instead of unpickling tens of megabytes of
    operands per worker.  ``generation`` increments on every re-publish
    (``replace_engine()`` repairs); shard submissions carry the
    descriptor, and workers rebuild their cached engine when the
    generation they see changes.
    """

    def __init__(
        self,
        arrays: dict[str, np.ndarray],
        meta: dict | None = None,
        generation: int = 1,
    ) -> None:
        entries = []
        offset = 0
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            entries.append((name, offset, arr.shape, arr.dtype.str, arr))
            offset = _align64(offset + max(1, arr.nbytes))
        header = pickle.dumps(
            {
                "meta": dict(meta or {}),
                "table": [(n, off, shape, dt) for n, off, shape, dt, _ in entries],
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        data_start = _align64(8 + len(header))
        total = data_start + max(1, offset)
        self._shm = shared_memory.SharedMemory(
            create=True, size=total, name=_fresh_name()
        )
        buf = self._shm.buf
        buf[:8] = struct.pack("<Q", len(header))
        buf[8 : 8 + len(header)] = header
        for name, off, _shape, _dt, arr in entries:
            dest = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=buf, offset=data_start + off
            )
            dest[...] = arr
        self.name = self._shm.name
        self.generation = int(generation)
        self.nbytes = int(total)

    def descriptor(self) -> tuple:
        """Picklable ``(name, generation)`` handle for worker shards."""
        return (self.name, self.generation)

    def dispose(self) -> None:
        """Close and unlink the segment (idempotent, owner-only)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass

    def __del__(self) -> None:  # last-resort leak guard, not the contract
        try:
            self.dispose()
        except Exception:
            pass


def attach_plane(descriptor: tuple) -> tuple[dict[str, np.ndarray], dict]:
    """A worker's zero-copy read-only view of an operand plane.

    Returns ``(arrays, meta)``; every array aliases the shared segment
    and is marked non-writable.  The attachment goes through the same
    per-process LRU as shard views.
    """
    name, _generation = descriptor
    shm = _attach(name)
    (header_len,) = struct.unpack("<Q", bytes(shm.buf[:8]))
    header = pickle.loads(bytes(shm.buf[8 : 8 + header_len]))
    data_start = _align64(8 + header_len)
    arrays: dict[str, np.ndarray] = {}
    for arr_name, off, shape, dtype_str in header["table"]:
        shape = tuple(shape)
        dtype = np.dtype(dtype_str)
        # frombuffer, not np.ndarray(buffer=...): the export pins the
        # mapping for the life of the engine's operand views, so an LRU
        # eviction of this attachment cannot munmap under the engine.
        arr = np.frombuffer(
            shm.buf,
            dtype=dtype,
            count=int(np.prod(shape, dtype=np.int64)),
            offset=data_start + off,
        ).reshape(shape)
        arr.flags.writeable = False
        arrays[arr_name] = arr
    return arrays, header["meta"]


def _attach(name: str, writable: bool = False) -> _Attachment:
    """Attach to a segment by name, with a small per-process cache."""
    key = (name, writable)
    cached = _attached.get(key)
    if cached is not None:
        _attached.move_to_end(key)
        return cached
    attachment = _Attachment(name, writable=writable)
    _attached[key] = attachment
    while len(_attached) > _ATTACH_CACHE_SIZE:
        _, stale = _attached.popitem(last=False)
        stale.close()
    return attachment


def attach_view(
    descriptor: tuple, start: int, stop: int, writable: bool = False
) -> np.ndarray:
    """A worker's zero-copy view of rows ``[start, stop)``.

    Read-only by default — marked non-writable so an engine bug cannot
    corrupt shards other workers are reading.  ``writable=True`` maps the
    result plane, where each worker owns a disjoint row span.
    """
    name, shape, dtype_str = descriptor
    shm = _attach(name, writable=writable)
    shape = tuple(shape)
    dtype = np.dtype(dtype_str)
    # np.frombuffer (unlike np.ndarray(buffer=...)) registers a buffer
    # export on the mapping, so the view keeps the pages alive even if
    # the attachment is evicted from the LRU while the view is in use.
    count = int(np.prod(shape, dtype=np.int64))
    full = np.frombuffer(shm.buf, dtype=dtype, count=count).reshape(shape)
    view = full[start:stop]
    if not writable:
        view.flags.writeable = False
    return view


def evict_attachments() -> None:
    """Close every cached attachment (test isolation / worker teardown)."""
    while _attached:
        _, shm = _attached.popitem(last=False)
        shm.close()


def attached_names() -> list[str]:
    """Names currently held in the attach cache (tests/diagnostics)."""
    return [name for name, _writable in _attached.keys()]


def leaked_segments() -> list[str]:
    """Names of ``/dev/shm`` entries this module's prefix ever created.

    Empty on platforms without a ``/dev/shm`` filesystem — the leak
    check is then vacuous rather than wrong.
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(SHM_PREFIX))
