"""Streaming inference runtime: continuous signal in, decisions out.

The paper's deployment target is a continuously-sampling BCI: the device
never sees "samples", it sees an unbounded signal. This runtime closes
that gap around a deployed model:

* a ring buffer accumulates raw channel data;
* every ``hop`` new frames, the (W, L) window matrix is assembled exactly
  as the training pipeline's windowing did, quantized with the *training*
  quantizer, and classified by the binary artifacts;
* an optional majority-vote smoother debounces the decision stream (the
  standard BCI post-processing);
* per-decision latency is accounted against the hardware model's
  streaming schedule.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.export import UniVSAArtifacts
from repro.data.quantize import Quantizer
from repro.data.windows import window_layout
from repro.hw.arch import HardwareSpec
from repro.hw.pipeline import pipeline_schedule
from repro.obs import get_registry, get_tracer, stage_timer

__all__ = ["StreamingDecision", "StreamingClassifier"]


@dataclass(frozen=True)
class StreamingDecision:
    """One emitted decision."""

    frame_index: int  # index of the newest frame in the window
    label: int
    smoothed_label: int
    scores: np.ndarray
    latency_us: float  # hardware-model inference latency


@dataclass
class StreamingClassifier:
    """Online classifier over a continuous 1-D signal.

    ``artifacts`` is the deployed model; ``quantizer`` must be the one
    fitted on the training split.  The signal is consumed frame by frame
    via :meth:`push`; the first decision is emitted on the frame the
    buffer first holds a full window span, then every ``hop`` frames.
    """

    artifacts: UniVSAArtifacts
    quantizer: Quantizer
    hop: int = 32
    smoothing: int = 1  # majority vote over the last k decisions
    frequency_mhz: float = 250.0
    _buffer: deque = field(default_factory=deque, repr=False)
    _recent: deque = field(default_factory=deque, repr=False)
    _frames_seen: int = 0
    _span: int = field(default=0, repr=False)
    _starts: np.ndarray | None = field(default=None, repr=False)
    _latency_us: float = field(default=0.0, repr=False)
    _filled_at: int | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.hop < 1:
            raise ValueError("hop must be >= 1")
        if self.smoothing < 1:
            raise ValueError("smoothing must be >= 1")
        w, length = self.artifacts.input_shape
        # Span: enough frames that W windows of length L fit with the
        # training layout's overlap structure.
        self._span = length * max(w // 2, 1) + length
        self._starts, _ = window_layout(self._span, w, length)
        self._buffer = deque(maxlen=self._span)
        self._recent = deque(maxlen=self.smoothing)
        spec = HardwareSpec(
            config=self.artifacts.config,
            input_shape=self.artifacts.input_shape,
            n_classes=self.artifacts.n_classes,
            frequency_mhz=self.frequency_mhz,
        )
        interval = pipeline_schedule(spec).initiation_interval
        self._latency_us = interval * spec.clock_period_ns() / 1000.0

    @property
    def window_span(self) -> int:
        """Frames needed before the first decision."""
        return self._span

    def push(self, frames: np.ndarray | float) -> list[StreamingDecision]:
        """Feed new signal frames; returns decisions emitted (may be [])."""
        frames = np.atleast_1d(np.asarray(frames, dtype=np.float64))
        if frames.ndim != 1:
            raise ValueError("push expects scalar or 1-D frames")
        decisions: list[StreamingDecision] = []
        for value in frames:
            self._buffer.append(float(value))
            self._frames_seen += 1
            if len(self._buffer) < self._span:
                continue
            # Anchor the emission grid at the frame the buffer first
            # fills: decide immediately, then every ``hop`` frames.  A
            # grid anchored at frame 0 would stay silent for up to
            # hop-1 extra frames whenever span % hop != 0.
            if self._filled_at is None:
                self._filled_at = self._frames_seen
            if (self._frames_seen - self._filled_at) % self.hop == 0:
                decisions.append(self._classify())
        registry = get_registry()
        registry.counter("stream.frames").add(len(frames))
        registry.counter("stream.decisions").add(len(decisions))
        registry.gauge("stream.buffer_occupancy").set(len(self._buffer))
        return decisions

    @stage_timer("stream.decision")
    def _classify(self) -> StreamingDecision:
        w, length = self.artifacts.input_shape
        signal = np.asarray(self._buffer)
        window_matrix = np.stack(
            [signal[s : s + length] for s in self._starts]
        )
        levels = self.quantizer.transform(window_matrix)[None]
        scores = self.artifacts.scores(levels)[0]
        label = int(scores.argmax())
        self._recent.append(label)
        smoothed = Counter(self._recent).most_common(1)[0][0]
        # The stage_timer span ("stream.decision") is open here: carry the
        # decision context and the hardware model's latency on the trace,
        # so a span tree shows modeled vs measured side by side.
        tracer = get_tracer()
        if tracer.enabled:
            margin = 0.0
            if len(scores) >= 2:
                top2 = np.partition(scores, len(scores) - 2)
                margin = float(top2[-1] - top2[-2])
            tracer.annotate(
                frame_index=self._frames_seen - 1,
                label=label,
                margin=margin,
                modeled_latency_us=self._latency_us,
            )
        return StreamingDecision(
            frame_index=self._frames_seen - 1,
            label=label,
            smoothed_label=int(smoothed),
            scores=scores,
            latency_us=self._latency_us,
        )

    def reset(self) -> None:
        """Drop buffered signal and smoothing history."""
        self._buffer.clear()
        self._recent.clear()
        self._frames_seen = 0
        self._filled_at = None
        # An idle session must report an empty buffer now, not whenever
        # the next push happens to refresh the gauge.
        get_registry().gauge("stream.buffer_occupancy").set(0.0)
