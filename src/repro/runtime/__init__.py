"""Deployment runtimes for deployed UniVSA models: streaming + batch +
fault-tolerant serving (retry/fallback/quarantine/breaker + chaos) + the
micro-batching online front end and its open-loop load harness."""

from .batch import BatchRunner, WorkerPool, resolve_workers
from .chaos import ChaosError, ChaosSpec, chaos_context, chaos_kernels, parse_chaos
from .integrity import (
    ArtifactCorruptionError,
    IntegrityScrubber,
    ScrubReport,
    damage_archive,
    flip_resident_bits,
    verify_archive,
)
from .loadgen import (
    LoadPoint,
    ServeBenchReport,
    bench_serve,
    bursty_arrivals,
    client_arrivals,
    poisson_arrivals,
    run_open_loop,
)
from .plan import (
    ExecutionPlan,
    calibrate,
    clear_plan_cache,
    load_plan_cache,
    plan_key,
    resolve_plan,
    store_plan,
)
from .resilience import (
    BatchReport,
    BatchResult,
    CircuitOpenError,
    ResilientBatchRunner,
    RetryPolicy,
    ShardStatus,
    serving_predict_fn,
    validate_levels,
)
from .serve import MicroBatchServer, NetPolicy, ServePolicy, ServeResponse, serve_tcp
from .shm import SharedArray, attach_view, leaked_segments, resolve_shm
from .stream import StreamingClassifier, StreamingDecision
from .throughput import EngineSample, ThroughputReport, bench_throughput

__all__ = [
    "StreamingClassifier",
    "StreamingDecision",
    "BatchRunner",
    "WorkerPool",
    "resolve_workers",
    "EngineSample",
    "ThroughputReport",
    "bench_throughput",
    # resilience
    "RetryPolicy",
    "ShardStatus",
    "BatchReport",
    "BatchResult",
    "CircuitOpenError",
    "ResilientBatchRunner",
    "validate_levels",
    "serving_predict_fn",
    # chaos
    "ChaosSpec",
    "ChaosError",
    "chaos_context",
    "chaos_kernels",
    "parse_chaos",
    # execution planner
    "ExecutionPlan",
    "calibrate",
    "clear_plan_cache",
    "load_plan_cache",
    "plan_key",
    "resolve_plan",
    "store_plan",
    # shared-memory handoff
    "SharedArray",
    "attach_view",
    "leaked_segments",
    "resolve_shm",
    # artifact integrity / self-healing
    "ArtifactCorruptionError",
    "IntegrityScrubber",
    "ScrubReport",
    "damage_archive",
    "flip_resident_bits",
    "verify_archive",
    # serving front end
    "NetPolicy",
    "ServePolicy",
    "ServeResponse",
    "MicroBatchServer",
    "serve_tcp",
    # load generation
    "LoadPoint",
    "ServeBenchReport",
    "bench_serve",
    "poisson_arrivals",
    "bursty_arrivals",
    "client_arrivals",
    "run_open_loop",
]
