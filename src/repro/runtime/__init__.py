"""Deployment runtimes for deployed UniVSA models: streaming + batch."""

from .batch import BatchRunner, resolve_workers
from .stream import StreamingClassifier, StreamingDecision
from .throughput import EngineSample, ThroughputReport, bench_throughput

__all__ = [
    "StreamingClassifier",
    "StreamingDecision",
    "BatchRunner",
    "resolve_workers",
    "EngineSample",
    "ThroughputReport",
    "bench_throughput",
]
