"""Streaming deployment runtime for deployed UniVSA models."""

from .stream import StreamingClassifier, StreamingDecision

__all__ = ["StreamingClassifier", "StreamingDecision"]
