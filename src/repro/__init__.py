"""repro — reproduction of UniVSA (DAC 2025).

"Holistic Design towards Resource-Stringent Binary Vector Symbolic
Architecture": an algorithm/hardware co-optimized binary VSA classifier.

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.core` — the UniVSA model, training, export, bit inference
* :mod:`repro.hw` — FPGA cycle/resource/power/memory models + simulator
* :mod:`repro.data` — the six synthetic benchmark tasks
* :mod:`repro.ldc`, :mod:`repro.lehdc`, :mod:`repro.baselines`,
  :mod:`repro.vsa` — baselines and the classic VSA substrate
* :mod:`repro.search` — evolutionary co-design search
* :mod:`repro.nn` — the numpy autograd training substrate
"""

from .core import (
    BitPackedUniVSA,
    UniVSAArtifacts,
    UniVSAConfig,
    UniVSAModel,
    train_univsa,
)
from .core.pipeline import BenchmarkRun, evaluate_artifacts, run_benchmark

__version__ = "1.0.0"

__all__ = [
    "UniVSAConfig",
    "UniVSAModel",
    "UniVSAArtifacts",
    "BitPackedUniVSA",
    "train_univsa",
    "BenchmarkRun",
    "run_benchmark",
    "evaluate_artifacts",
    "__version__",
]
