"""Feature-importance mask construction for Discriminated Value Projection.

The paper builds an input-wise binary mask via feature subset selection
[18] (Kohavi-style wrapper).  We provide both:

* :func:`mutual_information_scores` — fast filter scoring each feature by
  the MI between its discretized values and the label;
* :func:`greedy_wrapper_selection` — an actual wrapper: greedy forward
  selection of *windows* evaluated against a nearest-centroid proxy
  classifier on a validation split;
* :func:`importance_mask` — the artifact DVP consumes: a binary mask of
  shape (W, L) marking high-importance features.

Masks mark whole windows (rows), matching the paper's ECoG framing where
whole time/frequency intervals are irrelevant.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mutual_information_scores",
    "greedy_wrapper_selection",
    "importance_mask",
]


def mutual_information_scores(
    x: np.ndarray, y: np.ndarray, n_bins: int = 16
) -> np.ndarray:
    """MI between each feature of x (B, N) and labels y (B,), in nats."""
    x = np.asarray(x)
    y = np.asarray(y)
    if x.ndim != 2:
        raise ValueError("x must be 2-D (samples, features)")
    n_samples, n_features = x.shape
    n_classes = int(y.max()) + 1
    # Re-bin each feature into n_bins quantile bins.
    scores = np.empty(n_features)
    class_prior = np.bincount(y, minlength=n_classes) / n_samples
    for j in range(n_features):
        column = x[:, j]
        edges = np.quantile(column, np.linspace(0, 1, n_bins + 1)[1:-1])
        bins = np.searchsorted(edges, column)
        joint = np.zeros((n_bins, n_classes))
        np.add.at(joint, (bins, y), 1.0)
        joint /= n_samples
        p_bin = joint.sum(axis=1, keepdims=True)
        expected = p_bin * class_prior[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = joint * np.log(joint / expected)
        scores[j] = np.nansum(terms)
    return scores


def _nearest_centroid_accuracy(
    x_train: np.ndarray, y_train: np.ndarray, x_val: np.ndarray, y_val: np.ndarray
) -> float:
    classes = np.arange(int(y_train.max()) + 1)
    centroids = np.stack(
        [
            x_train[y_train == c].mean(axis=0)
            if (y_train == c).any()
            else np.zeros(x_train.shape[1])
            for c in classes
        ]
    )
    d2 = ((x_val[:, None, :] - centroids[None]) ** 2).sum(axis=-1)
    return float((d2.argmin(axis=1) == y_val).mean())


def greedy_wrapper_selection(
    x: np.ndarray,
    y: np.ndarray,
    n_select: int,
    val_fraction: float = 0.3,
    seed: int = 0,
) -> np.ndarray:
    """Greedy forward wrapper over window groups.

    ``x`` is (B, W, L); returns indices of the ``n_select`` windows chosen.
    Each candidate window is evaluated by the validation accuracy of a
    nearest-centroid classifier on the features selected so far plus the
    candidate (the Kohavi wrapper principle with a cheap learner).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 3:
        raise ValueError("x must be (samples, windows, length)")
    n, w, _ = x.shape
    if not 1 <= n_select <= w:
        raise ValueError("n_select must be in [1, W]")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_val = max(1, int(round(n * val_fraction)))
    val_idx, train_idx = order[:n_val], order[n_val:]
    # Standalone scores break ties once the joint accuracy saturates.
    standalone = np.array(
        [
            _nearest_centroid_accuracy(
                x[train_idx][:, [wi]].reshape(len(train_idx), -1),
                y[train_idx],
                x[val_idx][:, [wi]].reshape(len(val_idx), -1),
                y[val_idx],
            )
            for wi in range(w)
        ]
    )
    selected: list[int] = []
    remaining = list(range(w))
    for _ in range(n_select):
        best_window, best_key = remaining[0], (-1.0, -1.0)
        for candidate in remaining:
            cols = selected + [candidate]
            acc = _nearest_centroid_accuracy(
                x[train_idx][:, cols].reshape(len(train_idx), -1),
                y[train_idx],
                x[val_idx][:, cols].reshape(len(val_idx), -1),
                y[val_idx],
            )
            key = (acc, standalone[candidate])
            if key > best_key:
                best_window, best_key = candidate, key
        selected.append(best_window)
        remaining.remove(best_window)
    return np.array(sorted(selected))


def importance_mask(
    x: np.ndarray,
    y: np.ndarray,
    high_fraction: float = 0.5,
    method: str = "mi",
    seed: int = 0,
) -> np.ndarray:
    """Binary (W, L) mask: 1 marks high-importance windows.

    ``method`` is "mi" (mutual-information filter, default) or "wrapper"
    (greedy forward wrapper).  ``high_fraction`` sets how many windows are
    routed to VB_H; the rest go to VB_L.
    """
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError("x must be (samples, windows, length)")
    _, w, length = x.shape
    if not 0.0 < high_fraction <= 1.0:
        raise ValueError("high_fraction must be in (0, 1]")
    n_high = max(1, int(round(high_fraction * w)))
    if method == "mi":
        scores = mutual_information_scores(x.reshape(len(x), -1), y)
        window_scores = scores.reshape(w, length).mean(axis=1)
        chosen = np.argsort(window_scores)[::-1][:n_high]
    elif method == "wrapper":
        chosen = greedy_wrapper_selection(x, y, n_high, seed=seed)
    else:
        raise ValueError(f"unknown method {method!r}")
    mask = np.zeros((w, length), dtype=np.int8)
    mask[chosen] = 1
    return mask
