"""Feature-importance selection for DVP masks."""

from .selection import (
    greedy_wrapper_selection,
    importance_mask,
    mutual_information_scores,
)

__all__ = [
    "mutual_information_scores",
    "greedy_wrapper_selection",
    "importance_mask",
]
