"""Classification metrics used across benchmarks."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy_score", "confusion_matrix", "balanced_accuracy", "f1_macro"]


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true, y_pred = np.asarray(y_true), np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch between y_true and y_pred")
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None) -> np.ndarray:
    """(C, C) matrix with true classes on rows."""
    y_true, y_pred = np.asarray(y_true), np.asarray(y_pred)
    if n_classes is None:
        n_classes = int(max(y_true.max(), y_pred.max())) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def balanced_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean per-class recall — the fair metric for CHB-IB's imbalance."""
    matrix = confusion_matrix(y_true, y_pred)
    support = matrix.sum(axis=1)
    recalls = np.divide(
        np.diag(matrix), support, out=np.zeros(len(matrix)), where=support > 0
    )
    return float(recalls[support > 0].mean())


def f1_macro(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Macro-averaged F1."""
    matrix = confusion_matrix(y_true, y_pred)
    tp = np.diag(matrix).astype(np.float64)
    fp = matrix.sum(axis=0) - tp
    fn = matrix.sum(axis=1) - tp
    precision = np.divide(tp, tp + fp, out=np.zeros_like(tp), where=(tp + fp) > 0)
    recall = np.divide(tp, tp + fn, out=np.zeros_like(tp), where=(tp + fn) > 0)
    denominator = precision + recall
    f1 = np.divide(
        2 * precision * recall, denominator, out=np.zeros_like(tp), where=denominator > 0
    )
    present = matrix.sum(axis=1) > 0
    return float(f1[present].mean())
