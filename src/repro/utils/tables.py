"""ASCII table rendering in the style of the paper's tables."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_kv"]


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}" if abs(value) < 100 else f"{value:,.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table with a header rule."""
    str_rows = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_kv(pairs: dict[str, object], title: str | None = None) -> str:
    """Render key/value pairs aligned on the colon."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    lines.extend(f"{k.ljust(width)} : {_format_cell(v)}" for k, v in pairs.items())
    return "\n".join(lines)
