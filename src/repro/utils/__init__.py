"""Shared utilities: metrics, tables, training loop."""

from .metrics import accuracy_score, balanced_accuracy, confusion_matrix, f1_macro
from .tables import render_kv, render_table
from .trainloop import TrainConfig, TrainHistory, evaluate_classifier, fit_classifier

__all__ = [
    "accuracy_score",
    "balanced_accuracy",
    "confusion_matrix",
    "f1_macro",
    "render_kv",
    "render_table",
    "TrainConfig",
    "TrainHistory",
    "evaluate_classifier",
    "fit_classifier",
]
