"""Generic minibatch training loop shared by LDC, LeHDC, and UniVSA."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn import Adam, Module, Tensor, batch_iterator, cross_entropy, no_grad
from repro.obs import get_registry, stage_timer

__all__ = ["TrainConfig", "TrainHistory", "fit_classifier", "evaluate_classifier"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters of the STE training recipe."""

    epochs: int = 20
    batch_size: int = 64
    lr: float = 0.01
    weight_decay: float = 0.0
    seed: int = 0
    verbose: bool = False
    balance_classes: bool = False  # inverse-frequency class weights


@dataclass
class TrainHistory:
    """Per-epoch training record."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)


def evaluate_classifier(
    model: Module, x: np.ndarray, y: np.ndarray, batch_size: int = 256
) -> float:
    """Accuracy of ``model`` (forward returns logits) in eval mode."""
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, len(x), batch_size):
            logits = model(Tensor(x[start : start + batch_size]))
            correct += int(
                (logits.data.argmax(axis=1) == y[start : start + batch_size]).sum()
            )
    return correct / len(x)


def fit_classifier(
    model: Module,
    x_train: np.ndarray,
    y_train: np.ndarray,
    config: TrainConfig = TrainConfig(),
    preprocess: Callable[[np.ndarray], np.ndarray] | None = None,
) -> TrainHistory:
    """Train ``model`` with Adam + cross-entropy; returns the history.

    ``preprocess`` maps raw integer-level inputs to the model's expected
    float input (e.g. level normalization); identity when None.
    """
    optimizer = Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    rng = np.random.default_rng(config.seed)
    history = TrainHistory()
    class_weights = None
    if config.balance_classes:
        counts = np.bincount(np.asarray(y_train))
        class_weights = counts.sum() / np.maximum(counts, 1) / len(counts)
    model.train()
    registry = get_registry()
    for epoch in range(config.epochs):
        epoch_loss = 0.0
        epoch_correct = 0
        count = 0
        with stage_timer("train.epoch"):
            for xb, yb in batch_iterator(
                x_train, y_train, config.batch_size, shuffle=True, rng=rng
            ):
                inputs = preprocess(xb) if preprocess else xb
                optimizer.zero_grad()
                logits = model(Tensor(inputs))
                loss = cross_entropy(logits, yb, class_weights=class_weights)
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item() * len(xb)
                epoch_correct += int((logits.data.argmax(axis=1) == yb).sum())
                count += len(xb)
        registry.counter("train.epochs").add(1)
        registry.counter("train.samples").add(count)
        history.losses.append(epoch_loss / count)
        history.accuracies.append(epoch_correct / count)
        if config.verbose:
            print(
                f"epoch {epoch + 1:3d}/{config.epochs}: "
                f"loss={history.losses[-1]:.4f} acc={history.accuracies[-1]:.4f}"
            )
    model.eval()
    return history
