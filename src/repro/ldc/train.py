"""Training entry point for LDC models."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import stage_timer
from repro.utils.trainloop import TrainConfig, TrainHistory, fit_classifier

from .model import LDCArtifacts, LDCModel, extract_artifacts

__all__ = ["LDCResult", "train_ldc"]


@dataclass
class LDCResult:
    """Trained model plus its deployed artifacts and history."""

    model: LDCModel
    artifacts: LDCArtifacts
    history: TrainHistory


def train_ldc(
    x_train: np.ndarray,
    y_train: np.ndarray,
    n_classes: int,
    dim: int = 128,
    levels: int = 256,
    hidden: int = 16,
    config: TrainConfig = TrainConfig(),
) -> LDCResult:
    """Train an LDC binary VSA classifier on discretized samples.

    ``x_train`` is (B, N) or (B, W, L) integer levels in [0, levels).
    """
    x_flat = np.asarray(x_train).reshape(len(x_train), -1)
    model = LDCModel(
        n_features=x_flat.shape[1],
        n_classes=n_classes,
        dim=dim,
        levels=levels,
        hidden=hidden,
        seed=config.seed,
    )
    with stage_timer("ldc.train"):
        history = fit_classifier(
            model, x_flat, np.asarray(y_train), config, preprocess=model.preprocess
        )
    return LDCResult(model=model, artifacts=extract_artifacts(model), history=history)
