"""LDC: low-dimensional computing for binary VSA (Sec. II-C substrate).

The VSA pipeline (Eq. 3) is expressed as a partial BNN:

* **ValueBox** — an MLP + binarization projecting a (normalized) feature
  value to a D-bit value vector; evaluating it on all M levels yields V.
* **Encoding layer** — binary weights F of shape (N, D); the sample vector
  is s = sgn(sum_i f_i * v_{x_i}).
* **Similarity layer** — a binary dense layer whose weights are the class
  vectors C (Hamming == dot equivalence makes this exact).

After training, :func:`extract_artifacts` reads out the pure binary model;
inference then needs no floating point at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import BinaryLinear, Linear, Module, Parameter, Tensor, no_grad
from repro.nn.init import uniform_symmetric
from repro.vsa import classify
from repro.vsa.hypervector import sign_bipolar

__all__ = ["ValueBox", "BinaryEncodingLayer", "LDCModel", "LDCArtifacts", "normalize_levels"]


def normalize_levels(levels: np.ndarray, n_levels: int) -> np.ndarray:
    """Map integer levels [0, M) to floats in [-1, 1]."""
    return (2.0 * np.asarray(levels, dtype=np.float32) / (n_levels - 1) - 1.0).astype(
        np.float32
    )


class ValueBox(Module):
    """VB(x) = sgn(MLP(x)): scalar value -> D-bit bipolar vector."""

    def __init__(self, dim: int, hidden: int = 16, rng=None) -> None:
        super().__init__()
        self.dim = dim
        self.fc1 = Linear(1, hidden, rng=rng)
        self.fc2 = Linear(hidden, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """x is (B, 1) normalized values; returns (B, dim) bipolar."""
        return self.fc2(self.fc1(x).tanh()).sign_ste()

    def lookup_table(self, n_levels: int) -> np.ndarray:
        """Evaluate VB on every level -> the deployed V table (M, dim)."""
        values = normalize_levels(np.arange(n_levels), n_levels).reshape(-1, 1)
        self.eval()
        with no_grad():
            table = self.forward(Tensor(values)).data
        return table.astype(np.int8)


class BinaryEncodingLayer(Module):
    """Vector encoding (Eq. 1) as a binary layer: s = sgn(sum_i f_i * v_i).

    Latent weights have shape (n_positions, dim); effective weights are
    their sign.  The pre-sign accumulation is scaled by 1/sqrt(n_positions)
    so the STE clip window passes useful gradient (forward sign unchanged).
    """

    def __init__(self, n_positions: int, dim: int, rng=None) -> None:
        super().__init__()
        self.n_positions = n_positions
        self.dim = dim
        self.weight = Parameter(uniform_symmetric((n_positions, dim), rng=rng), binary=True)

    def forward(self, v: Tensor) -> Tensor:
        """v is (B, n_positions, dim) bipolar; returns (B, dim) bipolar."""
        f = self.weight.sign_ste()
        accumulated = (v * f.reshape(1, self.n_positions, self.dim)).sum(axis=1)
        return (accumulated * (1.0 / np.sqrt(self.n_positions))).sign_ste()

    def binary_weight(self) -> np.ndarray:
        """Deployed feature vectors F (n_positions, dim) in {-1, +1}."""
        return np.where(self.weight.data >= 0.0, 1, -1).astype(np.int8)


class LDCModel(Module):
    """The trainable partial BNN of LDC.

    Input is a batch of discretized samples (B, N) as integer levels; the
    constructor fixes the level count M.  Forward returns class logits.
    """

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        dim: int = 128,
        levels: int = 256,
        hidden: int = 16,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.n_features = n_features
        self.n_classes = n_classes
        self.dim = dim
        self.levels = levels
        self.valuebox = ValueBox(dim, hidden=hidden, rng=rng)
        self.encoder = BinaryEncodingLayer(n_features, dim, rng=rng)
        self.similarity = BinaryLinear(dim, n_classes, rng=rng)
        self.logit_scale = 8.0 / dim

    def preprocess(self, levels: np.ndarray) -> np.ndarray:
        """Integer levels (B, N) -> normalized float input."""
        return normalize_levels(levels.reshape(len(levels), -1), self.levels)

    def forward(self, x: Tensor) -> Tensor:
        """x (B, N) normalized values -> logits (B, C)."""
        batch, n = x.shape
        values = self.valuebox(x.reshape(batch * n, 1)).reshape(batch, n, self.dim)
        sample_vectors = self.encoder(values)
        return self.similarity(sample_vectors) * self.logit_scale

    def encode(self, levels: np.ndarray) -> np.ndarray:
        """Discretized samples -> bipolar sample vectors (B, dim)."""
        self.eval()
        with no_grad():
            x = Tensor(self.preprocess(levels))
            batch, n = x.shape
            values = self.valuebox(x.reshape(batch * n, 1)).reshape(batch, n, self.dim)
            return self.encoder(values).data.astype(np.int8)


@dataclass
class LDCArtifacts:
    """The deployed pure-binary VSA model: V, F, C vector sets."""

    value_vectors: np.ndarray  # V: (M, D) int8
    feature_vectors: np.ndarray  # F: (N, D) int8
    class_vectors: np.ndarray  # C: (C, D) int8

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self.value_vectors.shape[1]

    @property
    def levels(self) -> int:
        """Number of quantization levels (M)."""
        return self.value_vectors.shape[0]

    @property
    def n_features(self) -> int:
        """Number of input features (N = W x L)."""
        return self.feature_vectors.shape[0]

    @property
    def n_classes(self) -> int:
        """Number of classes."""
        return self.class_vectors.shape[0]

    def encode(self, levels: np.ndarray) -> np.ndarray:
        """Eq. 1 on the binary artifacts: s = sgn(sum_i f_i * v_{x_i})."""
        levels = np.atleast_2d(np.asarray(levels))
        values = self.value_vectors[levels]  # (B, N, D)
        bound = values.astype(np.int64) * self.feature_vectors[None].astype(np.int64)
        return sign_bipolar(bound.sum(axis=1))

    def predict(self, levels: np.ndarray) -> np.ndarray:
        """Eq. 2 via XNOR/popcount on packed words."""
        return classify(self.encode(levels), self.class_vectors)

    def score(self, levels: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(levels) == np.asarray(y)).mean())

    def memory_footprint_bits(self) -> int:
        """Deployed size: (M + N + C) x D bits."""
        return (self.levels + self.n_features + self.n_classes) * self.dim


def extract_artifacts(model: LDCModel) -> LDCArtifacts:
    """Read out V, F, C from a trained LDC model (bit-exact deployment)."""
    return LDCArtifacts(
        value_vectors=model.valuebox.lookup_table(model.levels),
        feature_vectors=model.encoder.binary_weight(),
        class_vectors=model.similarity.binary_weight(),
    )
