"""LDC: trainable low-dimensional binary VSA (the paper's base strategy)."""

from .model import (
    BinaryEncodingLayer,
    LDCArtifacts,
    LDCModel,
    ValueBox,
    extract_artifacts,
    normalize_levels,
)
from .train import LDCResult, train_ldc

__all__ = [
    "ValueBox",
    "BinaryEncodingLayer",
    "LDCModel",
    "LDCArtifacts",
    "extract_artifacts",
    "normalize_levels",
    "LDCResult",
    "train_ldc",
]
