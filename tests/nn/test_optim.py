"""Optimizer tests: convergence and binary latent clipping."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, BinaryLinear, Linear, Parameter, Tensor, cross_entropy

RNG = np.random.default_rng(3)


def _quadratic_param():
    return Parameter(np.array([5.0, -3.0], dtype=np.float32))


class TestSGD:
    def test_minimizes_quadratic(self):
        p = _quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = (Tensor(p.data) * 0.0).sum()  # rebuilt graph below
            loss = (p * p).sum()
            loss.backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-2

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = _quadratic_param()
            opt = SGD([p], lr=0.02, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                (p * p).sum().backward()
                opt.step()
            losses[momentum] = float((p.data**2).sum())
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_params_without_grad(self):
        p = _quadratic_param()
        opt = SGD([p], lr=0.1)
        opt.step()  # no backward called; must not crash
        np.testing.assert_allclose(p.data, [5.0, -3.0])


class TestAdam:
    def test_minimizes_quadratic(self):
        p = _quadratic_param()
        opt = Adam([p], lr=0.2)
        for _ in range(300):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-2

    def test_binary_latents_clipped(self):
        layer = BinaryLinear(4, 2)
        layer.weight.data[:] = 0.99
        opt = Adam(layer.parameters(), lr=1.0)
        opt.zero_grad()
        out = layer(Tensor(np.ones((1, 4), dtype=np.float32))).sum()
        out.backward()
        opt.step()
        assert np.abs(layer.weight.data).max() <= 1.0 + 1e-6

    def test_trains_small_classifier(self):
        # Linearly separable 2-class problem must reach high train accuracy.
        n = 200
        x = RNG.standard_normal((n, 4)).astype(np.float32)
        w_true = np.array([2.0, -1.0, 0.5, 1.0], dtype=np.float32)
        y = (x @ w_true > 0).astype(np.int64)
        model = Linear(4, 2)
        opt = Adam(model.parameters(), lr=0.05)
        for _ in range(150):
            opt.zero_grad()
            loss = cross_entropy(model(Tensor(x)), y)
            loss.backward()
            opt.step()
        preds = model(Tensor(x)).data.argmax(axis=1)
        assert (preds == y).mean() > 0.95
