"""Tests for initializers and remaining nn edge cases."""

import numpy as np
import pytest

from repro.nn import BatchNorm1d, Linear, Sequential, Tensor
from repro.nn.init import default_rng, kaiming_uniform, uniform_symmetric


class TestInitializers:
    def test_kaiming_bound(self):
        w = kaiming_uniform((64, 100), rng=0)
        bound = np.sqrt(6.0 / 100)
        assert np.abs(w).max() <= bound + 1e-6
        assert w.dtype == np.float32

    def test_kaiming_1d_fan(self):
        w = kaiming_uniform((10,), rng=0)
        assert w.shape == (10,)

    def test_uniform_symmetric_scale(self):
        w = uniform_symmetric((50, 50), scale=0.2, rng=1)
        assert np.abs(w).max() <= 0.2

    def test_deterministic_given_seed(self):
        np.testing.assert_array_equal(
            kaiming_uniform((4, 4), rng=7), kaiming_uniform((4, 4), rng=7)
        )

    def test_default_rng_passthrough(self):
        gen = np.random.default_rng(3)
        assert default_rng(gen) is gen
        assert isinstance(default_rng(5), np.random.Generator)
        assert isinstance(default_rng(None), np.random.Generator)


class TestSequentialStateDicts:
    def test_nested_with_batchnorm_buffers(self):
        model = Sequential(Linear(3, 4), BatchNorm1d(4), Linear(4, 2))
        # Accumulate BN statistics.
        model(Tensor(np.random.default_rng(0).standard_normal((32, 3)).astype(np.float32)))
        state = model.state_dict()
        assert any("running_mean" in k for k in state)
        clone = Sequential(Linear(3, 4), BatchNorm1d(4), Linear(4, 2))
        clone.load_state_dict(state)
        clone.eval()
        model.eval()
        x = Tensor(np.ones((2, 3), dtype=np.float32))
        np.testing.assert_allclose(model(x).data, clone(x).data, rtol=1e-6)


class TestBroadcastingEdges:
    def test_col_times_row(self):
        a = Tensor(np.ones((3, 1), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((1, 4), dtype=np.float32), requires_grad=True)
        out = (a * b).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, np.full((3, 1), 4.0))
        np.testing.assert_allclose(b.grad, np.full((1, 4), 3.0))

    def test_scalar_tensor_broadcast_grad(self):
        a = Tensor(np.float32(2.0), requires_grad=True)
        b = Tensor(np.ones((2, 3), dtype=np.float32))
        (a * b).sum().backward()
        assert a.grad == pytest.approx(6.0)

    def test_batchnorm1d_3d_path(self):
        bn = BatchNorm1d(4)
        x = Tensor(np.random.default_rng(1).standard_normal((8, 4, 5)).astype(np.float32))
        out = bn(x)
        assert out.shape == (8, 4, 5)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2)), 0.0, atol=1e-4)
