"""Autograd engine tests: op correctness and gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, as_tensor, concat, no_grad, stack
from tests.gradcheck import assert_grad_close

RNG = np.random.default_rng(0)


def _param(shape):
    return Tensor(RNG.standard_normal(shape).astype(np.float32), requires_grad=True)


class TestBasics:
    def test_construction_casts_to_float32(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float32
        assert t.shape == (3,)

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_item_and_len(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)
        assert len(Tensor([1.0, 2.0])) == 2

    def test_detach_cuts_graph(self):
        a = _param((3,))
        b = (a * 2.0).detach()
        assert not b.requires_grad

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_backward_requires_scalar(self):
        a = _param((3,))
        with pytest.raises(RuntimeError):
            (a * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        a = _param((4,))
        with no_grad():
            out = (a * 3.0).sum()
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        from repro.nn import is_grad_enabled

        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestArithmeticGradients:
    def test_add(self):
        a, b = _param((3, 4)), _param((3, 4))
        assert_grad_close(lambda: (a + b).sum(), a)
        assert_grad_close(lambda: (a + b).sum(), b)

    def test_add_broadcast(self):
        a, b = _param((3, 4)), _param((4,))
        assert_grad_close(lambda: (a + b).sum(), b)

    def test_mul(self):
        a, b = _param((2, 5)), _param((2, 5))
        assert_grad_close(lambda: (a * b).sum(), a)

    def test_mul_broadcast_scalar_tensor(self):
        a, b = _param((2, 5)), _param(())
        assert_grad_close(lambda: (a * b).sum(), b)

    def test_sub_and_neg(self):
        a, b = _param((3,)), _param((3,))
        assert_grad_close(lambda: (a - b).sum(), b)
        assert_grad_close(lambda: (-a).sum(), a)

    def test_div(self):
        a = _param((4,))
        b = Tensor(RNG.uniform(0.5, 2.0, (4,)).astype(np.float32), requires_grad=True)
        assert_grad_close(lambda: (a / b).sum(), a)
        assert_grad_close(lambda: (a / b).sum(), b)

    def test_rsub_rdiv_radd_values(self):
        a = Tensor([2.0])
        np.testing.assert_allclose((3.0 - a).data, [1.0])
        np.testing.assert_allclose((3.0 + a).data, [5.0])
        np.testing.assert_allclose((4.0 / a).data, [2.0])

    def test_pow(self):
        a = Tensor(RNG.uniform(0.5, 2.0, (5,)).astype(np.float32), requires_grad=True)
        assert_grad_close(lambda: (a**3.0).sum(), a)

    def test_matmul_2d(self):
        a, b = _param((3, 4)), _param((4, 2))
        assert_grad_close(lambda: (a @ b).sum(), a)
        assert_grad_close(lambda: (a @ b).sum(), b)

    def test_matmul_batched(self):
        a, b = _param((2, 3, 4)), _param((2, 4, 5))
        assert_grad_close(lambda: (a @ b).sum(), a, atol=2e-2)
        assert_grad_close(lambda: (a @ b).sum(), b, atol=2e-2)

    def test_gradient_accumulates_over_reuse(self):
        a = _param((3,))
        out = (a * a).sum()  # d/da = 2a
        out.backward()
        np.testing.assert_allclose(a.grad, 2 * a.data, rtol=1e-5)


class TestShapeOps:
    def test_reshape_grad(self):
        a = _param((2, 6))
        assert_grad_close(lambda: (a.reshape(3, 4) * 2.0).sum(), a)

    def test_reshape_accepts_tuple(self):
        a = _param((2, 6))
        assert a.reshape((4, 3)).shape == (4, 3)

    def test_transpose_grad(self):
        a = _param((2, 3, 4))
        assert_grad_close(lambda: a.transpose(2, 0, 1).sum(), a)

    def test_transpose_default_reverses(self):
        a = _param((2, 3))
        assert a.transpose().shape == (3, 2)

    def test_getitem_grad(self):
        a = _param((5, 4))
        assert_grad_close(lambda: a[1:3].sum(), a)

    def test_getitem_fancy_index_accumulates(self):
        a = _param((4,))
        idx = np.array([0, 0, 2])
        out = a[idx].sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 1.0, 0.0])

    def test_concat_grad(self):
        a, b = _param((2, 3)), _param((2, 2))
        assert_grad_close(lambda: concat([a, b], axis=1).sum(), a)
        assert_grad_close(lambda: concat([a, b], axis=1).sum(), b)

    def test_stack_grad(self):
        a, b = _param((3,)), _param((3,))
        assert_grad_close(lambda: stack([a, b], axis=0).sum(), a)


class TestReductions:
    def test_sum_axis_grad(self):
        a = _param((3, 4, 2))
        assert_grad_close(lambda: a.sum(axis=1).sum(), a)
        assert_grad_close(lambda: a.sum(axis=(0, 2)).sum(), a)

    def test_sum_keepdims(self):
        a = _param((3, 4))
        out = a.sum(axis=0, keepdims=True)
        assert out.shape == (1, 4)
        assert_grad_close(lambda: a.sum(axis=0, keepdims=True).sum(), a)

    def test_mean_grad(self):
        a = _param((4, 5))
        assert_grad_close(lambda: a.mean(), a)
        assert_grad_close(lambda: a.mean(axis=1).sum(), a)

    def test_max_grad_unique(self):
        a = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4), requires_grad=True)
        out = a.max(axis=1).sum()
        out.backward()
        expected = np.zeros((3, 4))
        expected[:, 3] = 1.0
        np.testing.assert_allclose(a.grad, expected)

    def test_max_grad_ties_split(self):
        a = Tensor(np.ones((1, 4), dtype=np.float32), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((1, 4), 0.25))


class TestNonlinearities:
    @pytest.mark.parametrize("name", ["relu", "tanh", "sigmoid", "exp", "abs"])
    def test_elementwise_grads(self, name):
        a = Tensor(
            RNG.uniform(-2.0, 2.0, (6,)).astype(np.float32) + 0.1, requires_grad=True
        )
        assert_grad_close(lambda: getattr(a, name)().sum(), a)

    def test_log_grad(self):
        a = Tensor(RNG.uniform(0.5, 3.0, (5,)).astype(np.float32), requires_grad=True)
        assert_grad_close(lambda: a.log().sum(), a)

    def test_clip_grad_zero_outside(self):
        a = Tensor(np.array([-2.0, 0.0, 2.0], dtype=np.float32), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_sign_ste_forward_tiebreak(self):
        a = Tensor(np.array([-0.5, 0.0, 0.5], dtype=np.float32))
        np.testing.assert_allclose(a.sign_ste().data, [-1.0, 1.0, 1.0])

    def test_sign_ste_backward_window(self):
        a = Tensor(np.array([-2.0, -0.5, 0.5, 2.0], dtype=np.float32), requires_grad=True)
        a.sign_ste().sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 1.0, 0.0])


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.floats(-5, 5, allow_nan=False, width=32), min_size=1, max_size=8),
    st.lists(st.floats(-5, 5, allow_nan=False, width=32), min_size=1, max_size=8),
)
def test_add_commutes_property(xs, ys):
    n = min(len(xs), len(ys))
    a, b = Tensor(xs[:n]), Tensor(ys[:n])
    np.testing.assert_allclose((a + b).data, (b + a).data)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-5, 5, allow_nan=False, width=32), min_size=1, max_size=16))
def test_sign_ste_is_bipolar_property(xs):
    out = Tensor(xs).sign_ste().data
    assert set(np.unique(out)).issubset({-1.0, 1.0})
