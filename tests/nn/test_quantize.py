"""Tests for k-bit fake quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn.quantize import QuantConv2d, QuantLinear, quantize_ste

RNG = np.random.default_rng(90)


class TestQuantizeSte:
    def test_k1_signed_is_ternary_grid(self):
        x = Tensor(np.array([-0.9, -0.2, 0.2, 0.9], dtype=np.float32))
        out = quantize_ste(x, 1).data
        assert set(np.unique(out)).issubset({-1.0, 0.0, 1.0})

    def test_values_on_grid(self):
        x = Tensor(RNG.uniform(-1, 1, 100).astype(np.float32))
        bits = 3
        out = quantize_ste(x, bits).data
        levels = 2 ** (bits - 1) - 1
        np.testing.assert_allclose(out * levels, np.round(out * levels), atol=1e-6)

    def test_unsigned_range(self):
        x = Tensor(np.array([-0.5, 0.3, 1.2], dtype=np.float32))
        out = quantize_ste(x, 4, signed=False).data
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_clips_out_of_range(self):
        x = Tensor(np.array([-3.0, 3.0], dtype=np.float32))
        out = quantize_ste(x, 4).data
        np.testing.assert_allclose(out, [-1.0, 1.0])

    def test_gradient_is_ste(self):
        x = Tensor(np.array([-2.0, -0.5, 0.5, 2.0], dtype=np.float32), requires_grad=True)
        quantize_ste(x, 4).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0, 0.0])

    def test_high_bits_near_identity(self):
        x = Tensor(RNG.uniform(-1, 1, 50).astype(np.float32))
        out = quantize_ste(x, 16).data
        np.testing.assert_allclose(out, x.data, atol=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            quantize_ste(Tensor([0.0]), 0)


class TestQuantLayers:
    def test_linear_forward_shape(self):
        layer = QuantLinear(8, 3, bits=4, rng=RNG)
        x = Tensor(RNG.uniform(-1, 1, (5, 8)).astype(np.float32))
        assert layer(x).shape == (5, 3)

    def test_linear_quantized_weight_integers(self):
        layer = QuantLinear(8, 3, bits=4, rng=RNG)
        qw = layer.quantized_weight()
        assert qw.dtype == np.int32
        assert np.abs(qw).max() <= 7  # 2^(4-1) - 1

    def test_conv_forward_shape(self):
        conv = QuantConv2d(2, 5, 3, bits=4, padding=1, rng=RNG)
        x = Tensor(RNG.uniform(-1, 1, (2, 2, 6, 6)).astype(np.float32))
        assert conv(x).shape == (2, 5, 6, 6)

    def test_conv_quantized_weight_range(self):
        conv = QuantConv2d(2, 4, 3, bits=2, rng=RNG)
        assert np.abs(conv.quantized_weight()).max() <= 1

    def test_gradients_flow(self):
        layer = QuantLinear(4, 2, bits=4, rng=RNG)
        out = layer(Tensor(RNG.uniform(-1, 1, (3, 4)).astype(np.float32))).sum()
        out.backward()
        assert layer.weight.grad is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantLinear(4, 2, bits=0)
        with pytest.raises(ValueError):
            QuantConv2d(2, 2, 3, bits=0)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 8), st.integers(0, 2**31 - 1))
def test_quantization_idempotent_property(bits, seed):
    gen = np.random.default_rng(seed)
    x = Tensor(gen.uniform(-1, 1, 32).astype(np.float32))
    once = quantize_ste(x, bits).data
    twice = quantize_ste(Tensor(once), bits).data
    np.testing.assert_allclose(once, twice, atol=1e-6)
