"""Tests for the module system and binary layers."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d,
    BatchNorm2d,
    BinaryConv2d,
    BinaryLinear,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    SignActivation,
    Tanh,
    Tensor,
)

RNG = np.random.default_rng(2)


class TestModuleSystem:
    def test_parameter_registration(self):
        layer = Linear(3, 2)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_parameters(self):
        model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        assert len(list(model.parameters())) == 4

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), BatchNorm1d(2))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_num_parameters(self):
        layer = Linear(3, 2)
        assert layer.num_parameters() == 3 * 2 + 2

    def test_state_dict_round_trip(self):
        model = Sequential(Linear(3, 4), Linear(4, 2))
        state = model.state_dict()
        clone = Sequential(Linear(3, 4), Linear(4, 2))
        clone.load_state_dict(state)
        x = Tensor(RNG.standard_normal((5, 3)).astype(np.float32))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_load_state_dict_missing_key_raises(self):
        layer = Linear(2, 2)
        with pytest.raises(KeyError):
            layer.load_state_dict({})

    def test_load_state_dict_shape_mismatch_raises(self):
        layer = Linear(2, 2)
        bad = layer.state_dict()
        bad["weight"] = np.zeros((3, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            layer.load_state_dict(bad)

    def test_zero_grad(self):
        layer = Linear(2, 1)
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestBinaryLinear:
    def test_effective_weights_are_bipolar(self):
        layer = BinaryLinear(8, 4, rng=RNG)
        x = Tensor(np.sign(RNG.standard_normal((3, 8))).astype(np.float32))
        out = layer(x)
        # Output of bipolar x bipolar dot products must be integers of the
        # same parity as the input dimension.
        assert np.all(np.mod(out.data - 8, 2) == 0)

    def test_binary_weight_export(self):
        layer = BinaryLinear(5, 2, rng=RNG)
        bw = layer.binary_weight()
        assert bw.dtype == np.int8
        assert set(np.unique(bw)).issubset({-1, 1})
        np.testing.assert_array_equal(bw, np.where(layer.weight.data >= 0, 1, -1))

    def test_gradient_flows_to_latent(self):
        layer = BinaryLinear(4, 3, rng=RNG)
        out = layer(Tensor(RNG.standard_normal((2, 4)).astype(np.float32))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert np.abs(layer.weight.grad).sum() > 0


class TestBinaryConv2d:
    def test_output_is_integer_valued(self):
        conv = BinaryConv2d(4, 8, 3, padding=1, rng=RNG)
        x = Tensor(np.sign(RNG.standard_normal((2, 4, 6, 6))).astype(np.float32))
        out = conv(x)
        assert out.shape == (2, 8, 6, 6)
        # With zero padding inputs are in {-1,0,1}: outputs stay integral.
        np.testing.assert_allclose(out.data, np.round(out.data), atol=1e-4)

    def test_kernel_export_shape(self):
        conv = BinaryConv2d(4, 8, 3, rng=RNG)
        k = conv.binary_weight()
        assert k.shape == (8, 4, 3, 3)
        assert set(np.unique(k)).issubset({-1, 1})

    def test_attributes(self):
        conv = BinaryConv2d(2, 5, 3, stride=2, padding=1)
        assert (conv.in_channels, conv.out_channels) == (2, 5)
        assert (conv.stride, conv.padding, conv.kernel_size) == (2, 1, 3)


class TestBatchNorm:
    def test_normalizes_in_training(self):
        bn = BatchNorm1d(4)
        x = Tensor(RNG.standard_normal((128, 4)).astype(np.float32) * 3 + 5)
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.data.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_update(self):
        bn = BatchNorm1d(2, momentum=1.0)
        x = Tensor(np.array([[0.0, 10.0], [2.0, 14.0]], dtype=np.float32))
        bn(x)
        np.testing.assert_allclose(bn._buffers["running_mean"], [1.0, 12.0], atol=1e-5)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm1d(2, momentum=1.0)
        bn(Tensor(RNG.standard_normal((64, 2)).astype(np.float32) * 2 + 3))
        bn.eval()
        x = Tensor(np.zeros((4, 2), dtype=np.float32))
        out1 = bn(x)
        out2 = bn(x)
        np.testing.assert_allclose(out1.data, out2.data)

    def test_batchnorm2d_shape(self):
        bn = BatchNorm2d(3)
        x = Tensor(RNG.standard_normal((2, 3, 4, 5)).astype(np.float32))
        assert bn(x).shape == (2, 3, 4, 5)

    def test_gradients_flow(self):
        bn = BatchNorm1d(3)
        x = Tensor(RNG.standard_normal((16, 3)).astype(np.float32), requires_grad=True)
        bn(x).sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None


class TestBatchNormFolding:
    def test_threshold_semantics_positive_gamma(self):
        bn = BatchNorm1d(1, momentum=1.0)
        # Feed integer-like accumulations to set running stats.
        data = np.array([[0.0], [2.0], [4.0], [6.0]], dtype=np.float32)
        bn(Tensor(data))
        bn.gamma.data[:] = 2.0
        bn.beta.data[:] = 1.0
        bn.eval()
        thresholds, flip = bn.fold_thresholds()
        ys = np.linspace(-10, 10, 201)
        bn_out = bn(Tensor(ys.reshape(-1, 1).astype(np.float32))).data.reshape(-1)
        direct = np.where(bn_out >= 0, 1, -1)
        folded = np.where(ys >= thresholds[0], 1, -1)
        assert not flip[0]
        np.testing.assert_array_equal(direct, folded)

    def test_threshold_semantics_negative_gamma(self):
        bn = BatchNorm1d(1, momentum=1.0)
        bn(Tensor(np.array([[1.0], [3.0]], dtype=np.float32)))
        bn.gamma.data[:] = -1.5
        bn.beta.data[:] = 0.5
        bn.eval()
        thresholds, flip = bn.fold_thresholds()
        assert flip[0]
        ys = np.linspace(-5, 5, 101)
        bn_out = bn(Tensor(ys.reshape(-1, 1).astype(np.float32))).data.reshape(-1)
        direct = np.where(bn_out >= 0, 1, -1)
        folded = np.where(ys < thresholds[0], 1, -1)
        # Allow boundary-point discrepancy only where BN output is exactly 0.
        mismatch = direct != folded
        assert np.all(np.abs(bn_out[mismatch]) < 1e-6)

    def test_zero_gamma_constant_output(self):
        bn = BatchNorm1d(2, momentum=1.0)
        bn(Tensor(np.array([[1.0, 1.0], [3.0, 3.0]], dtype=np.float32)))
        bn.gamma.data[:] = 0.0
        bn.beta.data[:] = np.array([0.5, -0.5], dtype=np.float32)
        thresholds, _ = bn.fold_thresholds()
        assert thresholds[0] == -np.inf  # always fires +1
        assert thresholds[1] == np.inf  # never fires +1


class TestActivationModules:
    def test_relu_module(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_tanh_module(self):
        out = Tanh()(Tensor(np.array([0.0])))
        np.testing.assert_allclose(out.data, [0.0])

    def test_sign_activation(self):
        out = SignActivation()(Tensor(np.array([-0.2, 0.0, 0.2])))
        np.testing.assert_allclose(out.data, [-1.0, 1.0, 1.0])

    def test_parameter_is_trainable_tensor(self):
        p = Parameter(np.ones(3, dtype=np.float32))
        assert p.requires_grad
        assert not p.binary
        assert Parameter(np.ones(1), binary=True).binary
