"""Tests for pooling, dropout, and LR schedulers."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    AvgPool2d,
    CosineAnnealingLR,
    Dropout,
    MaxPool2d,
    Parameter,
    StepLR,
    Tensor,
    avg_pool2d,
    max_pool2d,
)
from tests.gradcheck import assert_grad_close

RNG = np.random.default_rng(80)


class TestMaxPool:
    def test_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_shape_with_stride(self):
        x = Tensor(RNG.standard_normal((2, 3, 6, 8)).astype(np.float32))
        assert max_pool2d(x, 2).shape == (2, 3, 3, 4)
        assert max_pool2d(x, 3, stride=1).shape == (2, 3, 4, 6)

    def test_gradient_routes_to_max(self):
        x = Tensor(
            np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32),
            requires_grad=True,
        )
        max_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad[0, 0], [[0, 0], [0, 1]])

    def test_gradcheck(self):
        # Distinct values avoid subgradient ambiguity at ties.
        data = np.arange(32, dtype=np.float32).reshape(1, 2, 4, 4)
        RNG.shuffle(data.reshape(-1))
        x = Tensor(data, requires_grad=True)
        assert_grad_close(lambda: (max_pool2d(x, 2) * 2.0).sum(), x)

    def test_module_wrapper(self):
        pool = MaxPool2d(2)
        x = Tensor(RNG.standard_normal((1, 1, 4, 4)).astype(np.float32))
        np.testing.assert_allclose(pool(x).data, max_pool2d(x, 2).data)


class TestAvgPool:
    def test_values(self):
        x = Tensor(np.ones((1, 1, 4, 4), dtype=np.float32) * 3.0)
        np.testing.assert_allclose(avg_pool2d(x, 2).data, 3.0)

    def test_gradcheck(self):
        x = Tensor(RNG.standard_normal((1, 2, 4, 4)).astype(np.float32), requires_grad=True)
        assert_grad_close(lambda: avg_pool2d(x, 2).sum(), x)

    def test_module_wrapper(self):
        pool = AvgPool2d(2)
        x = Tensor(RNG.standard_normal((1, 1, 4, 4)).astype(np.float32))
        np.testing.assert_allclose(pool(x).data, avg_pool2d(x, 2).data)


class TestDropout:
    def test_eval_mode_identity(self):
        drop = Dropout(0.5)
        drop.eval()
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        assert drop(x) is x

    def test_train_mode_zeroes_and_scales(self):
        drop = Dropout(0.5, seed=0)
        drop.train()
        x = Tensor(np.ones((1000,), dtype=np.float32))
        out = drop(x).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        survivors = out[out != 0]
        np.testing.assert_allclose(survivors, 2.0)

    def test_expectation_preserved(self):
        drop = Dropout(0.3, seed=1)
        drop.train()
        x = Tensor(np.ones((20000,), dtype=np.float32))
        assert drop(x).data.mean() == pytest.approx(1.0, abs=0.05)

    def test_p_zero_identity(self):
        drop = Dropout(0.0)
        x = Tensor(np.ones((4,), dtype=np.float32))
        assert drop(x) is x

    def test_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestSchedulers:
    def _optimizer(self, lr=0.1):
        return Adam([Parameter(np.zeros(1, dtype=np.float32))], lr=lr)

    def test_step_lr(self):
        opt = self._optimizer()
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [0.1, 0.05, 0.05, 0.025])

    def test_step_lr_validation(self):
        with pytest.raises(ValueError):
            StepLR(self._optimizer(), step_size=0)

    def test_cosine_endpoints(self):
        opt = self._optimizer()
        sched = CosineAnnealingLR(opt, total_epochs=10, min_lr=0.01)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[-1] == pytest.approx(0.01)
        assert all(b <= a + 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_cosine_clamps_past_end(self):
        opt = self._optimizer()
        sched = CosineAnnealingLR(opt, total_epochs=2)
        for _ in range(5):
            lr = sched.step()
        assert lr == pytest.approx(0.0)

    def test_cosine_validation(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(self._optimizer(), total_epochs=0)

    def test_scheduler_updates_optimizer(self):
        opt = self._optimizer()
        StepLR(opt, step_size=1, gamma=0.1).step()
        assert opt.lr == pytest.approx(0.01)
